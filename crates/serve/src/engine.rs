//! The serving engine: one writer thread drains a bounded event queue
//! through a [`StreamGuard`] into incremental InsLearn updates, publishing
//! epoch-versioned [`ServingSnapshot`]s that reader threads score against.
//!
//! # Concurrency model
//!
//! - **Ingest** is a bounded MPMC channel: under the default
//!   [`ShedPolicy::Block`] producers block when the writer falls behind
//!   (backpressure, never unbounded growth). The other shedding policies
//!   trade completeness for bounded producer latency — see
//!   [`crate::admission`] for the degradation ladder that decides *when*
//!   events are shed and [`AdmissionOptions`] for the knobs.
//! - **Control** (flush/shutdown/kill) travels on a separate unbounded
//!   channel; the writer drains every already-queued event before honoring
//!   a control message, so the observable event order is exactly the queue
//!   order — identical to the single-queue engine this replaced.
//! - **Training** is single-writer: the writer thread exclusively owns the
//!   graph, the model, the guard, and the checkpoint manager. No lock is
//!   ever held during training.
//! - **Publication** swaps an `Arc<EpochSnapshot>` behind a
//!   `parking_lot::RwLock`. Readers clone the `Arc` under a read lock held
//!   for nanoseconds and then score lock-free against an immutable snapshot,
//!   so a query can never observe a half-written embedding table — results
//!   are torn-free *by construction*, and every answer is attributable to
//!   exactly one published epoch. Shedding never touches this path: a
//!   degraded engine drops *ingest* work, never read consistency.
//! - **Verification**: the last [`ServeConfig::keep_history`] snapshots are
//!   retained so a result claiming epoch `e` can be re-scored against the
//!   actual epoch-`e` tables and compared bit-for-bit.
//!
//! # Sharding ([`ServeConfig::shards`])
//!
//! With `shards = N > 1` the engine is partitioned by the owning shard of
//! each event's *source user* (`supa_par::shard_of`, a splitmix64 hash, so
//! ownership is host-independent): each shard gets its own bounded ingest
//! lane, [`StreamGuard`], admission ladder, metrics block, and query cache.
//! A producer stamps every event with a global sequence number under one
//! mutex, deposits it in its shard's lane, and rings an unbounded *doorbell*
//! channel with `(seq, shard)`; the writer spine consumes doorbells in order
//! — that order **is** the deterministic global event order — and pulls each
//! event from the fronted lane, so the trained result is a pure function of
//! the producers' arrival order exactly as in the unsharded engine. Training
//! partitions each conflict-free wave's gradient work by the same shard key
//! (`Supa::set_shards`), and epoch publication is a two-phase barrier:
//! per-shard ANN refreshes run (in parallel where cores allow) to the common
//! epoch number, then one composed [`EpochSnapshot`] is swapped in atomically
//! — readers can never observe two shards at different epochs. `shards = 1`
//! routes through the legacy single-queue code paths untouched and is
//! bit-identical to the pre-sharding engine; any `N ≥ 2` produces one
//! pinned, deterministic result independent of N and of the host's core
//! count.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::mpsc as std_mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel;
use parking_lot::{Mutex, RwLock};
use supa::{CheckpointManager, ServingSnapshot, Supa, TrainOptions};
use supa_ann::{AnnConfig, HnswIndex, SearchScratch};
use supa_eval::{top_k_scored_with, RecallAccumulator, TopKScratch};
use supa_graph::{
    Dmhg, EventPriority, NodeId, QuarantineError, QuarantinePolicy, QuarantineReport, RelationId,
    StreamGuard, TemporalEdge,
};

use supa::delta::GuardState;
use supa_replica::{DeltaPublisher, PublishOptions};

use crate::admission::{AdmissionCtl, AdmissionOptions, DegradeLevel, ShedPolicy};
use crate::cache::QueryCache;
use crate::metrics::{MetricsReport, ServeMetrics};

thread_local! {
    /// Per-reader top-K buffers for the query and verify paths.
    static TOPK_SCRATCH: std::cell::RefCell<TopKScratch> =
        std::cell::RefCell::new(TopKScratch::default());
    /// Per-reader ANN buffers: the user's composite query vector, the beam
    /// search scratch, and the candidate list handed to exact re-scoring.
    static ANN_SCRATCH: std::cell::RefCell<AnnReaderScratch> =
        std::cell::RefCell::new(AnnReaderScratch::default());
}

#[derive(Default)]
struct AnnReaderScratch {
    query: Vec<f32>,
    search: SearchScratch,
    cand: Vec<NodeId>,
}

/// Checkpointing behaviour for a serving engine (all via PR 1's
/// [`CheckpointManager`]: atomic writes, CRC validation, rotation).
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Directory checkpoints are written to.
    pub dir: std::path::PathBuf,
    /// Save a checkpoint every this many trained chunks (clamped to ≥ 1).
    pub every: usize,
    /// How many checkpoints to retain.
    pub keep: usize,
    /// Warm-start from the newest valid checkpoint before serving. The
    /// checkpoint's stream position tells the writer how many admitted
    /// events to replay into the graph without retraining.
    pub resume: bool,
}

impl CheckpointOptions {
    /// Checkpoints in `dir` every 8 chunks, keeping 3, no resume.
    pub fn new(dir: impl Into<std::path::PathBuf>) -> Self {
        CheckpointOptions {
            dir: dir.into(),
            every: 8,
            keep: 3,
            resume: false,
        }
    }
}

/// Tuning for the approximate-nearest-neighbor serving path
/// ([`ServeConfig::ann`]).
///
/// When enabled, each published epoch carries *shared-base* [`HnswIndex`]es:
/// one index per destination-type group (relations whose edges land on the
/// same node type share one candidate set and therefore one index) over the
/// relation-independent base vectors `h_long + h_short`. A query beams the
/// group's index with its composite vector, widened by [`AnnOptions::ef_margin`]
/// to absorb the candidate-side `ctx_r` term the base ranking omits, then
/// re-scores the surviving candidates *exactly* — so every returned score is
/// bit-identical to what the brute-force path would assign; only membership
/// of the top-K can differ, and the recall guard meters exactly that.
#[derive(Debug, Clone)]
pub struct AnnOptions {
    /// Query beam width (clamped to ≥ k per query). Larger means higher
    /// recall and more exact re-scores per query.
    pub ef_search: usize,
    /// Extra beam width on top of `ef_search`. The shared-base index ranks
    /// by `⟨composite_u, base_v⟩`, which differs from the served score by
    /// the candidate's per-relation context term; the margin keeps enough
    /// extra candidates in the beam for the exact re-score to recover the
    /// true top-K.
    pub ef_margin: usize,
    /// Max neighbors per node on upper index layers (layer 0 keeps `2·m`).
    pub m: usize,
    /// Beam width while inserting/refreshing index nodes.
    pub ef_construction: usize,
    /// Re-score one in `guard_every` ANN-served queries against the full
    /// candidate set and record recall@K (0 disables the guard). The guard
    /// only *observes* — it never substitutes the exact answer — so query
    /// results stay a pure function of the published epoch and `verify`
    /// remains an exact torn-read check.
    pub guard_every: u64,
    /// Recall floor: a guard check below this tallies a breach in metrics.
    pub min_recall: f64,
    /// Let the writer nudge the effective `ef_search`/`ef_margin` up when
    /// the recall guard sustains breaches and back toward the configured
    /// base once recall is comfortably above the floor. The effective
    /// values are stamped into each published epoch, so queries (and
    /// `verify` replays) stay a pure function of the epoch they hit.
    /// Requires `guard_every > 0`. Off by default: the static configuration
    /// remains bit-identical to previous releases.
    pub auto_tune: bool,
    /// Seed for the index's deterministic level assignment.
    pub seed: u64,
}

impl Default for AnnOptions {
    fn default() -> Self {
        AnnOptions {
            ef_search: 64,
            ef_margin: 32,
            m: 16,
            ef_construction: 128,
            guard_every: 64,
            min_recall: 0.95,
            auto_tune: false,
            seed: 7,
        }
    }
}

impl AnnOptions {
    fn config(&self) -> AnnConfig {
        AnnConfig {
            m: self.m,
            ef_construction: self.ef_construction,
            seed: self.seed,
        }
    }
}

/// Tuning knobs for [`ServeEngine::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Ingest queue capacity; must be ≥ 1 ([`ServeEngine::start`] rejects 0
    /// with a named error). What happens when it fills is the admission
    /// policy's call ([`ServeConfig::admission`]): `block` producers, or
    /// shed.
    pub queue_capacity: usize,
    /// Admitted events per training chunk (one `fit_incremental` call;
    /// clamped ≥ 1). Smaller chunks mean fresher embeddings, larger chunks
    /// mean higher ingest throughput. Under overload the degradation ladder
    /// may temporarily widen chunks by [`AdmissionOptions::chunk_scale`].
    pub train_batch: usize,
    /// Publish a snapshot every this many trained chunks (clamped ≥ 1).
    pub snapshot_every: usize,
    /// Admission policy for malformed events.
    pub policy: QuarantinePolicy,
    /// Max cached top-K results (0 disables the cache).
    pub cache_capacity: usize,
    /// How many published snapshots to retain for epoch-consistency
    /// verification (clamped ≥ 1; the current snapshot is always retained).
    pub keep_history: usize,
    /// Optional checkpointing (see [`CheckpointOptions`]).
    pub checkpoint: Option<CheckpointOptions>,
    /// Worker threads for the writer's training passes (conflict-aware event
    /// micro-batching inside the single-writer model; `1` = exact serial
    /// training, `0` = machine parallelism). Only the gradient computation
    /// fans out — ingest, admission, and publication stay single-writer.
    pub workers: usize,
    /// Approximate top-K serving via per-epoch ANN indexes (`None` = exact
    /// brute-force scoring of the full candidate list on every query).
    pub ann: Option<AnnOptions>,
    /// Overload admission control: shedding policy, priority classes, and
    /// the degradation-ladder detector. The default ([`ShedPolicy::Block`])
    /// is bit-identical to the pre-admission engine.
    pub admission: AdmissionOptions,
    /// Epoch-delta replication: publish every epoch's touched set to a TCP
    /// stream and/or an append-only segment file (`None` = no replication).
    pub replication: Option<PublishOptions>,
    /// Writer shards (clamped ≥ 1 by validation; 0 is rejected with a named
    /// error). `1` is the legacy single-queue engine, bit-identical to every
    /// prior release. `N ≥ 2` partitions ingest, guarding, admission,
    /// caching, metrics, and ANN maintenance by the owning shard of each
    /// event's source user — see the module docs for the ordering protocol
    /// that keeps the result deterministic.
    pub shards: usize,
    /// Test seam: panic the writer thread after absorbing this many events,
    /// exercising the panic-propagation path (`EngineClosed` with a
    /// [`ClosedCause::Panic`] cause). Never set in production.
    #[doc(hidden)]
    pub panic_after: Option<u64>,
    /// Test seam: panic this shard's task during the next epoch publication,
    /// exercising the kill-one-shard path (producers get `EngineClosed` with
    /// [`ClosedCause::Panic`]; the stop cause names the shard). Never set in
    /// production.
    #[doc(hidden)]
    pub panic_shard: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 1024,
            train_batch: 64,
            snapshot_every: 1,
            policy: QuarantinePolicy::Skip,
            cache_capacity: 4096,
            keep_history: 8,
            checkpoint: None,
            workers: 1,
            ann: None,
            admission: AdmissionOptions::default(),
            replication: None,
            shards: 1,
            panic_after: None,
            panic_shard: None,
        }
    }
}

/// One published embedding state, tagged with its epoch number.
#[derive(Debug)]
pub struct EpochSnapshot {
    /// 0 for the warm-start state, incremented per publication.
    pub epoch: u64,
    /// The frozen scorer (bit-identical to the model at publication time).
    pub scorer: ServingSnapshot,
    /// Shared-base ANN indexes frozen with the scorer (`None` when ANN
    /// serving is disabled). Retained with the snapshot in the history ring
    /// so `verify` re-runs the *identical* retrieval path of the epoch a
    /// result claims.
    pub ann: Option<Arc<AnnEpoch>>,
}

/// The shared-base ANN indexes of one published epoch, shard-major:
/// `indexes[shard][group]`, where a *group* is a set of relations whose
/// edges land on the same destination node type
/// ([`supa_graph::GraphSchema::dst_type_groups`]). Relations in one group
/// have identical candidate sets, and the indexed base vectors
/// (`h_long + h_short`) carry no relation term — so one index serves every
/// relation of the group, cutting index memory and refresh work by the
/// group size. Unsharded epochs have exactly one shard holding the full
/// per-group indexes.
#[derive(Debug)]
pub struct AnnEpoch {
    indexes: Vec<Vec<Option<HnswIndex>>>,
    /// Relation → group: which shared index answers each relation.
    group_of: Vec<usize>,
    /// The effective query beam width when this epoch was published. Epochs
    /// stamp the values in force so a query (and any later `verify` replay)
    /// is a pure function of the epoch it hits, even while the auto-tuner
    /// moves the live values between epochs.
    ef_search: usize,
    /// The effective beam margin at publication (see [`AnnOptions::ef_margin`]).
    ef_margin: usize,
}

impl AnnEpoch {
    /// Shard 0's shared-base index answering `rel` (`None` when that shard
    /// owns no candidates of the relation's group). On an unsharded epoch
    /// this is *the* index over the full catalog; sharded readers use
    /// [`AnnEpoch::shard_indexes`] to query every shard's partition.
    /// Relations with the same destination type return the *same* index.
    pub fn index(&self, rel: RelationId) -> Option<&HnswIndex> {
        let g = *self.group_of.get(rel.index())?;
        self.indexes
            .first()
            .and_then(|shard| shard.get(g))
            .and_then(Option::as_ref)
    }

    /// Every shard's index answering `rel`, in shard order (shards owning no
    /// candidates of the relation's group are skipped). The shards partition
    /// the catalog, so the yielded indexes cover disjoint item sets.
    pub fn shard_indexes(&self, rel: RelationId) -> impl Iterator<Item = &HnswIndex> {
        let g = self.group_of.get(rel.index()).copied();
        self.indexes
            .iter()
            .filter_map(move |shard| shard.get(g?).and_then(Option::as_ref))
    }

    /// The effective `ef_search` stamped at publication.
    pub fn ef_search(&self) -> usize {
        self.ef_search
    }

    /// The effective `ef_margin` stamped at publication.
    pub fn ef_margin(&self) -> usize {
        self.ef_margin
    }

    /// Whether any shard holds an index answering `rel`.
    fn has_index(&self, rel: RelationId) -> bool {
        self.shard_indexes(rel).next().is_some()
    }
}

/// One shard's writer-owned master indexes: one shared-base HNSW index per
/// destination-type group over the candidate items *this shard owns*
/// (`shard_of(item) == shard`), together with the owned candidate lists
/// used to filter refreshes.
struct ShardAnn {
    config: AnnConfig,
    indexes: Vec<Option<HnswIndex>>,
    owned: Vec<Vec<NodeId>>,
    buf: Vec<f32>,
    /// Batched-refresh staging: the touched ∩ owned ids of one group and
    /// their base vectors, handed to `HnswIndex::update_batch` in one call
    /// so the whole batch is unlinked first and re-linked with amortized
    /// hole repair.
    batch_ids: Vec<u32>,
    batch_rows: Vec<f32>,
}

impl ShardAnn {
    /// Builds this shard's per-group indexes over its owned slice of every
    /// group's candidate list in ascending-id order, indexing the
    /// relation-independent base vectors. With one shard the owned lists
    /// are the full (sorted, deduplicated) candidate lists, so the build is
    /// identical to the unsharded engine's.
    fn build(config: AnnConfig, scorer: &ServingSnapshot, owned: Vec<Vec<NodeId>>) -> ShardAnn {
        let mut shard = ShardAnn {
            config,
            indexes: Vec::with_capacity(owned.len()),
            owned,
            buf: Vec::new(),
            batch_ids: Vec::new(),
            batch_rows: Vec::new(),
        };
        for g in 0..shard.owned.len() {
            if shard.owned[g].is_empty() {
                shard.indexes.push(None);
                continue;
            }
            let mut index = HnswIndex::new(scorer.dim(), shard.config.clone());
            for i in 0..shard.owned[g].len() {
                let item = shard.owned[g][i];
                scorer.base_into(item, &mut shard.buf);
                index.insert(item.0, &shard.buf);
            }
            shard.indexes.push(Some(index));
        }
        shard
    }

    /// Re-inserts every touched *owned* candidate item with its new base
    /// vector, one `update_batch` per group. Both the touched set and the
    /// owned lists are ascending, so the staged batch is ascending — the
    /// batch protocol's requirement — and the refreshed index is
    /// deterministic; shards own disjoint items, so concurrent per-shard
    /// refreshes touch disjoint indexes. Returns how many (id, group)
    /// entries were refreshed.
    fn refresh(&mut self, scorer: &ServingSnapshot, touched: &[u32]) -> usize {
        let mut refreshed = 0;
        for (g, index) in self.indexes.iter_mut().enumerate() {
            let Some(index) = index else { continue };
            let owned = &self.owned[g];
            self.batch_ids.clear();
            self.batch_rows.clear();
            for &id in touched {
                if owned.binary_search(&NodeId(id)).is_ok() {
                    scorer.base_into(NodeId(id), &mut self.buf);
                    self.batch_ids.push(id);
                    self.batch_rows.extend_from_slice(&self.buf);
                }
            }
            if !self.batch_ids.is_empty() {
                index.update_batch(&self.batch_ids, &self.batch_rows);
                refreshed += self.batch_ids.len();
            }
        }
        refreshed
    }
}

/// Writer-owned master copies of the per-shard, per-group indexes.
/// Between epochs only the nodes the training interval touched are
/// re-inserted; `freeze` then clones the masters into an immutable
/// [`AnnEpoch`] for publication. Also owns the *effective* beam widths
/// (the configured values, possibly moved by the auto-tuner) that get
/// stamped into each published epoch.
struct AnnMaster {
    shards: Vec<ShardAnn>,
    group_of: Vec<usize>,
    ef_search: usize,
    ef_margin: usize,
    tuner: Option<AnnTuner>,
}

impl AnnMaster {
    /// Builds `shards` per-shard index sets partitioning every group's
    /// candidate list by owning shard.
    fn build(
        opts: &AnnOptions,
        scorer: &ServingSnapshot,
        group_candidates: &[Vec<NodeId>],
        group_of: Vec<usize>,
        shards: usize,
    ) -> AnnMaster {
        let n = shards.max(1);
        let config = opts.config();
        let shards = (0..n)
            .map(|s| {
                let owned = Self::owned_groups(group_candidates, n, s);
                ShardAnn::build(config.clone(), scorer, owned)
            })
            .collect();
        AnnMaster {
            shards,
            group_of,
            ef_search: opts.ef_search,
            ef_margin: opts.ef_margin,
            tuner: opts.auto_tune.then(|| AnnTuner::new(opts)),
        }
    }

    /// The slice of every group's candidate list owned by shard `s`.
    fn owned_groups(group_candidates: &[Vec<NodeId>], n: usize, s: usize) -> Vec<Vec<NodeId>> {
        group_candidates
            .iter()
            .map(|cands| {
                cands
                    .iter()
                    .copied()
                    .filter(|c| supa_par::shard_of(c.0, n) == s)
                    .collect()
            })
            .collect()
    }

    /// Serializes every shard's index set (with the effective beam widths as
    /// stamps) for the checkpoint's opaque index section.
    fn to_bytes(&self) -> Vec<u8> {
        let sets: Vec<Vec<Option<HnswIndex>>> =
            self.shards.iter().map(|s| s.indexes.clone()).collect();
        supa_ann::encode_index_set(&sets, [self.ef_search as u64, self.ef_margin as u64])
    }

    /// Reconstructs the master from a checkpoint's index section instead of
    /// rebuilding, after validating that the persisted layout matches what
    /// this engine would build: same shard count, same group count, and per
    /// (shard, group) the same item count with presence matching the owned
    /// candidate lists. Every inner index already had its fingerprint
    /// verified during decode, so a restored master is bit-identical to the
    /// one that was saved. Any mismatch is a named error — the caller falls
    /// back to a rebuild, never to silently wrong indexes.
    fn restore(
        opts: &AnnOptions,
        scorer: &ServingSnapshot,
        group_candidates: &[Vec<NodeId>],
        group_of: Vec<usize>,
        shards: usize,
        bytes: &[u8],
    ) -> Result<AnnMaster, String> {
        let n = shards.max(1);
        let (sets, stamps) = supa_ann::decode_index_set(bytes).map_err(|e| e.to_string())?;
        if sets.len() != n {
            return Err(format!(
                "checkpoint index set has {} shard(s), engine runs {n}",
                sets.len()
            ));
        }
        let config = opts.config();
        let mut built = Vec::with_capacity(n);
        for (s, set) in sets.into_iter().enumerate() {
            let owned = Self::owned_groups(group_candidates, n, s);
            if set.len() != owned.len() {
                return Err(format!(
                    "checkpoint index set has {} group(s), schema derives {}",
                    set.len(),
                    owned.len()
                ));
            }
            for (g, (index, own)) in set.iter().zip(&owned).enumerate() {
                match index {
                    Some(ix) => {
                        if ix.dim() != scorer.dim() {
                            return Err(format!(
                                "shard {s} group {g}: index dim {} != model dim {}",
                                ix.dim(),
                                scorer.dim()
                            ));
                        }
                        if ix.len() != own.len() {
                            return Err(format!(
                                "shard {s} group {g}: index holds {} item(s), candidate set has {}",
                                ix.len(),
                                own.len()
                            ));
                        }
                    }
                    None => {
                        if !own.is_empty() {
                            return Err(format!(
                                "shard {s} group {g}: index missing for {} candidate(s)",
                                own.len()
                            ));
                        }
                    }
                }
            }
            built.push(ShardAnn {
                config: config.clone(),
                indexes: set,
                owned,
                buf: Vec::new(),
                batch_ids: Vec::new(),
                batch_rows: Vec::new(),
            });
        }
        // An auto-tuned engine resumes where the tuner left off (the stamps
        // carry the effective widths, floored at the configured base); a
        // static configuration ignores the stamps so behaviour stays exactly
        // the configured one.
        let (ef_search, ef_margin) = if opts.auto_tune {
            (
                (stamps[0] as usize).max(opts.ef_search),
                (stamps[1] as usize).max(opts.ef_margin),
            )
        } else {
            (opts.ef_search, opts.ef_margin)
        };
        Ok(AnnMaster {
            shards: built,
            group_of,
            ef_search,
            ef_margin,
            tuner: opts.auto_tune.then(|| AnnTuner::new(opts)),
        })
    }

    /// Freezes the current masters into a publishable epoch.
    fn freeze(&self) -> Arc<AnnEpoch> {
        Arc::new(AnnEpoch {
            indexes: self.shards.iter().map(|s| s.indexes.clone()).collect(),
            group_of: self.group_of.clone(),
            ef_search: self.ef_search,
            ef_margin: self.ef_margin,
        })
    }
}

/// Writer-side hysteresis for the effective beam widths, driven by the
/// recall guard's counters (accumulated by readers, read at each publish).
///
/// - **Up**: an interval with at least [`TUNE_MIN_CHECKS`] guard checks and
///   interval recall below the floor widens both `ef_search` and
///   `ef_margin` by ~1.5× (capped at [`TUNE_MAX_SCALE`]× the configured
///   base).
/// - **Down**: [`TUNE_CALM_INTERVALS`] consecutive qualifying intervals
///   with recall at least [`TUNE_HEADROOM`] above the floor step both
///   widths a quarter of the way back toward the configured base (never
///   below it).
///
/// Intervals with fewer than [`TUNE_MIN_CHECKS`] fresh checks are skipped
/// without consuming the counters, so sparse guard traffic accumulates
/// until a judgement is statistically worth making.
struct AnnTuner {
    base_ef: usize,
    base_margin: usize,
    min_recall: f64,
    seen_checks: u64,
    seen_expected: u64,
    seen_matched: u64,
    calm: u32,
}

/// Minimum fresh guard checks before the tuner judges an interval.
const TUNE_MIN_CHECKS: u64 = 4;
/// Recall headroom above the floor that counts as a calm interval.
const TUNE_HEADROOM: f64 = 0.02;
/// Consecutive calm intervals before stepping the widths back down.
const TUNE_CALM_INTERVALS: u32 = 3;
/// Cap on the widths: this multiple of the configured base.
const TUNE_MAX_SCALE: usize = 8;
/// Smallest widening step, so tiny configured widths still move.
const TUNE_MIN_STEP: usize = 8;

impl AnnTuner {
    fn new(opts: &AnnOptions) -> AnnTuner {
        AnnTuner {
            base_ef: opts.ef_search,
            base_margin: opts.ef_margin,
            min_recall: opts.min_recall,
            seen_checks: 0,
            seen_expected: 0,
            seen_matched: 0,
            calm: 0,
        }
    }
}

/// Writer-exit codes for [`Shared::closed`]. `OPEN` means the writer is
/// (as far as anyone knows) still consuming.
const OPEN: u8 = 0;
const CLOSED_SHUTDOWN: u8 = 1;
const CLOSED_FAULT: u8 = 2;
const CLOSED_PANIC: u8 = 3;
const CLOSED_KILLED: u8 = 4;

/// State shared between the writer thread and all reader threads.
///
/// The per-shard vectors (`caches`, `metrics`, `admission`) always have
/// exactly [`Shared::shards`] entries; an unsharded engine is the
/// one-element case, and `shard_of(_, 1) == 0` makes every routed access
/// hit element 0 — identical to the pre-sharding engine.
struct Shared {
    current: RwLock<Arc<EpochSnapshot>>,
    history: Mutex<std::collections::VecDeque<Arc<EpochSnapshot>>>,
    /// Per-shard query caches, keyed by the owning shard of the queried
    /// user, so cache capacity and eviction pressure partition with the
    /// users.
    caches: Vec<QueryCache>,
    /// Per-shard counters; engine-level facts (`epochs_published`, delta
    /// counters) live on shard 0. Reports merge all shards.
    metrics: Vec<ServeMetrics>,
    /// Writer shard count (≥ 1).
    shards: usize,
    /// Global event sequence: producers stamp, lane-deposit, and ring the
    /// doorbell under this lock, so doorbell order is a total order over
    /// ingested events and `*seq` (read under the lock) counts exactly the
    /// doorbells already rung. Uncontended (and untouched) when unsharded.
    seq: Mutex<u64>,
    /// Per-relation candidate item lists (all nodes of the relation's
    /// destination type), ascending and duplicate-free. The node universe is
    /// fixed at start — the guard rejects events naming unknown nodes — so
    /// these never change.
    candidates: Vec<Vec<NodeId>>,
    /// ANN serving configuration (readers need `ef_search` and the guard
    /// cadence); `None` when serving exactly.
    ann_opts: Option<AnnOptions>,
    /// Per-shard overload detectors and ladder state; `None` under
    /// [`ShedPolicy::Block`] (detector off, classic backpressure, zero
    /// hot-path overhead).
    admission: Option<Vec<AdmissionCtl>>,
    /// Why the writer stopped (`OPEN` while it runs). Written exactly once:
    /// by the writer on a clean exit, or by its panic guard. Producers that
    /// keep a queue receiver alive (drop-oldest) poll this instead of
    /// relying on channel disconnection.
    closed: AtomicU8,
}

impl Shared {
    /// The closed-cause for producer-facing errors. Racing a writer that
    /// has stopped but not yet stored its code resolves as `Shutdown`.
    fn closed_cause(&self) -> ClosedCause {
        match self.closed.load(Ordering::SeqCst) {
            CLOSED_FAULT => ClosedCause::Fault,
            CLOSED_PANIC => ClosedCause::Panic,
            CLOSED_KILLED => ClosedCause::Killed,
            _ => ClosedCause::Shutdown,
        }
    }

    /// The metrics block of the shard owning `node`.
    fn metrics_of(&self, node: u32) -> &ServeMetrics {
        &self.metrics[supa_par::shard_of(node, self.shards)]
    }

    /// The query cache of the shard owning `node`.
    fn cache_of(&self, node: u32) -> &QueryCache {
        &self.caches[supa_par::shard_of(node, self.shards)]
    }

    /// Engine-wide staleness: Σ ingested − Σ applied across shards.
    fn staleness(&self) -> u64 {
        let ingested: u64 = self
            .metrics
            .iter()
            .map(|m| m.events_ingested.load(Ordering::Relaxed))
            .sum();
        let applied: u64 = self
            .metrics
            .iter()
            .map(|m| m.events_applied.load(Ordering::Relaxed))
            .sum();
        ingested.saturating_sub(applied)
    }

    /// Engine-wide shed tally across shards and priority classes.
    fn total_shed(&self) -> u64 {
        self.metrics.iter().map(|m| m.events_shed()).sum()
    }

    /// Engine-wide quarantine tally across shards.
    fn total_quarantined(&self) -> u64 {
        self.metrics
            .iter()
            .map(|m| m.events_quarantined.load(Ordering::Relaxed))
            .sum()
    }

    /// The worst (highest) degradation level across shard ladders; 0 under
    /// the block policy.
    fn max_level(&self) -> u8 {
        self.admission.as_ref().map_or(0, |ctls| {
            ctls.iter().map(|c| c.level().as_u8()).max().unwrap_or(0)
        })
    }

    /// All shards' counters folded into one engine-level block.
    fn merged_metrics(&self) -> ServeMetrics {
        let merged = ServeMetrics::default();
        for m in &self.metrics {
            merged.merge_from(m);
        }
        merged
    }
}

/// Sets [`Shared::closed`] to `Panic` if the writer unwinds without storing
/// a clean exit code. Declared as the writer's *first* local so it drops
/// after every other local but before the function's channel-receiver
/// parameters — producers blocked on the queue observe the disconnect only
/// after the cause is already published.
struct PanicFlag(Arc<Shared>);

impl Drop for PanicFlag {
    fn drop(&mut self) {
        let _ =
            self.0
                .closed
                .compare_exchange(OPEN, CLOSED_PANIC, Ordering::SeqCst, Ordering::SeqCst);
    }
}

/// A ranked answer, attributable to one published epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The epoch of the snapshot that produced `items`.
    pub epoch: u64,
    /// Top-K `(item, score)` pairs, best first, ties broken by id.
    pub items: Vec<(NodeId, f32)>,
}

/// Why the engine stopped consuming events.
#[derive(Debug)]
pub enum StopCause {
    /// Clean shutdown (or all producers hung up).
    Shutdown,
    /// [`ServeHandle::kill`] — simulated crash, no final flush/checkpoint.
    Killed,
    /// A malformed event under [`QuarantinePolicy::Strict`].
    Fault(QuarantineError),
    /// The writer thread panicked; the payload message is preserved so the
    /// operator sees *what* died, not just that ingest stopped.
    Panicked(String),
}

/// Final report returned by [`ServeHandle::shutdown`].
#[derive(Debug)]
pub struct ServeReport {
    /// Admission tally over the whole run.
    pub quarantine: QuarantineReport,
    /// Serving counters and latency summary.
    pub metrics: MetricsReport,
    /// Why the writer stopped.
    pub stop: StopCause,
    /// Admitted events at shutdown (= checkpointed stream position).
    pub events_admitted: u64,
}

/// Control messages; events travel on their own bounded channel so control
/// can never be shed and never waits behind a full queue.
enum Ctrl {
    Flush(std_mpsc::Sender<()>),
    Shutdown,
    Kill,
}

/// Why an [`EngineClosed`] producer error happened — a panicked writer is a
/// different operational event than a strict-policy stop or a clean
/// shutdown, and callers (and the `supa serve` exit message) tell them
/// apart by this cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClosedCause {
    /// Clean shutdown (or the handle was dropped).
    Shutdown,
    /// A malformed event stopped ingest under [`QuarantinePolicy::Strict`].
    Fault,
    /// The writer thread panicked.
    Panic,
    /// [`ServeHandle::kill`] simulated a crash.
    Killed,
}

/// The ingest channel closed: the writer stopped for [`EngineClosed::cause`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineClosed {
    /// Why the writer stopped accepting events.
    pub cause: ClosedCause,
}

impl std::fmt::Display for EngineClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let why = match self.cause {
            ClosedCause::Shutdown => "writer shut down",
            ClosedCause::Fault => "strict quarantine policy stopped ingest",
            ClosedCause::Panic => "writer thread panicked",
            ClosedCause::Killed => "writer was killed",
        };
        write!(f, "serving engine is no longer accepting events ({why})")
    }
}

impl std::error::Error for EngineClosed {}

struct WriterExit {
    quarantine: QuarantineReport,
    stop: StopCause,
    events_admitted: u64,
}

/// The producer side of the ingest path: one bounded queue when unsharded,
/// or per-shard lanes plus the doorbell channel that serializes the global
/// event order.
enum IngestTx {
    Single {
        data: channel::Sender<(TemporalEdge, f32)>,
    },
    Sharded {
        lanes: Vec<channel::Sender<(TemporalEdge, f32)>>,
        bell: channel::Sender<(u64, usize)>,
    },
}

/// Handle to a running serving engine. `ingest`/`query` take `&self`, so a
/// single handle can be shared by reference across producer and reader
/// threads; `shutdown`/`kill` consume it.
pub struct ServeHandle {
    ingest: IngestTx,
    ctrl_tx: channel::Sender<Ctrl>,
    /// Drop-oldest eviction: a second receiver on the data queue so a
    /// producer facing a full queue can pop the oldest event itself. Only
    /// the drop-oldest policy holds one — for the other policies the writer
    /// keeps the sole receiver, preserving send-fails-when-writer-dies
    /// disconnect semantics.
    evict_rx: Option<channel::Receiver<(TemporalEdge, f32)>>,
    shared: Arc<Shared>,
    writer: Option<JoinHandle<WriterExit>>,
    started: Instant,
    /// Bound address of the delta publisher's TCP listener (`None` without
    /// TCP replication). With port 0 this is how callers learn the port.
    replication_addr: Option<std::net::SocketAddr>,
}

/// Builder entry point: spawn the writer thread and return a handle.
pub struct ServeEngine;

impl ServeEngine {
    /// Starts serving `model` over `graph` (the node universe and schema;
    /// typically a dataset's prototype plus any warm-start edges).
    ///
    /// If checkpoint resume is configured, the newest valid checkpoint is
    /// loaded *before* the first snapshot is published, and the checkpoint's
    /// stream position tells the writer how many admitted events to replay
    /// into the graph without retraining (the restored embeddings already
    /// reflect them).
    ///
    /// Rejects invalid configuration with a named `InvalidInput` error:
    /// ANN options out of range, a zero-capacity queue, a zero sampling
    /// divisor, or an empty priority map.
    pub fn start(graph: Dmhg, mut model: Supa, cfg: ServeConfig) -> std::io::Result<ServeHandle> {
        if let Some(ann) = &cfg.ann {
            if !ann.min_recall.is_finite() || !(0.0..=1.0).contains(&ann.min_recall) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!(
                        "ann min_recall must be a finite value in [0, 1], got {}",
                        ann.min_recall
                    ),
                ));
            }
            if ann.ef_search == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "ann ef_search must be at least 1",
                ));
            }
            if ann.auto_tune && ann.guard_every == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "ann auto_tune requires the recall guard (guard_every > 0)",
                ));
            }
        }
        if cfg.shards == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "shards must be at least 1 (got 0); use 1 for the unsharded engine",
            ));
        }
        // Sharded lanes split the queue capacity; each lane (and its
        // admission ladder) must still be able to hold an event.
        let lane_capacity = if cfg.shards > 1 {
            cfg.queue_capacity.div_ceil(cfg.shards)
        } else {
            cfg.queue_capacity
        };
        cfg.admission.validate(lane_capacity).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("admission: {e}"))
        })?;
        model.enable_touch_tracking();
        model.set_workers(cfg.workers);
        model.set_shards(cfg.shards);

        let mut manager = None;
        let mut resume_skip = 0u64;
        let mut resume_index: Option<Vec<u8>> = None;
        let mut resumed = false;
        if let Some(ck) = &cfg.checkpoint {
            let mgr = CheckpointManager::new(&ck.dir, ck.keep)?;
            if ck.resume {
                let (outcome, index) = mgr.resume_with_index(&mut model)?;
                if let Some((_, events)) = outcome.loaded {
                    resume_skip = events;
                    resume_index = index;
                    resumed = true;
                }
            }
            manager = Some(mgr);
        }

        let candidates: Vec<Vec<NodeId>> = (0..graph.schema().num_relations())
            .map(|r| {
                let spec = graph.schema().relation(RelationId(r as u16)).unwrap();
                let mut list = graph.nodes_of_type(spec.dst_type).to_vec();
                let before = list.len();
                list.sort_unstable();
                list.dedup();
                // The graph hands out each node of a type exactly once; a
                // duplicate here would double-score (and double-index) an
                // item, so treat it as the logic bug it is.
                assert_eq!(
                    list.len(),
                    before,
                    "duplicate candidate items for relation {r}"
                );
                list
            })
            .collect();

        let scorer = model.export_serving_snapshot();
        // Shared-base layout: relations grouped by destination type share
        // one candidate set and one base index. The grouping is a pure
        // function of the schema, so the writer, its replicas, and a resumed
        // process all derive the identical layout.
        let (group_of, num_groups) = graph.schema().dst_type_groups();
        let mut group_candidates: Vec<Vec<NodeId>> = vec![Vec::new(); num_groups];
        {
            let mut filled = vec![false; num_groups];
            for (r, &g) in group_of.iter().enumerate() {
                if !filled[g] {
                    group_candidates[g] = candidates[r].clone();
                    filled[g] = true;
                }
            }
        }
        let ann_master = cfg.ann.as_ref().map(|opts| {
            if let Some(bytes) = resume_index.as_deref() {
                match AnnMaster::restore(
                    opts,
                    &scorer,
                    &group_candidates,
                    group_of.clone(),
                    cfg.shards,
                    bytes,
                ) {
                    Ok(master) => {
                        eprintln!(
                            "supa-serve: ann indexes restored from checkpoint \
                             ({} shard(s) x {num_groups} group(s), fingerprints verified)",
                            cfg.shards
                        );
                        return master;
                    }
                    // Named fallback: a checkpoint whose index section does
                    // not match this engine's layout is reported and
                    // rebuilt — never silently adopted.
                    Err(why) => eprintln!(
                        "supa-serve: checkpoint ann index rejected ({why}); rebuilding indexes"
                    ),
                }
            } else if resumed {
                eprintln!("supa-serve: checkpoint carries no ann index; rebuilding indexes");
            }
            AnnMaster::build(
                opts,
                &scorer,
                &group_candidates,
                group_of.clone(),
                cfg.shards,
            )
        });
        let initial = Arc::new(EpochSnapshot {
            epoch: 0,
            scorer,
            ann: ann_master.as_ref().map(AnnMaster::freeze),
        });
        // Replication starts against the epoch-0 state: the segment file
        // opens with a full baseline, and `wait_subscribers` holds the
        // engine here until the required TCP replicas have attached — those
        // replicas adopt (or rebuild to) the writer's epoch-0 ANN state and
        // stay structurally bit-identical through incremental refreshes.
        // The epoch-0 baseline carries the serialized index set so replica
        // cold-start can skip the O(n·ef_c·log n) rebuild.
        let publisher = match &cfg.replication {
            Some(opts) => {
                let index_bytes = ann_master.as_ref().map(AnnMaster::to_bytes);
                Some(DeltaPublisher::start(
                    opts,
                    0,
                    &initial.scorer,
                    GuardState::default(),
                    index_bytes.as_deref(),
                )?)
            }
            None => None,
        };
        let replication_addr = publisher.as_ref().and_then(DeltaPublisher::bound_addr);
        let admission = (cfg.admission.policy != ShedPolicy::Block).then(|| {
            (0..cfg.shards)
                .map(|_| AdmissionCtl::new(cfg.admission.clone(), lane_capacity, cfg.train_batch))
                .collect()
        });
        let caches = if cfg.shards > 1 {
            (0..cfg.shards)
                .map(|_| QueryCache::new(cfg.cache_capacity.div_ceil(cfg.shards)))
                .collect()
        } else {
            vec![QueryCache::new(cfg.cache_capacity)]
        };
        let shared = Arc::new(Shared {
            current: RwLock::new(initial.clone()),
            history: Mutex::new(std::collections::VecDeque::from([initial])),
            caches,
            metrics: (0..cfg.shards).map(|_| ServeMetrics::default()).collect(),
            shards: cfg.shards,
            seq: Mutex::new(0),
            candidates,
            ann_opts: cfg.ann.clone(),
            admission,
            closed: AtomicU8::new(OPEN),
        });

        let (ctrl_tx, ctrl_rx) = channel::unbounded();
        let writer_shared = shared.clone();
        let (ingest, evict_rx, writer) = if cfg.shards > 1 {
            let mut lane_txs = Vec::with_capacity(cfg.shards);
            let mut lane_rxs = Vec::with_capacity(cfg.shards);
            for _ in 0..cfg.shards {
                let (tx, rx) = channel::bounded(lane_capacity);
                lane_txs.push(tx);
                lane_rxs.push(rx);
            }
            let (bell_tx, bell_rx) = channel::unbounded();
            let writer = std::thread::Builder::new()
                .name("supa-serve-writer".into())
                .spawn(move || {
                    sharded_writer_loop(
                        bell_rx,
                        lane_rxs,
                        ctrl_rx,
                        writer_shared,
                        graph,
                        model,
                        manager,
                        resume_skip,
                        ann_master,
                        publisher,
                        cfg,
                    )
                })?;
            (
                IngestTx::Sharded {
                    lanes: lane_txs,
                    bell: bell_tx,
                },
                None,
                writer,
            )
        } else {
            let (data_tx, data_rx) = channel::bounded(cfg.queue_capacity);
            let evict_rx =
                (cfg.admission.policy == ShedPolicy::DropOldest).then(|| data_rx.clone());
            let writer = std::thread::Builder::new()
                .name("supa-serve-writer".into())
                .spawn(move || {
                    writer_loop(
                        data_rx,
                        ctrl_rx,
                        writer_shared,
                        graph,
                        model,
                        manager,
                        resume_skip,
                        ann_master,
                        publisher,
                        cfg,
                    )
                })?;
            (IngestTx::Single { data: data_tx }, evict_rx, writer)
        };

        Ok(ServeHandle {
            ingest,
            ctrl_tx,
            evict_rx,
            shared,
            writer: Some(writer),
            started: Instant::now(),
            replication_addr,
        })
    }
}

struct Writer {
    shared: Arc<Shared>,
    graph: Dmhg,
    model: Supa,
    /// One guard per shard, so quarantine state (dedup windows, order
    /// tracking) partitions with the users; the unsharded engine is the
    /// one-guard case. The final report merges all of them.
    guards: Vec<StreamGuard>,
    manager: Option<CheckpointManager>,
    ann: Option<AnnMaster>,
    publisher: Option<DeltaPublisher>,
    /// Events absorbed into the graph since the last publish — the
    /// adjacency part of the next delta frame.
    interval_events: Vec<TemporalEdge>,
    /// Whether the ANN masters reflect the model's current embeddings
    /// (true right after a publish, false once training has moved the model
    /// past the last refresh). Only a *fresh* master may be serialized into
    /// a checkpoint — a stale one would resume with index vectors behind
    /// the restored embeddings.
    ann_fresh: bool,
    cfg: ServeConfig,
    pending: Vec<TemporalEdge>,
    /// Per-event importance weights, aligned with `pending`. Maintained only
    /// under 1-in-k sampling (`weighted`); every other policy trains the
    /// exact unweighted path.
    pending_w: Vec<f32>,
    weighted: bool,
    admitted: u64,
    resume_skip: u64,
    epoch: u64,
    chunks: u64,
}

#[allow(clippy::too_many_arguments)]
fn writer_loop(
    data_rx: channel::Receiver<(TemporalEdge, f32)>,
    ctrl_rx: channel::Receiver<Ctrl>,
    shared: Arc<Shared>,
    graph: Dmhg,
    model: Supa,
    manager: Option<CheckpointManager>,
    resume_skip: u64,
    ann: Option<AnnMaster>,
    publisher: Option<DeltaPublisher>,
    cfg: ServeConfig,
) -> WriterExit {
    // First local: drops last, after `w` and friends but before the channel
    // receivers (function parameters drop after all locals), so a panicking
    // writer publishes its cause before producers see the disconnect.
    let _panic_flag = PanicFlag(shared.clone());
    let guards = vec![StreamGuard::new(cfg.policy)];
    let weighted = shared
        .admission
        .as_ref()
        .is_some_and(|c| c[0].policy() == ShedPolicy::SampleOneInK);
    // With the detector on, an idle writer still ticks it every couple of
    // milliseconds so the ladder recovers after a burst even if no further
    // event or query arrives. Under `block` the ladder is pinned at level 0
    // and the tick is effectively never (plain blocking receive).
    let idle = if shared.admission.is_some() {
        Duration::from_millis(2)
    } else {
        Duration::from_secs(86_400)
    };
    let mut w = Writer {
        shared,
        graph,
        model,
        guards,
        manager,
        ann,
        publisher,
        interval_events: Vec::new(),
        ann_fresh: true,
        cfg,
        pending: Vec::new(),
        pending_w: Vec::new(),
        weighted,
        admitted: 0,
        resume_skip,
        epoch: 0,
        chunks: 0,
    };

    let stop = loop {
        crossbeam::select! {
            recv(data_rx) -> msg => match msg {
                Ok((edge, weight)) => {
                    w.observe_shard(0, data_rx.len());
                    if let Some(stop) = w.handle_event(edge, weight) {
                        break stop;
                    }
                }
                Err(_) => {
                    // Every producer hung up: final train/publish/checkpoint.
                    w.train_pending();
                    w.publish();
                    w.save_checkpoint();
                    break StopCause::Shutdown;
                }
            },
            recv(ctrl_rx) -> msg => match msg {
                Ok(Ctrl::Flush(ack)) => {
                    // Drain first: everything enqueued before the flush is
                    // trained under it, exactly like the single-queue engine.
                    if let Some(stop) = w.drain(&data_rx) {
                        break stop;
                    }
                    w.train_pending();
                    w.publish();
                    let _ = ack.send(());
                }
                Ok(Ctrl::Shutdown) | Err(_) => {
                    if let Some(stop) = w.drain(&data_rx) {
                        break stop;
                    }
                    w.train_pending();
                    w.publish();
                    w.save_checkpoint();
                    break StopCause::Shutdown;
                }
                Ok(Ctrl::Kill) => {
                    // Simulated crash. Events enqueued before the kill are
                    // still absorbed (they preceded it in program order) but
                    // nothing is flushed, published, or checkpointed.
                    if let Some(stop) = w.drain(&data_rx) {
                        break stop;
                    }
                    break StopCause::Killed;
                }
            },
            default(idle) => w.observe_shard(0, data_rx.len()),
        }
    };

    writer_exit(w, stop)
}

/// The sharded writer spine: consumes doorbells in global sequence order and
/// pulls each belled event from its shard's fronted lane. A lane deposit
/// always precedes its doorbell (both under the producers' sequence lock),
/// so `lanes[s].recv()` after a doorbell for shard `s` returns immediately —
/// the spine can never block on a lane while another lane has work.
#[allow(clippy::too_many_arguments)]
fn sharded_writer_loop(
    bell_rx: channel::Receiver<(u64, usize)>,
    lanes: Vec<channel::Receiver<(TemporalEdge, f32)>>,
    ctrl_rx: channel::Receiver<Ctrl>,
    shared: Arc<Shared>,
    graph: Dmhg,
    model: Supa,
    manager: Option<CheckpointManager>,
    resume_skip: u64,
    ann: Option<AnnMaster>,
    publisher: Option<DeltaPublisher>,
    cfg: ServeConfig,
) -> WriterExit {
    let _panic_flag = PanicFlag(shared.clone());
    let guards = (0..cfg.shards)
        .map(|_| StreamGuard::new(cfg.policy))
        .collect();
    let weighted = shared
        .admission
        .as_ref()
        .is_some_and(|c| c[0].policy() == ShedPolicy::SampleOneInK);
    let idle = if shared.admission.is_some() {
        Duration::from_millis(2)
    } else {
        Duration::from_secs(86_400)
    };
    let mut w = Writer {
        shared,
        graph,
        model,
        guards,
        manager,
        ann,
        publisher,
        interval_events: Vec::new(),
        ann_fresh: true,
        cfg,
        pending: Vec::new(),
        pending_w: Vec::new(),
        weighted,
        admitted: 0,
        resume_skip,
        epoch: 0,
        chunks: 0,
    };
    // Doorbells consumed so far; always equal to the next expected sequence
    // number, which `drain_sharded` compares against the producers' stamp
    // counter to drain exactly the events enqueued before a control message.
    let mut consumed: u64 = 0;

    let stop = loop {
        crossbeam::select! {
            recv(bell_rx) -> msg => match msg {
                Ok((seq, s)) => {
                    debug_assert_eq!(seq, consumed, "doorbell out of order");
                    consumed += 1;
                    let (edge, weight) = lanes[s]
                        .recv()
                        .expect("belled event is already in its lane");
                    w.observe_shard(s, lanes[s].len());
                    if let Some(stop) = w.handle_event(edge, weight) {
                        break stop;
                    }
                }
                Err(_) => {
                    // Every producer hung up. All doorbells (and therefore
                    // all lane deposits) have been drained: the bell channel
                    // delivers its backlog before disconnecting, and every
                    // deposit rings before the producer releases the lock.
                    w.train_pending();
                    w.publish();
                    w.save_checkpoint();
                    break StopCause::Shutdown;
                }
            },
            recv(ctrl_rx) -> msg => match msg {
                Ok(Ctrl::Flush(ack)) => {
                    if let Some(stop) = w.drain_sharded(&bell_rx, &lanes, &mut consumed) {
                        break stop;
                    }
                    w.train_pending();
                    w.publish();
                    let _ = ack.send(());
                }
                Ok(Ctrl::Shutdown) | Err(_) => {
                    if let Some(stop) = w.drain_sharded(&bell_rx, &lanes, &mut consumed) {
                        break stop;
                    }
                    w.train_pending();
                    w.publish();
                    w.save_checkpoint();
                    break StopCause::Shutdown;
                }
                Ok(Ctrl::Kill) => {
                    if let Some(stop) = w.drain_sharded(&bell_rx, &lanes, &mut consumed) {
                        break stop;
                    }
                    break StopCause::Killed;
                }
            },
            default(idle) => {
                for (s, lane) in lanes.iter().enumerate() {
                    w.observe_shard(s, lane.len());
                }
            }
        }
    };

    writer_exit(w, stop)
}

/// Field-wise sum of one shard guard's report into the engine-level one.
/// Fault samples are concatenated in shard order (their stream positions are
/// per-shard admission counts).
fn merge_quarantine(into: &mut QuarantineReport, from: QuarantineReport) {
    into.admitted += from.admitted;
    into.clamped += from.clamped;
    into.quarantined += from.quarantined;
    into.non_finite_time += from.non_finite_time;
    into.negative_time += from.negative_time;
    into.unknown_node += from.unknown_node;
    into.unknown_relation += from.unknown_relation;
    into.endpoint_mismatch += from.endpoint_mismatch;
    into.out_of_order += from.out_of_order;
    into.duplicate += from.duplicate;
    into.samples.extend(from.samples);
}

/// Publishes the writer's stop cause and merges the per-shard quarantine
/// reports into the exit summary.
fn writer_exit(w: Writer, stop: StopCause) -> WriterExit {
    let code = match &stop {
        StopCause::Shutdown => CLOSED_SHUTDOWN,
        StopCause::Killed => CLOSED_KILLED,
        StopCause::Fault(_) => CLOSED_FAULT,
        StopCause::Panicked(_) => CLOSED_PANIC,
    };
    w.shared.closed.store(code, Ordering::SeqCst);

    let mut quarantine = QuarantineReport::default();
    for g in w.guards {
        merge_quarantine(&mut quarantine, g.into_report());
    }
    WriterExit {
        quarantine,
        stop,
        events_admitted: w.admitted,
    }
}

impl Writer {
    /// Feeds shard `s`'s overload detector one (occupancy, staleness)
    /// observation. Occupancy is per-lane; staleness is the engine-wide lag
    /// (training drains all lanes in one global order, so lag is a shared
    /// fact).
    fn observe_shard(&self, s: usize, occupancy: usize) {
        if let Some(ctls) = &self.shared.admission {
            ctls[s].observe(occupancy, self.shared.staleness(), &self.shared.metrics[s]);
        }
    }

    /// Guards and absorbs one dequeued event; `Some` stops the loop
    /// (strict-policy fault).
    fn handle_event(&mut self, edge: TemporalEdge, weight: f32) -> Option<StopCause> {
        let s = supa_par::shard_of(edge.src.0, self.guards.len());
        match self.guards[s].admit(&self.graph, edge) {
            Ok(Some(e)) => {
                self.absorb(e, weight);
                None
            }
            Ok(None) => {
                self.shared.metrics[s]
                    .events_quarantined
                    .fetch_add(1, Ordering::Relaxed);
                None
            }
            // Strict policy: stop consuming. Whatever trained so far stays
            // published; producers see EngineClosed.
            Err(err) => Some(StopCause::Fault(err)),
        }
    }

    /// Processes every event already in the queue (used before honoring a
    /// control message, so control never overtakes data).
    fn drain(&mut self, data_rx: &channel::Receiver<(TemporalEdge, f32)>) -> Option<StopCause> {
        while let Ok((edge, weight)) = data_rx.try_recv() {
            if let Some(stop) = self.handle_event(edge, weight) {
                return Some(stop);
            }
        }
        None
    }

    /// Sharded drain: processes every event stamped before this call, in
    /// doorbell order. The target is read under the sequence lock (so no
    /// producer is mid-deposit at the instant it's taken), and every stamp
    /// below the target already has its doorbell in the channel — the
    /// blocking `recv` calls below can only wait for messages in flight,
    /// never for future producers.
    fn drain_sharded(
        &mut self,
        bell_rx: &channel::Receiver<(u64, usize)>,
        lanes: &[channel::Receiver<(TemporalEdge, f32)>],
        consumed: &mut u64,
    ) -> Option<StopCause> {
        let target = *self.shared.seq.lock();
        while *consumed < target {
            match bell_rx.recv() {
                Ok((seq, s)) => {
                    debug_assert_eq!(seq, *consumed, "doorbell out of order");
                    *consumed += 1;
                    let (edge, weight) = lanes[s]
                        .recv()
                        .expect("belled event is already in its lane");
                    if let Some(stop) = self.handle_event(edge, weight) {
                        return Some(stop);
                    }
                }
                Err(_) => break,
            }
        }
        None
    }

    /// The training-chunk size currently in force: the configured batch,
    /// widened by the ladder's chunk scale once any shard's ladder is at
    /// level 1 or higher.
    fn effective_batch(&self) -> usize {
        let base = self.cfg.train_batch.max(1);
        match &self.shared.admission {
            Some(ctls) if ctls.iter().any(|c| c.level() >= DegradeLevel::WideChunks) => {
                base.saturating_mul(ctls[0].chunk_scale())
            }
            _ => base,
        }
    }

    /// Handles one admitted event: insert into the graph, then either count
    /// it as already applied (checkpoint replay) or queue it for training
    /// with its importance weight.
    fn absorb(&mut self, e: TemporalEdge, weight: f32) {
        use std::sync::atomic::Ordering::Relaxed;
        let m = self.shared.metrics_of(e.src.0);
        // `admit` validated everything `add_edge` checks; a failure here is
        // a logic bug, but serving must not panic — quarantine instead.
        if self
            .graph
            .add_edge(e.src, e.dst, e.relation, e.time)
            .is_err()
        {
            m.events_quarantined.fetch_add(1, Relaxed);
            return;
        }
        self.admitted += 1;
        m.events_ingested.fetch_add(1, Relaxed);
        if self.publisher.is_some() {
            self.interval_events.push(e);
        }
        if let Some(limit) = self.cfg.panic_after {
            if self.admitted >= limit {
                panic!("injected writer fault after {limit} events");
            }
        }
        if self.admitted <= self.resume_skip {
            // Replay: the restored embeddings already reflect this event.
            m.events_applied.fetch_add(1, Relaxed);
            return;
        }
        self.pending.push(e);
        if self.weighted {
            self.pending_w.push(weight);
        }
        if self.pending.len() >= self.effective_batch() {
            self.train_pending();
            if self
                .chunks
                .is_multiple_of(self.cfg.snapshot_every.max(1) as u64)
            {
                self.publish();
            }
            if let Some(every) = self.cfg.checkpoint.as_ref().map(|c| c.every.max(1) as u64) {
                if self.chunks.is_multiple_of(every) {
                    self.save_checkpoint();
                }
            }
        }
    }

    /// Trains the pending chunk (if any) with one InsLearn call, yielding
    /// the scheduler between training iterations.
    ///
    /// The call is bit-identical to `fit_incremental` — the per-iteration
    /// hook is passive, drawing no randomness and touching no state — but
    /// the yields bound reader tail latency: on a machine with fewer cores
    /// than threads, one chunk's InsLearn refresh (up to `n_iter` passes
    /// plus validations) is a tens-of-milliseconds CPU burst that starves
    /// every runnable reader, and that starvation lands directly in the
    /// query p99. Yielding once per pass caps a reader's wait at roughly
    /// one `train_pass` over the chunk.
    ///
    /// Under 1-in-k sampling the chunk carries per-event weights (k for
    /// resampled survivors, 1 otherwise) so the surviving events' updates
    /// preserve the stream's expected gradient mass; every other policy
    /// passes no weights and takes the exact legacy path.
    fn train_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let cfg = self.model.inslearn_config().clone();
        let mut yield_hook = |_: &mut Supa, _: u64| std::thread::yield_now();
        let weights = self.weighted.then_some(self.pending_w.as_slice());
        self.model
            .train_inslearn_ft(
                &self.graph,
                &self.pending,
                &cfg,
                TrainOptions {
                    iter_hook: Some(&mut yield_hook),
                    weights,
                    ..TrainOptions::default()
                },
            )
            // No checkpoint manager is passed, so no I/O can fail.
            .expect("training without checkpointing performs no I/O");
        if self.shared.shards > 1 {
            // Attribute each applied event to its owning shard so per-shard
            // staleness stays meaningful.
            for e in &self.pending {
                self.shared
                    .metrics_of(e.src.0)
                    .events_applied
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        } else {
            self.shared.metrics[0].events_applied.fetch_add(
                self.pending.len() as u64,
                std::sync::atomic::Ordering::Relaxed,
            );
        }
        self.pending.clear();
        self.pending_w.clear();
        self.chunks += 1;
        // The model moved; the ANN masters are now behind until the next
        // publish refreshes the touched set.
        self.ann_fresh = false;
    }

    /// Writes a checkpoint. When the ANN masters are fresh (no training
    /// since the last publish — always true at shutdown, which publishes
    /// first) the serialized index set rides along in the v3 format so a
    /// resume skips the rebuild; a stale master is simply omitted and the
    /// resume rebuilds, never restores wrong vectors.
    fn save_checkpoint(&mut self) {
        let Some(mgr) = &mut self.manager else { return };
        match &self.ann {
            Some(master) if self.ann_fresh => {
                let _ = mgr.save_with_index(&self.model, self.admitted, &master.to_bytes());
            }
            _ => {
                let _ = mgr.save(&self.model, self.admitted);
            }
        }
    }

    /// Runs the auto-tuner (when enabled) against the guard counters that
    /// accumulated since its last qualifying interval. See [`AnnTuner`].
    fn tune_ann(&mut self) {
        use std::sync::atomic::Ordering::Relaxed;
        let Some(master) = &mut self.ann else { return };
        let Some(tuner) = &mut master.tuner else {
            return;
        };
        let mut checks = 0u64;
        let mut expected = 0u64;
        let mut matched = 0u64;
        for m in &self.shared.metrics {
            checks += m.ann_guard_checks.load(Relaxed);
            expected += m.ann_guard_expected.load(Relaxed);
            matched += m.ann_guard_matched.load(Relaxed);
        }
        let d_checks = checks.saturating_sub(tuner.seen_checks);
        if d_checks < TUNE_MIN_CHECKS {
            // Not enough fresh evidence; leave the counters unconsumed so
            // sparse guard traffic accumulates toward the threshold.
            return;
        }
        let d_expected = expected.saturating_sub(tuner.seen_expected);
        let d_matched = matched.saturating_sub(tuner.seen_matched);
        tuner.seen_checks = checks;
        tuner.seen_expected = expected;
        tuner.seen_matched = matched;
        let recall = if d_expected == 0 {
            1.0
        } else {
            d_matched as f64 / d_expected as f64
        };
        if recall < tuner.min_recall {
            tuner.calm = 0;
            let cap_ef = tuner.base_ef.saturating_mul(TUNE_MAX_SCALE);
            let cap_margin = tuner
                .base_margin
                .max(TUNE_MIN_STEP)
                .saturating_mul(TUNE_MAX_SCALE);
            master.ef_search =
                (master.ef_search + (master.ef_search / 2).max(TUNE_MIN_STEP)).min(cap_ef);
            master.ef_margin =
                (master.ef_margin + (master.ef_margin / 2).max(TUNE_MIN_STEP)).min(cap_margin);
        } else if recall >= tuner.min_recall + TUNE_HEADROOM {
            tuner.calm += 1;
            if tuner.calm >= TUNE_CALM_INTERVALS {
                tuner.calm = 0;
                // A quarter of the way back toward base, always at least one
                // step so the walk terminates at base instead of stalling
                // just above it.
                let step_down = |cur: usize, base: usize| {
                    if cur > base {
                        (cur - ((cur - base) / 4).max(1)).max(base)
                    } else {
                        base
                    }
                };
                master.ef_search = step_down(master.ef_search, tuner.base_ef);
                master.ef_margin = step_down(master.ef_margin, tuner.base_margin);
            }
        } else {
            tuner.calm = 0;
        }
    }

    /// Phase 1 of the epoch barrier: every shard refreshes its ANN partition
    /// to the common epoch number. Shards own disjoint item ids, so the
    /// per-shard refreshes are independent — they run on scoped threads when
    /// the host has cores to spare and serially otherwise, with bit-identical
    /// results either way. A shard task that panics (the `panic_shard` test
    /// seam, or a real fault) is re-raised on the writer thread after every
    /// other shard has been joined, so the panic path is identical to any
    /// other writer panic: cause published, producers see `EngineClosed`.
    fn publish_phase1(
        &mut self,
        scorer: &ServingSnapshot,
        touched: &[u32],
    ) -> (Option<Arc<AnnEpoch>>, u64) {
        let seam = self.cfg.panic_shard;
        let epoch = self.epoch;
        let Some(master) = &mut self.ann else {
            // ANN disabled: nothing to refresh, but the fault seam still
            // fires so the kill-one-shard path is testable without an index.
            if let Some(s) = seam {
                if s < self.shared.shards {
                    panic!(
                        "injected shard fault: shard {s} failed during epoch {epoch} publication"
                    );
                }
            }
            return (None, 0);
        };
        let shard_task = |s: usize, sa: &mut ShardAnn| -> usize {
            if seam == Some(s) {
                panic!("injected shard fault: shard {s} failed during epoch {epoch} publication");
            }
            sa.refresh(scorer, touched)
        };
        let mut refreshed = 0u64;
        if master.shards.len() == 1 || supa_par::available_workers() == 1 {
            for (s, sa) in master.shards.iter_mut().enumerate() {
                refreshed += shard_task(s, sa) as u64;
            }
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = master
                    .shards
                    .iter_mut()
                    .enumerate()
                    .map(|(s, sa)| scope.spawn(move || shard_task(s, sa)))
                    .collect();
                let mut first_panic = None;
                for h in handles {
                    match h.join() {
                        Ok(n) => refreshed += n as u64,
                        Err(payload) => {
                            first_panic.get_or_insert(payload);
                        }
                    }
                }
                if let Some(payload) = first_panic {
                    std::panic::resume_unwind(payload);
                }
            });
        }
        (Some(master.freeze()), refreshed)
    }

    /// Publishes the current model state as a new epoch — refreshing the ANN
    /// indexes for exactly the nodes the interval touched (phase 1, the
    /// per-shard barrier) — then composes and swaps in a single
    /// [`EpochSnapshot`] (phase 2) and invalidates the touched neighborhood
    /// in every shard's query cache. Readers always observe all shards at
    /// the same epoch: the composed snapshot is the only thing published.
    fn publish(&mut self) {
        use std::sync::atomic::Ordering::Relaxed;
        self.epoch += 1;
        let scorer = self.model.export_serving_snapshot();
        let mut touched = self.model.take_touched();
        // The batched ANN refresh, the delta extraction, and cache
        // invalidation all assume an ascending duplicate-free touched set;
        // `take_touched` guarantees it, and a violation is a logic bug.
        debug_assert!(
            touched.windows(2).all(|w| w[0] < w[1]),
            "touched set must be ascending and duplicate-free"
        );
        if !touched.windows(2).all(|w| w[0] < w[1]) {
            touched.sort_unstable();
            touched.dedup();
        }
        self.tune_ann();
        let phase1_start = Instant::now();
        let (ann, refreshed) = self.publish_phase1(&scorer, &touched);
        if let Some(master) = &self.ann {
            let us = u64::try_from(phase1_start.elapsed().as_micros()).unwrap_or(u64::MAX);
            let m = &self.shared.metrics[0];
            m.ann_publish_us.fetch_add(us, Relaxed);
            m.ann_publish_last_us.store(us, Relaxed);
            m.ann_refresh_batch.store(refreshed, Relaxed);
            m.ann_ef_search.store(master.ef_search as u64, Relaxed);
            m.ann_ef_margin.store(master.ef_margin as u64, Relaxed);
        }
        // The masters now reflect the published model state; a checkpoint
        // written before the next training chunk may carry them.
        self.ann_fresh = true;
        if let Some(publisher) = &mut self.publisher {
            let m = &self.shared.metrics[0];
            let guard = GuardState {
                level: self.shared.max_level(),
                events_shed: self.shared.total_shed(),
                events_quarantined: self.shared.total_quarantined(),
            };
            let events = std::mem::take(&mut self.interval_events);
            // Replication publishes from the composed epoch: one delta frame
            // carries the whole engine's touched set, so replicas stay
            // shard-topology-agnostic.
            match publisher.publish(self.epoch, self.epoch - 1, &scorer, &touched, events, guard) {
                Ok(bytes) => {
                    m.deltas_published.fetch_add(1, Ordering::Relaxed);
                    m.delta_bytes_published.fetch_add(bytes, Ordering::Relaxed);
                }
                // A full disk must not take down serving; the failure is
                // visible as a publish-error count and a replica gap.
                Err(_) => {
                    m.delta_publish_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let snap = Arc::new(EpochSnapshot {
            epoch: self.epoch,
            scorer,
            ann,
        });
        {
            let mut h = self.shared.history.lock();
            h.push_back(snap.clone());
            // +1: the ring also holds the current snapshot.
            while h.len() > self.cfg.keep_history.max(1) + 1 {
                h.pop_front();
            }
        }
        *self.shared.current.write() = snap;
        self.shared.metrics[0]
            .epochs_published
            .store(self.epoch, std::sync::atomic::Ordering::Relaxed);
        for cache in &self.shared.caches {
            cache.invalidate_touched(&touched);
        }
    }
}

impl Shared {
    /// Scores `user` against `rel`'s candidates under `snap`, through the
    /// snapshot's ANN index when one applies and exact brute force otherwise.
    /// Returns the ranked items plus whether the ANN path answered. A pure
    /// function of `snap` — identical inputs give bit-identical results,
    /// which is what lets `verify` re-run it against historical epochs.
    ///
    /// The ANN arm beam-searches `ef_search` candidates and re-scores every
    /// survivor exactly via the same `top_k_scored_with` the brute-force path
    /// uses, so scores (and tie-breaks) are bit-identical to brute force;
    /// only top-K *membership* can differ.
    fn score_snapshot(
        &self,
        snap: &EpochSnapshot,
        user: NodeId,
        rel: RelationId,
        k: usize,
    ) -> (Vec<(NodeId, f32)>, bool) {
        let candidates = self
            .candidates
            .get(rel.index())
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        if let Some(ann) = snap.ann.as_deref() {
            // The epoch's *stamped* widths, not the live options: queries
            // against a historical epoch replay its exact beam even after
            // the auto-tuner has moved the current values. The margin buys
            // back the candidate-side context term the shared-base ranking
            // omits — the widened beam is re-scored exactly below.
            let ef = ann.ef_search.max(k).saturating_add(ann.ef_margin);
            // The index only pays off when the beam is narrower than the
            // catalog; tiny catalogs (and k covering everything) fall back
            // to the exact scan.
            if k > 0 && ef < candidates.len() && ann.has_index(rel) {
                let items = ANN_SCRATCH.with(|s| {
                    let s = &mut *s.borrow_mut();
                    snap.scorer.composite_into(user, rel, &mut s.query);
                    s.cand.clear();
                    // Shards partition the catalog, so the per-shard beams
                    // return disjoint candidate sets: concatenate and
                    // re-score exactly — no dedup needed, and with one shard
                    // this is exactly the unsharded retrieval.
                    for index in ann.shard_indexes(rel) {
                        let found = index.search_into(&s.query, ef, ef, &mut s.search);
                        s.cand.extend(found.iter().map(|&id| NodeId(id)));
                    }
                    TOPK_SCRATCH.with(|t| {
                        top_k_scored_with(&snap.scorer, user, &s.cand, rel, k, &mut t.borrow_mut())
                            .to_vec()
                    })
                });
                return (items, true);
            }
        }
        (self.score_exact(snap, user, rel, k), false)
    }

    /// Brute-force exact top-K over the full candidate list (the guard's
    /// ground truth and the non-ANN serving path).
    fn score_exact(
        &self,
        snap: &EpochSnapshot,
        user: NodeId,
        rel: RelationId,
        k: usize,
    ) -> Vec<(NodeId, f32)> {
        let candidates = self
            .candidates
            .get(rel.index())
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        // Thread-local scratch: concurrent readers each keep their own
        // buffers, so the scoring pass allocates nothing once warm and
        // readers never serialise on a shared buffer.
        TOPK_SCRATCH.with(|s| {
            top_k_scored_with(&snap.scorer, user, candidates, rel, k, &mut s.borrow_mut()).to_vec()
        })
    }
}

impl ServeHandle {
    /// Enqueues one raw event through the admission layer.
    ///
    /// Under the default `block` policy this blocks while the queue is full
    /// (backpressure) — bit-identical to the pre-admission engine. The
    /// shedding policies consult the degradation ladder instead and may
    /// drop the event (or an older queued one); every shed is tallied in
    /// [`ServeMetrics`]. Errors once the writer has stopped, with the
    /// stop's [`ClosedCause`].
    pub fn ingest(&self, edge: TemporalEdge) -> Result<(), EngineClosed> {
        match &self.ingest {
            IngestTx::Single { data } => self.ingest_single(data, edge),
            IngestTx::Sharded { lanes, bell } => self.ingest_sharded(lanes, bell, edge),
        }
    }

    /// The unsharded ingest path — unchanged from the single-queue engine.
    fn ingest_single(
        &self,
        data_tx: &channel::Sender<(TemporalEdge, f32)>,
        edge: TemporalEdge,
    ) -> Result<(), EngineClosed> {
        use std::sync::atomic::Ordering::Relaxed;
        let Some(ctls) = &self.shared.admission else {
            // Block policy: plain backpressure send, no detector on the path.
            return data_tx.send((edge, 1.0)).map_err(|_| self.closed_error());
        };
        let ctl = &ctls[0];
        let m = &self.shared.metrics[0];
        let level = ctl.observe(data_tx.len(), m.staleness(), m);
        let prio = ctl.classify(edge.relation);
        match ctl.policy() {
            // Unreachable in practice (`admission` is `None` under block),
            // but backpressure is the only sensible meaning regardless.
            ShedPolicy::Block => self.send_data(data_tx, edge, 1.0),
            ShedPolicy::SampleOneInK => {
                if !AdmissionCtl::shed_eligible(level, prio) {
                    self.send_data(data_tx, edge, 1.0)
                } else if ctl.sample_admit(prio) {
                    // The survivor speaks for its whole 1-in-k window:
                    // weight k keeps the expected update mass unbiased.
                    m.events_resampled.fetch_add(1, Relaxed);
                    self.send_data(data_tx, edge, ctl.sample_k() as f32)
                } else {
                    m.count_shed(prio, data_tx.len());
                    Ok(())
                }
            }
            ShedPolicy::DropOldest => match data_tx.try_send((edge, 1.0)) {
                Ok(()) => Ok(()),
                Err(channel::TrySendError::Disconnected(_)) => Err(self.closed_error()),
                Err(channel::TrySendError::Full((edge, w))) => {
                    if level == DegradeLevel::ShedAll {
                        // Uniform shedding: evict the oldest queued event to
                        // make room for the newest.
                        let evict = self
                            .evict_rx
                            .as_ref()
                            .expect("drop-oldest keeps an eviction receiver");
                        if let Ok((old, _)) = evict.try_recv() {
                            m.count_shed(ctl.classify(old.relation), data_tx.len());
                        }
                        self.send_data(data_tx, edge, w)
                    } else if level == DegradeLevel::ShedLow && prio == EventPriority::Low {
                        // Priority shedding: the incoming low-value event is
                        // the one that loses.
                        m.count_shed(prio, data_tx.len());
                        Ok(())
                    } else {
                        self.send_data(data_tx, edge, w)
                    }
                }
            },
        }
    }

    /// The sharded ingest path: route to the owning shard's lane and ring
    /// the doorbell under the global sequence lock.
    ///
    /// Admission differs from the unsharded engine in one documented way:
    /// under drop-oldest, a full lane at a shed-eligible ladder level sheds
    /// the *incoming* event instead of evicting the oldest queued one —
    /// popping a lane from the producer side would tear the lane/doorbell
    /// correspondence that makes the global order deterministic.
    fn ingest_sharded(
        &self,
        lanes: &[channel::Sender<(TemporalEdge, f32)>],
        bell: &channel::Sender<(u64, usize)>,
        edge: TemporalEdge,
    ) -> Result<(), EngineClosed> {
        use std::sync::atomic::Ordering::Relaxed;
        let s = supa_par::shard_of(edge.src.0, lanes.len());
        let Some(ctls) = &self.shared.admission else {
            return self.stamp_send(&lanes[s], bell, s, edge, 1.0);
        };
        let ctl = &ctls[s];
        let m = &self.shared.metrics[s];
        let level = ctl.observe(lanes[s].len(), self.shared.staleness(), m);
        let prio = ctl.classify(edge.relation);
        match ctl.policy() {
            ShedPolicy::Block => self.stamp_send(&lanes[s], bell, s, edge, 1.0),
            ShedPolicy::SampleOneInK => {
                if !AdmissionCtl::shed_eligible(level, prio) {
                    self.stamp_send(&lanes[s], bell, s, edge, 1.0)
                } else if ctl.sample_admit(prio) {
                    m.events_resampled.fetch_add(1, Relaxed);
                    self.stamp_send(&lanes[s], bell, s, edge, ctl.sample_k() as f32)
                } else {
                    m.count_shed(prio, lanes[s].len());
                    Ok(())
                }
            }
            ShedPolicy::DropOldest => {
                if AdmissionCtl::shed_eligible(level, prio) {
                    if !self.stamp_try_send(&lanes[s], bell, s, edge, 1.0)? {
                        m.count_shed(prio, lanes[s].len());
                    }
                    Ok(())
                } else {
                    self.stamp_send(&lanes[s], bell, s, edge, 1.0)
                }
            }
        }
    }

    /// Stamps, deposits, and rings under the sequence lock (blocking when
    /// the lane is full — per-shard backpressure that, by holding the lock,
    /// also pauses other producers: global order admits no overtaking). The
    /// deposit-before-ring order inside the critical section is what
    /// guarantees the spine's `recv` after a doorbell never blocks.
    fn stamp_send(
        &self,
        lane: &channel::Sender<(TemporalEdge, f32)>,
        bell: &channel::Sender<(u64, usize)>,
        s: usize,
        edge: TemporalEdge,
        weight: f32,
    ) -> Result<(), EngineClosed> {
        let mut seq = self.shared.seq.lock();
        if lane.send((edge, weight)).is_err() {
            return Err(self.closed_error());
        }
        let n = *seq;
        // A dead writer makes this ring undeliverable, but then the lane
        // send above (or the next one) fails first; the stranded event is
        // moot either way.
        let _ = bell.send((n, s));
        *seq = n + 1;
        Ok(())
    }

    /// Non-blocking variant: `Ok(false)` means the lane was full and the
    /// event was *not* enqueued (the caller sheds it).
    fn stamp_try_send(
        &self,
        lane: &channel::Sender<(TemporalEdge, f32)>,
        bell: &channel::Sender<(u64, usize)>,
        s: usize,
        edge: TemporalEdge,
        weight: f32,
    ) -> Result<bool, EngineClosed> {
        let mut seq = self.shared.seq.lock();
        match lane.try_send((edge, weight)) {
            Ok(()) => {
                let n = *seq;
                let _ = bell.send((n, s));
                *seq = n + 1;
                Ok(true)
            }
            Err(channel::TrySendError::Full(_)) => Ok(false),
            Err(channel::TrySendError::Disconnected(_)) => Err(self.closed_error()),
        }
    }

    /// Blocking send that stays correct when this handle holds an eviction
    /// receiver: the queue can then never disconnect while the handle
    /// lives, so a dead writer is detected via [`Shared::closed`] instead
    /// (polled between short send timeouts).
    fn send_data(
        &self,
        data_tx: &channel::Sender<(TemporalEdge, f32)>,
        edge: TemporalEdge,
        weight: f32,
    ) -> Result<(), EngineClosed> {
        if self.evict_rx.is_none() {
            return data_tx
                .send((edge, weight))
                .map_err(|_| self.closed_error());
        }
        let mut item = (edge, weight);
        loop {
            if self.shared.closed.load(Ordering::SeqCst) != OPEN {
                return Err(self.closed_error());
            }
            match data_tx.send_timeout(item, Duration::from_millis(20)) {
                Ok(()) => return Ok(()),
                Err(channel::SendTimeoutError::Timeout(it)) => item = it,
                Err(channel::SendTimeoutError::Disconnected(_)) => return Err(self.closed_error()),
            }
        }
    }

    fn closed_error(&self) -> EngineClosed {
        EngineClosed {
            cause: self.shared.closed_cause(),
        }
    }

    /// The degradation-ladder level currently in force — the worst shard's
    /// level when sharded (0 = full service; always 0 under the `block`
    /// policy).
    pub fn degradation_level(&self) -> u8 {
        self.shared.max_level()
    }

    /// Trains any partial chunk, publishes a snapshot, and returns once the
    /// writer has processed everything enqueued before this call.
    pub fn flush(&self) -> Result<(), EngineClosed> {
        let (ack_tx, ack_rx) = std_mpsc::channel();
        self.ctrl_tx
            .send(Ctrl::Flush(ack_tx))
            .map_err(|_| self.closed_error())?;
        ack_rx.recv().map_err(|_| self.closed_error())
    }

    /// Answers a top-K query against the current snapshot (or the cache).
    ///
    /// `user` is scored against every node of `rel`'s destination type;
    /// scores use the same Eq. 15 readout as the offline model, so serving
    /// results are bit-identical to offline scoring of the same state.
    pub fn query(&self, user: NodeId, rel: RelationId, k: usize) -> QueryResult {
        use std::sync::atomic::Ordering::Relaxed;
        let t0 = Instant::now();
        let m = self.shared.metrics_of(user.0);
        m.queries.fetch_add(1, Relaxed);

        if let Some((epoch, items)) = self.shared.cache_of(user.0).get(user.0, rel.0, k) {
            m.cache_hits.fetch_add(1, Relaxed);
            let dt = t0.elapsed();
            m.latency.record(dt);
            m.latency_hit.record(dt);
            return QueryResult { epoch, items };
        }

        let result = self.score_fresh(user, rel, k, true);
        let dt = t0.elapsed();
        m.latency.record(dt);
        m.latency_miss.record(dt);
        result
    }

    /// Answers a query without touching metrics. Load generators call this
    /// from each reader thread before metering begins: the first query per
    /// thread pays one-off costs (thread-local scratch allocation, faulting
    /// the embedding tables into cache) that would otherwise land in the
    /// metered tail as a multi-millisecond p99 outlier.
    pub fn warm_query(&self, user: NodeId, rel: RelationId, k: usize) -> QueryResult {
        if let Some((epoch, items)) = self.shared.cache_of(user.0).get(user.0, rel.0, k) {
            return QueryResult { epoch, items };
        }
        self.score_fresh(user, rel, k, false)
    }

    /// Scores against the current snapshot and fills the cache. `metered`
    /// queries additionally tick the ANN counters and, one in
    /// [`AnnOptions::guard_every`] ANN-served answers, the recall guard.
    fn score_fresh(&self, user: NodeId, rel: RelationId, k: usize, metered: bool) -> QueryResult {
        let snap = self.shared.current.read().clone();
        let (items, ann_used) = self.shared.score_snapshot(&snap, user, rel, k);
        if metered && ann_used {
            self.recall_guard(&snap, user, rel, k, &items);
        }
        self.shared
            .cache_of(user.0)
            .put(user.0, rel.0, k, snap.epoch, items.clone());
        QueryResult {
            epoch: snap.epoch,
            items,
        }
    }

    /// Ticks the ANN query counter and, every `guard_every`-th ANN answer,
    /// re-scores the query exactly and tallies recall@K. Observation only:
    /// the served `items` are never replaced, so results stay bit-reproducible
    /// from the epoch snapshot whether or not this query was guarded.
    fn recall_guard(
        &self,
        snap: &EpochSnapshot,
        user: NodeId,
        rel: RelationId,
        k: usize,
        items: &[(NodeId, f32)],
    ) {
        use std::sync::atomic::Ordering::Relaxed;
        let m = self.shared.metrics_of(user.0);
        let nth = m.ann_queries.fetch_add(1, Relaxed) + 1;
        let Some(opts) = &self.shared.ann_opts else {
            return;
        };
        if opts.guard_every == 0 || !nth.is_multiple_of(opts.guard_every) {
            return;
        }
        let exact = self.shared.score_exact(snap, user, rel, k);
        let mut acc = RecallAccumulator::default();
        acc.push(&exact, items);
        m.ann_guard_checks.fetch_add(1, Relaxed);
        m.ann_guard_expected.fetch_add(acc.expected, Relaxed);
        m.ann_guard_matched.fetch_add(acc.matched, Relaxed);
        m.record_guard_recall(acc.mean());
        if acc.mean() < opts.min_recall {
            m.ann_guard_breaches.fetch_add(1, Relaxed);
        }
    }

    /// Re-runs the retrieval path (ANN or exact — whichever served it)
    /// against the retained snapshot of the epoch `result` claims and
    /// compares bit-for-bit. Returns `None` if that epoch has aged out of
    /// the history ring, `Some(true)` if consistent. A `Some(false)` (torn
    /// read) is also tallied in the metrics.
    pub fn verify(
        &self,
        user: NodeId,
        rel: RelationId,
        k: usize,
        result: &QueryResult,
    ) -> Option<bool> {
        let snap = {
            let h = self.shared.history.lock();
            h.iter().find(|s| s.epoch == result.epoch).cloned()?
        };
        let (expect, _) = self.shared.score_snapshot(&snap, user, rel, k);
        let ok = expect.len() == result.items.len()
            && expect
                .iter()
                .zip(&result.items)
                .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits());
        if !ok {
            self.shared
                .metrics_of(user.0)
                .torn_reads
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        Some(ok)
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        self.shared.current.read().clone()
    }

    /// Point-in-time metrics over the serving wall-clock so far. When
    /// sharded, the per-shard counters are merged (saturating sums; gauges
    /// take the worst shard; latency histograms merge bucket-wise).
    pub fn metrics(&self) -> MetricsReport {
        self.shared.merged_metrics().report(self.started.elapsed())
    }

    /// The merged metrics as one JSON line; a sharded engine additionally
    /// carries a `"shards":[...]` array with each shard's own report, so
    /// `--metrics-dump` streams expose the per-shard breakdown. Unsharded
    /// output is exactly [`MetricsReport::to_json`].
    pub fn metrics_json(&self) -> String {
        let elapsed = self.started.elapsed();
        let mut s = self.shared.merged_metrics().report(elapsed).to_json();
        if self.shared.shards > 1 {
            s.pop();
            s.push_str(",\"shards\":[");
            for (i, m) in self.shared.metrics.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&m.report(elapsed).to_json());
            }
            s.push_str("]}");
        }
        s
    }

    /// The metrics block streaming-ingest counters are published to
    /// (shard 0, which also holds the other engine-level facts). The
    /// streaming reader lives outside the engine, so it writes its line /
    /// byte / interner tallies here and they surface in [`Self::metrics`]
    /// alongside everything else.
    pub fn ingest_metrics(&self) -> &ServeMetrics {
        &self.shared.metrics[0]
    }

    /// Bound address of the delta publisher's TCP listener, if epoch-delta
    /// replication over TCP is enabled ([`ServeConfig::replication`]).
    pub fn replication_addr(&self) -> Option<std::net::SocketAddr> {
        self.replication_addr
    }

    /// Candidate items for a relation (all nodes of its destination type).
    pub fn candidates(&self, rel: RelationId) -> &[NodeId] {
        self.shared
            .candidates
            .get(rel.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Clean shutdown: trains the partial chunk, publishes, writes a final
    /// checkpoint (if configured), joins the writer, and reports.
    pub fn shutdown(self) -> ServeReport {
        self.stop_with(Ctrl::Shutdown)
    }

    /// Simulated crash: the writer exits immediately — no final flush, no
    /// final checkpoint. Used by the fault-injection tests.
    pub fn kill(self) -> ServeReport {
        self.stop_with(Ctrl::Kill)
    }

    fn stop_with(mut self, msg: Ctrl) -> ServeReport {
        let _ = self.ctrl_tx.send(msg);
        let exit = match self.writer.take().expect("writer joined once").join() {
            Ok(exit) => exit,
            // A panicked writer is reported, not re-thrown: the shutdown
            // caller gets a report whose stop cause carries the panic
            // message, matching the EngineClosed cause producers saw.
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&'static str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "writer thread panicked".to_string());
                WriterExit {
                    quarantine: QuarantineReport::default(),
                    stop: StopCause::Panicked(msg),
                    events_admitted: self
                        .shared
                        .metrics
                        .iter()
                        .map(|m| m.events_ingested.load(std::sync::atomic::Ordering::Relaxed))
                        .sum(),
                }
            }
        };
        ServeReport {
            quarantine: exit.quarantine,
            metrics: self.shared.merged_metrics().report(self.started.elapsed()),
            stop: exit.stop,
            events_admitted: exit.events_admitted,
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        if let Some(writer) = self.writer.take() {
            let _ = self.ctrl_tx.send(Ctrl::Shutdown);
            let _ = writer.join();
        }
    }
}
