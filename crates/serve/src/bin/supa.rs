//! `supa` — the command-line front end of the SUPA recommender.
//!
//! ```text
//! supa generate  --dataset taobao --scale 0.02 --seed 7 --out data.tsv
//! supa stats     --data data.tsv
//! supa mine      --data data.tsv [--min-support 0.02]
//! supa train     --data data.tsv --out model.ckpt [--dim 32] [--holdout 0.2]
//!                [--n-iter 20] [--batch 1024] [--seed 7] [--mine]
//!                [--checkpoint-dir DIR] [--checkpoint-every N] [--keep K]
//!                [--resume] [--on-bad-event strict|skip|clamp] [--workers N]
//! supa evaluate  --data data.tsv --checkpoint model.ckpt [--dim 32]
//!                [--holdout 0.2] [--sampled N]
//! supa recommend --data data.tsv --checkpoint model.ckpt --user 3
//!                --relation Buy [--top 10] [--dim 32] [--include-seen]
//! supa ingest    --data dump.tsv [--schema schema.tsv] [--scan-lines 10000]
//!                [--interner-budget BYTES] [--on-bad-event strict|skip]
//!                [--out canonical.tsv]
//! supa serve     (--data data.tsv | --stream-tsv dump.tsv)
//!                [--schema schema.tsv] [--interner-budget BYTES]
//!                [--scan-lines 10000] [--dim 32] [--seed 7] [--readers 4]
//!                [--queries 500] [--top 10] [--batch 64] [--queue 1024]
//!                [--snapshot-every 1] [--cache 4096] [--checkpoint-dir DIR]
//!                [--checkpoint-every 8] [--keep 3] [--resume]
//!                [--on-bad-event strict|skip|clamp] [--workers N]
//!                [--shards N]
//!                [--warmup 8] [--ann] [--ef-search 64] [--ef-margin 32]
//!                [--guard-every 64] [--min-recall 0.95] [--ann-auto-tune]
//!                [--shed-policy block|drop-oldest|sample-1-in-k]
//!                [--sample-k 8] [--priority Rel=low|normal|high,...]
//!                [--metrics-dump FILE]
//!                [--prom-addr 127.0.0.1:9464] [--prom-wait 0]
//!                [--publish-addr 127.0.0.1:7001] [--publish-segment FILE]
//!                [--publish-wait 0]
//! supa replica   --data data.tsv (--connect HOST:PORT | --segment FILE)
//!                [--top 10] [--seed 7] [--ann] [--ef-search 64]
//!                [--ef-margin 32] [--max-resyncs 8] [--metrics-dump FILE]
//! ```
//!
//! Data is the self-describing TSV of `supa_datasets::load_tsv`; checkpoints
//! are `Supa::save_checkpoint` blobs. `train --holdout F` withholds the final
//! `F` fraction of the (time-sorted) stream so a later `evaluate` with the
//! same `--holdout` measures genuine forecasting.
//!
//! Fault tolerance: `--checkpoint-dir` rotates crash-safe checkpoints every
//! `--checkpoint-every` batches (keeping the newest `--keep`); `--resume`
//! restarts from the newest *valid* one, reporting any damaged files it had
//! to skip. `--on-bad-event` chooses what happens to malformed stream
//! events: `strict` aborts on the first (the default), `skip` quarantines
//! them, `clamp` repairs what is repairable and quarantines the rest.
//!
//! `--workers N` fans the training gradient computation out across `N`
//! threads via conflict-aware event micro-batching (`0` = machine
//! parallelism). `--workers 1` (the default) is the exact serial path.
//!
//! `--shards N` partitions the serving engine into `N` user-sharded writer
//! lanes with a deterministic global event order, per-shard ANN indexes, and
//! two-phase epoch publication. `--shards 1` (the default) is the
//! single-writer engine, bit-identical to prior releases; every `N >= 2`
//! produces one pinned, shard-count-independent result.
//!
//! `serve` runs the closed-loop serving engine of `supa-serve`: the
//! dataset's event stream is replayed through a bounded ingest queue into
//! incremental training while `--readers` threads issue `--queries` top-K
//! queries each against epoch-versioned snapshots, then prints the
//! throughput/latency/staleness report. With `--checkpoint-dir` the writer
//! checkpoints every `--checkpoint-every` chunks, and `--resume` warm-starts
//! from the newest valid checkpoint.
//!
//! `--ann` serves top-K through per-epoch HNSW indexes (`supa-ann`) instead
//! of brute-force scoring the full catalog. The indexes are *shared-base*:
//! relations with the same destination node type share one index over
//! `h_long + h_short`, and the per-relation context term is recovered by
//! exact re-scoring over a beam widened by `--ef-margin` on top of the
//! `--ef-search` query beam. One in `--guard-every` ANN answers is
//! re-scored exactly, with recall below `--min-recall` tallied (and
//! reported) as a guard breach; `--ann-auto-tune` lets the writer widen
//! the effective beam on sustained breaches and relax it once recall
//! holds, stamping the effective values into each published epoch. ANN
//! answers are re-scored exactly, so reported scores stay bit-identical to
//! brute force — only top-K membership can differ. With `--checkpoint-dir`
//! the indexes persist inside checkpoints, and `--resume` restores them
//! fingerprint-verified instead of rebuilding.
//!
//! Overload: `--shed-policy` picks what happens when the ingest queue fills —
//! `block` (the default; producers wait, exactly today's backpressure),
//! `drop-oldest` (evict the stalest queued event once the degradation ladder
//! escalates), or `sample-1-in-k` (admit one event in `--sample-k` per
//! priority class, reweighting survivors by `k` so expected gradient mass is
//! preserved). `--priority Buy=high,View=low` tags relations with shedding
//! priority classes (unlisted relations are `normal`). `--metrics-dump FILE`
//! appends a JSON line of serving metrics — including shed counts and the
//! current degradation level — every ~200 ms while the run is live.
//!
//! Streaming ingestion: `serve --stream-tsv` replays an event dump straight
//! off disk through `supa-ingest` instead of materialising the edge list —
//! peak memory is O(nodes + queue), not O(events). A validation pass first
//! discovers the node universe (and, for headerless dumps, infers the
//! schema over the first `--scan-lines` lines or reads a `--schema`
//! sidecar); the replay pass then streams edges through the same admission
//! path as `--data`, so a well-formed dump produces the *same probe digest*
//! either way. String node ids are mapped to dense ids by a
//! bounded-memory interner that spills to disk under `--interner-budget`
//! bytes. `ingest` runs the validation pass alone — parse, count, report
//! throughput — and with `--out` converts a dump to the canonical TSV
//! without ever holding its edges in memory.
//!
//! Observability: `serve --prom-addr HOST:PORT` exposes every serving
//! metric (including the streaming `ingest_*` counters) in the Prometheus
//! text format for the lifetime of the run; `--prom-wait N` keeps the run
//! alive after the replay until at least `N` scrapes have been answered.
//!
//! Replication: `serve --publish-addr` streams every published epoch as a
//! CRC-framed delta over TCP (each new subscriber first receives a full
//! baseline), `--publish-segment` appends the same frames to a file for
//! offline replay, and `--publish-wait N` holds the writer at epoch 0 until
//! `N` subscribers have attached (which makes their ANN index structure
//! bit-identical to the writer's). `replica` is the other side: it tails
//! `--connect` (or replays `--segment`) over the *same* `--data` file the
//! writer serves, applies baselines and deltas, and answers the seeded probe
//! queries — printing a `probe digest` that matches the writer's exactly
//! when replication was lossless. Corrupt frames and epoch gaps are counted
//! and healed by resync (up to `--max-resyncs` reconnects over TCP), never
//! silently applied.

use std::collections::HashMap;
use std::io::BufReader;
use std::process::ExitCode;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use supa::{CheckpointManager, InsLearnConfig, Supa, SupaConfig, TrainOptions};
use supa_datasets::{all_datasets, load_tsv, save_header, save_tsv, write_edge_line, Dataset};
use supa_eval::{top_k_scored, RankingEvaluator, Scorer};
use supa_graph::{
    guard_stream, mine_metapaths, MiningConfig, NodeId, PriorityMap, QuarantinePolicy,
};
use supa_ingest::{scan_tsv, IngestOptions};
use supa_replica::{replay_segment, run_tcp, AnnParams, PublishOptions, Replica};
use supa_serve::{
    probe_digest, run_closed_loop, run_streamed_closed_loop, AdmissionOptions, AnnOptions,
    CheckpointOptions, LoadConfig, ServeConfig, ServeMetrics, ShedPolicy, StopCause,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// What flags a subcommand accepts. Anything else is a hard error — a typo
/// like `--checkpont-dir` must not silently fall back to a default.
struct CommandSpec {
    name: &'static str,
    /// Flags that take a value (`--flag value`).
    value_flags: &'static [&'static str],
    /// Flags that take none (`--flag`).
    bool_flags: &'static [&'static str],
}

const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "generate",
        value_flags: &["dataset", "scale", "seed", "out"],
        bool_flags: &[],
    },
    CommandSpec {
        name: "stats",
        value_flags: &["data"],
        bool_flags: &[],
    },
    CommandSpec {
        name: "mine",
        value_flags: &["data", "min-support", "seed"],
        bool_flags: &[],
    },
    CommandSpec {
        name: "train",
        value_flags: &[
            "data",
            "out",
            "holdout",
            "dim",
            "seed",
            "batch",
            "n-iter",
            "checkpoint-dir",
            "checkpoint-every",
            "keep",
            "on-bad-event",
            "workers",
        ],
        bool_flags: &["mine", "resume"],
    },
    CommandSpec {
        name: "evaluate",
        value_flags: &["data", "checkpoint", "holdout", "dim", "seed", "sampled"],
        bool_flags: &["mine"],
    },
    CommandSpec {
        name: "recommend",
        value_flags: &[
            "data",
            "checkpoint",
            "user",
            "relation",
            "top",
            "dim",
            "seed",
        ],
        bool_flags: &["mine", "include-seen"],
    },
    CommandSpec {
        name: "ingest",
        value_flags: &[
            "data",
            "schema",
            "scan-lines",
            "interner-budget",
            "on-bad-event",
            "out",
        ],
        bool_flags: &[],
    },
    CommandSpec {
        name: "serve",
        value_flags: &[
            "data",
            "stream-tsv",
            "schema",
            "scan-lines",
            "interner-budget",
            "dim",
            "seed",
            "readers",
            "queries",
            "top",
            "batch",
            "queue",
            "snapshot-every",
            "cache",
            "checkpoint-dir",
            "checkpoint-every",
            "keep",
            "on-bad-event",
            "workers",
            "shards",
            "warmup",
            "ef-search",
            "ef-margin",
            "guard-every",
            "min-recall",
            "shed-policy",
            "sample-k",
            "priority",
            "metrics-dump",
            "prom-addr",
            "prom-wait",
            "publish-addr",
            "publish-segment",
            "publish-wait",
        ],
        bool_flags: &["mine", "resume", "ann", "ann-auto-tune"],
    },
    CommandSpec {
        name: "replica",
        value_flags: &[
            "data",
            "connect",
            "segment",
            "top",
            "seed",
            "ef-search",
            "ef-margin",
            "max-resyncs",
            "metrics-dump",
        ],
        bool_flags: &["ann"],
    },
];

/// Splits `args` into the subcommand and a `--flag value` map, rejecting
/// flags the subcommand does not declare.
fn parse(args: &[String]) -> Result<(String, HashMap<String, String>), String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(usage)?.clone();
    let spec = COMMANDS
        .iter()
        .find(|s| s.name == cmd)
        .ok_or_else(|| format!("unknown command '{cmd}'; {}", usage()))?;
    let mut flags = HashMap::new();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("unexpected positional argument '{a}'"));
        };
        if spec.bool_flags.contains(&name) {
            flags.insert(name.to_string(), "true".to_string());
        } else if spec.value_flags.contains(&name) {
            let v = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.insert(name.to_string(), v.clone());
        } else {
            let known: Vec<String> = spec
                .value_flags
                .iter()
                .chain(spec.bool_flags)
                .map(|f| format!("--{f}"))
                .collect();
            return Err(format!(
                "unknown flag --{name} for '{cmd}' (known flags: {})",
                known.join(", ")
            ));
        }
    }
    Ok((cmd, flags))
}

fn usage() -> String {
    "usage: supa <generate|stats|mine|train|evaluate|recommend|ingest|serve|replica> [--flags]; \
     see the binary's module docs"
        .to_string()
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name}: cannot parse '{v}'")),
    }
}

fn require<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required --{name}"))
}

fn load_dataset(flags: &HashMap<String, String>) -> Result<Dataset, String> {
    let path = require(flags, "data")?;
    let f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    load_tsv(path, BufReader::new(f)).map_err(|e| format!("{path}: {e}"))
}

/// Streaming-ingest knobs shared by `serve --stream-tsv` and `ingest`.
fn ingest_options(
    flags: &HashMap<String, String>,
    skip_malformed: bool,
) -> Result<IngestOptions, String> {
    let defaults = IngestOptions::default();
    Ok(IngestOptions {
        schema_path: flags.get("schema").map(Into::into),
        interner_budget: get(flags, "interner-budget", defaults.interner_budget)?,
        scan_lines: get(flags, "scan-lines", defaults.scan_lines)?,
        skip_malformed,
    })
}

/// The training slice under `--holdout F`: the leading `1−F` of the stream.
fn train_slice(d: &Dataset, holdout: f64) -> Result<&[supa_graph::TemporalEdge], String> {
    if !(0.0..1.0).contains(&holdout) {
        return Err("--holdout must be in [0, 1)".into());
    }
    let cut = ((d.edges.len() as f64) * (1.0 - holdout)).round() as usize;
    Ok(&d.edges[..cut.min(d.edges.len())])
}

fn build_model(d: &Dataset, flags: &HashMap<String, String>) -> Result<Supa, String> {
    let dim: usize = get(flags, "dim", 32)?;
    let seed: u64 = get(flags, "seed", 7u64)?;
    let cfg = SupaConfig {
        dim,
        ..SupaConfig::small()
    };
    let mut metapaths = d.metapaths.clone();
    if metapaths.is_empty() || flags.contains_key("mine") {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = d.full_graph();
        metapaths = mine_metapaths(&g, &MiningConfig::default(), &mut rng)
            .into_iter()
            .map(|m| m.schema)
            .collect();
        eprintln!("mined {} metapath schemas", metapaths.len());
        if metapaths.is_empty() {
            return Err("no metapaths: declare them in the TSV or grow the data".into());
        }
    }
    Supa::new(
        d.prototype.schema(),
        d.prototype.num_nodes(),
        metapaths,
        cfg,
        supa::SupaVariant::full(),
        seed,
    )
    .map_err(|e| e.to_string())
}

fn run(args: &[String]) -> Result<(), String> {
    let (cmd, flags) = parse(args)?;
    match cmd.as_str() {
        "generate" => {
            let name = require(&flags, "dataset")?.to_lowercase();
            let scale: f64 = get(&flags, "scale", 0.02)?;
            if !scale.is_finite() || scale <= 0.0 {
                return Err(format!("--scale must be positive and finite, got {scale}"));
            }
            let seed: u64 = get(&flags, "seed", 7u64)?;
            let out = require(&flags, "out")?;
            let d = all_datasets(scale, seed)
                .into_iter()
                .find(|d| d.name.to_lowercase().replace('.', "") == name.replace('.', ""))
                .ok_or_else(|| format!("unknown dataset '{name}'"))?;
            let f = std::fs::File::create(out).map_err(|e| format!("{out}: {e}"))?;
            save_tsv(&d, std::io::BufWriter::new(f)).map_err(|e| e.to_string())?;
            println!("wrote {} ({})", out, d.summary());
            Ok(())
        }
        "stats" => {
            let d = load_dataset(&flags)?;
            println!("{}", d.summary());
            let g = d.full_graph();
            let st = supa_graph::GraphStats::compute(&g);
            print!("{}", st.render(g.schema()));
            Ok(())
        }
        "mine" => {
            let d = load_dataset(&flags)?;
            let min_support: f64 = get(&flags, "min-support", 0.01)?;
            let seed: u64 = get(&flags, "seed", 7u64)?;
            let g = d.full_graph();
            let mut rng = SmallRng::seed_from_u64(seed);
            let mined = mine_metapaths(
                &g,
                &MiningConfig {
                    samples_per_node: 6,
                    min_support,
                },
                &mut rng,
            );
            let schema = d.prototype.schema();
            for m in mined {
                let names: Vec<&str> = m
                    .schema
                    .node_types()
                    .iter()
                    .map(|&t| schema.node_type_name(t).unwrap())
                    .collect();
                let rels: Vec<&str> = m.schema.rel_sets()[0]
                    .iter()
                    .map(|r| schema.relation_name(r).unwrap())
                    .collect();
                println!(
                    "{:<40} via {{{}}}  support {:.2}%",
                    names.join(" -> "),
                    rels.join(","),
                    100.0 * m.support
                );
            }
            Ok(())
        }
        "train" => {
            let d = load_dataset(&flags)?;
            let out = require(&flags, "out")?;
            let holdout: f64 = get(&flags, "holdout", 0.2)?;
            let train = train_slice(&d, holdout)?;
            let policy: QuarantinePolicy = flags
                .get("on-bad-event")
                .map(|s| s.parse())
                .transpose()
                .map_err(|e| format!("--on-bad-event: {e}"))?
                .unwrap_or(QuarantinePolicy::Strict);
            let mut model = build_model(&d, &flags)?;
            model.set_workers(get(&flags, "workers", 1)?);
            let il = InsLearnConfig {
                batch_size: get(&flags, "batch", 1024)?,
                n_iter: get(&flags, "n-iter", 20)?,
                ..InsLearnConfig::default()
            };
            let mut g = d.prototype.clone();
            let (train, quarantine) =
                guard_stream(&mut g, train, policy).map_err(|e| e.to_string())?;
            if quarantine.total_faults() > 0 {
                eprintln!("{}", quarantine.summary());
            }
            let start = std::time::Instant::now();
            let report = if let Some(dir) = flags.get("checkpoint-dir") {
                let keep: usize = get(&flags, "keep", 3)?;
                let mut mgr =
                    CheckpointManager::new(dir, keep).map_err(|e| format!("{dir}: {e}"))?;
                let (report, outcome) = model
                    .train_inslearn_ft(
                        &g,
                        &train,
                        &il,
                        TrainOptions {
                            checkpoints: Some(&mut mgr),
                            checkpoint_every: get(&flags, "checkpoint-every", 1)?,
                            resume: flags.contains_key("resume"),
                            ..Default::default()
                        },
                    )
                    .map_err(|e| e.to_string())?;
                if let Some(o) = outcome {
                    for (path, reason) in &o.skipped {
                        eprintln!("skipped checkpoint {}: {reason}", path.display());
                    }
                    match &o.loaded {
                        Some((path, n)) => println!(
                            "resumed from {} ({n} events already consumed)",
                            path.display()
                        ),
                        None => println!("no valid checkpoint to resume from; starting fresh"),
                    }
                }
                report
            } else {
                if flags.contains_key("resume") {
                    return Err("--resume needs --checkpoint-dir".into());
                }
                model.train_inslearn(&g, &train, &il)
            };
            println!(
                "trained on {} edges in {:.1}s ({} batches, {} iterations, {} validations)",
                train.len(),
                start.elapsed().as_secs_f64(),
                report.batches,
                report.iterations,
                report.validations
            );
            if report.divergence_rollbacks > 0 || report.lr_backoffs > 0 {
                println!(
                    "divergence guard: {} rollbacks, {} learning-rate backoffs",
                    report.divergence_rollbacks, report.lr_backoffs
                );
            }
            let f = std::fs::File::create(out).map_err(|e| format!("{out}: {e}"))?;
            let mut w = std::io::BufWriter::new(f);
            model.save_checkpoint(&mut w).map_err(|e| e.to_string())?;
            println!("checkpoint written to {out}");
            Ok(())
        }
        "evaluate" => {
            let d = load_dataset(&flags)?;
            let ckpt = require(&flags, "checkpoint")?;
            let holdout: f64 = get(&flags, "holdout", 0.2)?;
            let train = train_slice(&d, holdout)?;
            let test = &d.edges[train.len()..];
            if test.is_empty() {
                return Err("--holdout left no test edges".into());
            }
            let mut model = build_model(&d, &flags)?;
            let blob = std::fs::read(ckpt).map_err(|e| format!("{ckpt}: {e}"))?;
            model
                .load_checkpoint(&mut blob.as_slice())
                .map_err(|e| e.to_string())?;
            let g = {
                let mut g = d.prototype.clone();
                for e in train {
                    g.add_edge(e.src, e.dst, e.relation, e.time)
                        .map_err(|e| e.to_string())?;
                }
                g
            };
            let sampled: usize = get(&flags, "sampled", 0)?;
            let ev = if sampled > 0 {
                RankingEvaluator::sampled(sampled, get(&flags, "seed", 7u64)?)
            } else {
                RankingEvaluator::full()
            };
            let m = ev.evaluate(&g, &model, test);
            println!(
                "test edges {}  H@20 {:.4}  H@50 {:.4}  NDCG@10 {:.4}  MRR {:.4}",
                m.len(),
                m.hit20(),
                m.hit50(),
                m.ndcg10(),
                m.mrr()
            );
            Ok(())
        }
        "recommend" => {
            let d = load_dataset(&flags)?;
            let ckpt = require(&flags, "checkpoint")?;
            let user: u32 = require(&flags, "user")?
                .parse()
                .map_err(|_| "--user must be a node id".to_string())?;
            let rel_name = require(&flags, "relation")?;
            let top: usize = get(&flags, "top", 10)?;
            let schema = d.prototype.schema();
            let rel = schema
                .relation_by_name(rel_name)
                .ok_or_else(|| format!("unknown relation '{rel_name}'"))?;
            let target_ty = schema.relation(rel).unwrap().dst_type;

            let mut model = build_model(&d, &flags)?;
            let blob = std::fs::read(ckpt).map_err(|e| format!("{ckpt}: {e}"))?;
            model
                .load_checkpoint(&mut blob.as_slice())
                .map_err(|e| e.to_string())?;
            let g = d.full_graph();
            if user as usize >= g.num_nodes() {
                return Err(format!("user {user} is not a node"));
            }
            let candidates = g.nodes_of_type(target_ty);
            let recs = if flags.contains_key("include-seen") {
                model.top_k(NodeId(user), candidates, rel, top)
            } else {
                model.top_k_unseen(&g, NodeId(user), candidates, rel, top)
            };
            for (rank, (v, score)) in recs.iter().enumerate() {
                println!("{:>3}. node {:<8} γ = {:+.4}", rank + 1, v.0, score);
            }
            // Also show the raw score of a sanity pair if the user has one.
            if let Some(n) = g.neighbors(NodeId(user)).last() {
                println!(
                    "(latest seen item {} scores {:+.4})",
                    n.node.0,
                    model.score(NodeId(user), n.node, rel)
                );
            }
            Ok(())
        }
        "ingest" => {
            let path = require(&flags, "data")?;
            let skip = match flags.get("on-bad-event").map(String::as_str) {
                None | Some("strict") => false,
                Some("skip") => true,
                Some(other) => {
                    return Err(format!(
                        "--on-bad-event: ingest accepts strict|skip, got '{other}'"
                    ))
                }
            };
            let opts = ingest_options(&flags, skip)?;
            let t0 = std::time::Instant::now();
            let report =
                scan_tsv(std::path::Path::new(path), &opts).map_err(|e| format!("{path}: {e}"))?;
            let secs = t0.elapsed().as_secs_f64().max(1e-9);
            let s = report.stats;
            println!("{}", report.dataset.summary());
            println!("mode:   {}", report.mode);
            println!(
                "lines:  {} total ({} B): {} schema, {} node, {} edge, {} comment, {} malformed",
                s.lines, s.bytes, s.schema_lines, s.node_lines, s.edges, s.comments, s.malformed
            );
            if s.out_of_order > 0 {
                println!(
                    "order:  {} out-of-order timestamps (load_tsv would re-sort; \
                     streamed replay preserves file order)",
                    s.out_of_order
                );
            }
            if s.interner.interned > 0 {
                println!(
                    "intern: {} string ids, {} spills, peak {} B resident, {} B in runs",
                    s.interner.interned,
                    s.interner.spills,
                    s.interner.peak_mem_bytes,
                    s.interner.run_bytes
                );
            }
            println!(
                "speed:  {:.0} lines/s ({:.1} MB/s) over the validation pass",
                s.lines as f64 / secs,
                s.bytes as f64 / (1e6 * secs)
            );
            if let Some(out) = flags.get("out") {
                use std::io::Write;
                let (d, stream) = report.into_stream().map_err(|e| format!("{path}: {e}"))?;
                let f = std::fs::File::create(out).map_err(|e| format!("{out}: {e}"))?;
                let mut w = std::io::BufWriter::new(f);
                save_header(&d, &mut w).map_err(|e| format!("{out}: {e}"))?;
                let schema = d.prototype.schema();
                let mut written = 0u64;
                for ev in stream {
                    let e = ev.map_err(|e| format!("{path}: {e}"))?;
                    write_edge_line(&mut w, schema, &e).map_err(|e| format!("{out}: {e}"))?;
                    written += 1;
                }
                w.flush().map_err(|e| format!("{out}: {e}"))?;
                println!("wrote {out}: canonical header + {written} streamed edges");
            }
            Ok(())
        }
        "serve" => {
            let policy: QuarantinePolicy = flags
                .get("on-bad-event")
                .map(|s| s.parse())
                .transpose()
                .map_err(|e| format!("--on-bad-event: {e}"))?
                .unwrap_or(QuarantinePolicy::Skip);
            let streaming = flags.contains_key("stream-tsv");
            if streaming && flags.contains_key("data") {
                return Err("--data and --stream-tsv are mutually exclusive".into());
            }
            if !streaming {
                for f in ["schema", "scan-lines", "interner-budget"] {
                    if flags.contains_key(f) {
                        return Err(format!("--{f} needs --stream-tsv"));
                    }
                }
            }
            if flags.contains_key("prom-wait") && !flags.contains_key("prom-addr") {
                return Err("--prom-wait needs --prom-addr".into());
            }
            let (d, mut stream) = if streaming {
                if flags.contains_key("mine") {
                    return Err(
                        "--mine needs --data: metapaths cannot be mined from a stream; \
                         declare metapath lines in the dump or a --schema sidecar"
                            .into(),
                    );
                }
                let path = flags.get("stream-tsv").unwrap();
                let skip = !matches!(policy, QuarantinePolicy::Strict);
                let opts = ingest_options(&flags, skip)?;
                let report = scan_tsv(std::path::Path::new(path), &opts)
                    .map_err(|e| format!("{path}: {e}"))?;
                eprintln!(
                    "scanned {path}: mode {}, {} nodes, {} edges, {} malformed",
                    report.mode,
                    report.dataset.prototype.num_nodes(),
                    report.stats.edges,
                    report.stats.malformed
                );
                if report.dataset.metapaths.is_empty() {
                    return Err(
                        "streamed dump declares no metapaths: add metapath lines to the \
                         dump or a --schema sidecar"
                            .into(),
                    );
                }
                let (d, stream) = report.into_stream().map_err(|e| format!("{path}: {e}"))?;
                (d, Some(stream))
            } else {
                (load_dataset(&flags)?, None)
            };
            let checkpoint = match flags.get("checkpoint-dir") {
                Some(dir) => Some(CheckpointOptions {
                    dir: dir.into(),
                    every: get(&flags, "checkpoint-every", 8)?,
                    keep: get(&flags, "keep", 3)?,
                    resume: flags.contains_key("resume"),
                }),
                None => {
                    if flags.contains_key("resume") {
                        return Err("--resume needs --checkpoint-dir".into());
                    }
                    None
                }
            };
            let model = build_model(&d, &flags)?;
            let ann = if flags.contains_key("ann") {
                let defaults = AnnOptions::default();
                Some(AnnOptions {
                    ef_search: get(&flags, "ef-search", defaults.ef_search)?,
                    ef_margin: get(&flags, "ef-margin", defaults.ef_margin)?,
                    guard_every: get(&flags, "guard-every", defaults.guard_every)?,
                    min_recall: get(&flags, "min-recall", defaults.min_recall)?,
                    auto_tune: flags.contains_key("ann-auto-tune"),
                    seed: get(&flags, "seed", defaults.seed)?,
                    ..defaults
                })
            } else {
                for f in [
                    "ef-search",
                    "ef-margin",
                    "guard-every",
                    "min-recall",
                    "ann-auto-tune",
                ] {
                    if flags.contains_key(f) {
                        return Err(format!("--{f} needs --ann"));
                    }
                }
                None
            };
            let shed_policy: ShedPolicy = flags
                .get("shed-policy")
                .map(|s| s.parse())
                .transpose()
                .map_err(|e| format!("--shed-policy: {e}"))?
                .unwrap_or_default();
            let priorities = flags
                .get("priority")
                .map(|spec| PriorityMap::parse(spec, d.prototype.schema()))
                .transpose()
                .map_err(|e| format!("--priority: {e}"))?;
            let admission_defaults = AdmissionOptions::default();
            let admission = AdmissionOptions {
                policy: shed_policy,
                sample_k: get(&flags, "sample-k", admission_defaults.sample_k)?,
                priorities,
                ..admission_defaults
            };
            let publish_wait: usize = get(&flags, "publish-wait", 0)?;
            let replication = {
                let tcp_addr = flags.get("publish-addr").cloned();
                let segment = flags.get("publish-segment").map(Into::into);
                if publish_wait > 0 && tcp_addr.is_none() {
                    return Err("--publish-wait needs --publish-addr".into());
                }
                if tcp_addr.is_some() || segment.is_some() {
                    Some(PublishOptions {
                        tcp_addr,
                        segment,
                        wait_subscribers: publish_wait,
                    })
                } else {
                    None
                }
            };
            let serve_cfg = ServeConfig {
                queue_capacity: get(&flags, "queue", 1024)?,
                train_batch: get(&flags, "batch", 64)?,
                snapshot_every: get(&flags, "snapshot-every", 1)?,
                policy,
                cache_capacity: get(&flags, "cache", 4096)?,
                checkpoint,
                workers: get(&flags, "workers", 1)?,
                shards: get(&flags, "shards", 1)?,
                ann,
                admission,
                replication,
                ..ServeConfig::default()
            };
            let load = LoadConfig {
                readers: get(&flags, "readers", 4)?,
                top_k: get(&flags, "top", 10)?,
                queries_per_reader: get(&flags, "queries", 500)?,
                seed: get(&flags, "seed", 7u64)?,
                warmup_per_reader: get(&flags, "warmup", 8)?,
                verify: true,
                metrics_dump: flags.get("metrics-dump").map(Into::into),
                prom_addr: flags.get("prom-addr").cloned(),
                prom_wait: get(&flags, "prom-wait", 0)?,
            };
            let report = match stream.as_mut() {
                Some(s) => run_streamed_closed_loop(&d, model, serve_cfg, load, s),
                None => run_closed_loop(&d, model, serve_cfg, load),
            }
            .map_err(|e| e.to_string())?;
            println!("{report}");
            match &report.stop {
                StopCause::Panicked(msg) => {
                    return Err(format!("writer thread panicked: {msg}"));
                }
                StopCause::Fault(e) => {
                    return Err(format!("strict policy stopped ingest: {e}"));
                }
                StopCause::Shutdown | StopCause::Killed => {}
            }
            if report.metrics.torn_reads > 0 {
                return Err(format!(
                    "{} torn reads — epoch consistency violated",
                    report.metrics.torn_reads
                ));
            }
            Ok(())
        }
        "replica" => {
            use std::sync::atomic::Ordering::Relaxed;
            let connect = flags.get("connect").cloned();
            let segment = flags.get("segment").cloned();
            if connect.is_some() == segment.is_some() {
                return Err("replica needs exactly one of --connect or --segment".into());
            }
            let d = load_dataset(&flags)?;
            let ann = if flags.contains_key("ann") {
                let defaults = AnnParams::default();
                Some(AnnParams {
                    ef_search: get(&flags, "ef-search", defaults.ef_search)?,
                    ef_margin: get(&flags, "ef-margin", defaults.ef_margin)?,
                    seed: get(&flags, "seed", defaults.seed)?,
                    ..defaults
                })
            } else {
                for f in ["ef-search", "ef-margin"] {
                    if flags.contains_key(f) {
                        return Err(format!("--{f} needs --ann"));
                    }
                }
                None
            };
            let top: usize = get(&flags, "top", 10)?;
            let seed: u64 = get(&flags, "seed", 7u64)?;
            let mut replica = Replica::new(d.prototype.clone(), ann);
            let started = std::time::Instant::now();
            let stream = match (&connect, &segment) {
                (Some(addr), None) => run_tcp(addr, &mut replica, get(&flags, "max-resyncs", 8)?),
                (None, Some(path)) => replay_segment(std::path::Path::new(path), &mut replica),
                _ => unreachable!("exactly one transport was checked above"),
            };

            // Bridge the stream counters into the shared serving metrics so
            // the report and the --metrics-dump line speak the same schema
            // as the writer's.
            let c = replica.counters;
            let metrics = ServeMetrics::default();
            metrics.deltas_applied.store(c.deltas_applied, Relaxed);
            metrics.delta_bytes_applied.store(c.bytes_applied, Relaxed);
            metrics
                .delta_crc_failures
                .store(c.crc_failures.saturating_add(c.torn_tail), Relaxed);
            metrics.delta_resyncs.store(c.resyncs, Relaxed);
            let report = metrics.report(started.elapsed());
            if let Some(path) = flags.get("metrics-dump") {
                use std::io::Write;
                let mut f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
                let line = report.to_json();
                writeln!(
                    f,
                    "{{\"t_ms\":{},{}",
                    started.elapsed().as_millis(),
                    &line[1..]
                )
                .map_err(|e| format!("{path}: {e}"))?;
            }
            stream.map_err(|e| format!("replication stream: {e}"))?;
            if !replica.bootstrapped() {
                return Err("stream ended before any baseline frame; nothing to serve".into());
            }

            println!(
                "replica: epoch {}, {} baselines + {} deltas applied ({} B), \
                 {} events appended, {} crc failures, {} gaps, {} resyncs, {} torn tail",
                replica.epoch(),
                c.baselines_applied,
                c.deltas_applied,
                c.bytes_applied,
                c.events_appended,
                c.crc_failures,
                c.gaps,
                c.resyncs,
                c.torn_tail,
            );
            println!("{report}");
            // The writer's probe digest scores the probe mix directly
            // against its final snapshot (brute force, cache-free); answer
            // the same way here so the two digests compare state, not
            // retrieval strategy.
            let snap = replica.snapshot().expect("bootstrapped was checked above");
            let digest = probe_digest(&d, seed, top, |user, rel, k| {
                top_k_scored(snap, user, replica.candidates(rel), rel, k)
            });
            println!("check:  probe digest {digest:#018x}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'; {}", usage())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sargs(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_splits_command_and_flags() {
        let (cmd, flags) = parse(&sargs(&[
            "train", "--data", "x.tsv", "--dim", "16", "--mine",
        ]))
        .unwrap();
        assert_eq!(cmd, "train");
        assert_eq!(flags.get("data").unwrap(), "x.tsv");
        assert_eq!(flags.get("dim").unwrap(), "16");
        assert!(flags.contains_key("mine"));
    }

    #[test]
    fn parse_rejects_bad_shapes() {
        assert!(parse(&[]).is_err());
        assert!(parse(&sargs(&["train", "positional"])).is_err());
        assert!(parse(&sargs(&["train", "--data"])).is_err());
        assert!(parse(&sargs(&["frobnicate", "--data", "x.tsv"])).is_err());
    }

    #[test]
    fn unknown_flags_are_rejected_by_name() {
        // The typo must be named, not silently ignored.
        let err = parse(&sargs(&["train", "--checkpont-dir", "/tmp/x"])).unwrap_err();
        assert!(err.contains("--checkpont-dir"), "{err}");
        assert!(
            err.contains("--checkpoint-dir"),
            "should list known flags: {err}"
        );
        // A flag valid for one command is still invalid for another.
        let err = parse(&sargs(&["stats", "--user", "3"])).unwrap_err();
        assert!(err.contains("--user") && err.contains("'stats'"), "{err}");
        // Boolean flags are per-command too.
        assert!(parse(&sargs(&["generate", "--resume"])).is_err());
        assert!(parse(&sargs(&["serve", "--resume"])).is_ok());
    }

    #[test]
    fn flag_helpers() {
        let (_, flags) = parse(&sargs(&["train", "--dim", "16"])).unwrap();
        assert_eq!(get(&flags, "dim", 32usize).unwrap(), 16);
        assert_eq!(get(&flags, "top", 10usize).unwrap(), 10);
        assert!(get::<usize>(&flags, "dim", 0).is_ok());
        assert!(require(&flags, "dim").is_ok());
        assert!(require(&flags, "nope").is_err());
        let (_, bad) = parse(&sargs(&["train", "--dim", "banana"])).unwrap();
        assert!(get::<usize>(&bad, "dim", 0).is_err());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&sargs(&["frobnicate"])).is_err());
        assert!(run(&sargs(&[
            "generate",
            "--dataset",
            "nope",
            "--out",
            "/dev/null"
        ]))
        .is_err());
    }

    #[test]
    fn resume_is_a_boolean_flag_and_needs_a_dir() {
        let (_, flags) = parse(&sargs(&["train", "--resume", "--data", "x.tsv"])).unwrap();
        assert_eq!(flags.get("resume").unwrap(), "true");
        assert_eq!(flags.get("data").unwrap(), "x.tsv");
    }

    #[test]
    fn generate_rejects_garbage_scales() {
        for s in ["nan", "inf", "-1", "0"] {
            let err = run(&sargs(&[
                "generate",
                "--dataset",
                "uci",
                "--scale",
                s,
                "--out",
                "/dev/null",
            ]))
            .unwrap_err();
            assert!(err.contains("--scale"), "scale {s}: {err}");
        }
    }

    #[test]
    fn serve_overload_flags_parse_and_stay_serve_only() {
        let (_, flags) = parse(&sargs(&[
            "serve",
            "--shed-policy",
            "drop-oldest",
            "--sample-k",
            "4",
            "--priority",
            "Buy=high",
            "--metrics-dump",
            "/tmp/m.jsonl",
        ]))
        .unwrap();
        assert_eq!(flags.get("shed-policy").unwrap(), "drop-oldest");
        assert_eq!(get(&flags, "sample-k", 8u32).unwrap(), 4);
        assert_eq!(flags.get("priority").unwrap(), "Buy=high");
        assert_eq!(flags.get("metrics-dump").unwrap(), "/tmp/m.jsonl");
        assert!(parse(&sargs(&["train", "--shed-policy", "block"])).is_err());
    }

    #[test]
    fn shed_policy_flag_values_parse_or_error() {
        assert_eq!("block".parse::<ShedPolicy>().unwrap(), ShedPolicy::Block);
        assert_eq!(
            "sample-1-in-k".parse::<ShedPolicy>().unwrap(),
            ShedPolicy::SampleOneInK
        );
        assert!("drop-newest".parse::<ShedPolicy>().is_err());
    }

    #[test]
    fn replica_and_publish_flags_parse_per_command() {
        let (cmd, flags) = parse(&sargs(&[
            "replica",
            "--data",
            "x.tsv",
            "--connect",
            "127.0.0.1:7001",
            "--ann",
            "--max-resyncs",
            "3",
        ]))
        .unwrap();
        assert_eq!(cmd, "replica");
        assert_eq!(flags.get("connect").unwrap(), "127.0.0.1:7001");
        assert!(flags.contains_key("ann"));
        assert_eq!(get(&flags, "max-resyncs", 8usize).unwrap(), 3);
        // The publish flags belong to `serve`, and the replication transports
        // belong to `replica` — never the other way around.
        assert!(parse(&sargs(&[
            "serve",
            "--publish-addr",
            "127.0.0.1:0",
            "--publish-segment",
            "/tmp/x.seg",
            "--publish-wait",
            "1",
        ]))
        .is_ok());
        assert!(parse(&sargs(&["replica", "--publish-addr", "x"])).is_err());
        assert!(parse(&sargs(&["serve", "--connect", "x"])).is_err());
        // Exactly one transport is required at run time.
        let err = run(&sargs(&["replica", "--data", "x.tsv"])).unwrap_err();
        assert!(err.contains("--connect or --segment"), "{err}");
        let err = run(&sargs(&[
            "replica",
            "--data",
            "x.tsv",
            "--connect",
            "a",
            "--segment",
            "b",
        ]))
        .unwrap_err();
        assert!(err.contains("--connect or --segment"), "{err}");
    }

    #[test]
    fn ingest_and_stream_flags_parse_per_command() {
        let (cmd, flags) = parse(&sargs(&[
            "ingest",
            "--data",
            "dump.tsv",
            "--interner-budget",
            "1048576",
            "--scan-lines",
            "500",
            "--out",
            "canonical.tsv",
        ]))
        .unwrap();
        assert_eq!(cmd, "ingest");
        assert_eq!(get(&flags, "interner-budget", 0usize).unwrap(), 1_048_576);
        assert_eq!(flags.get("out").unwrap(), "canonical.tsv");
        // serve accepts the streaming and prom flags too; train does not.
        assert!(parse(&sargs(&[
            "serve",
            "--stream-tsv",
            "dump.tsv",
            "--interner-budget",
            "4096",
            "--prom-addr",
            "127.0.0.1:0",
            "--prom-wait",
            "1",
        ]))
        .is_ok());
        assert!(parse(&sargs(&["train", "--stream-tsv", "d.tsv"])).is_err());
        assert!(parse(&sargs(&["ingest", "--readers", "2"])).is_err());
        // Run-time flag coupling, checked before any file is opened.
        let err = run(&sargs(&[
            "serve",
            "--data",
            "a.tsv",
            "--stream-tsv",
            "b.tsv",
        ]))
        .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = run(&sargs(&[
            "serve",
            "--data",
            "a.tsv",
            "--interner-budget",
            "1",
        ]))
        .unwrap_err();
        assert!(
            err.contains("--interner-budget needs --stream-tsv"),
            "{err}"
        );
        let err = run(&sargs(&["serve", "--data", "a.tsv", "--prom-wait", "1"])).unwrap_err();
        assert!(err.contains("--prom-wait needs --prom-addr"), "{err}");
        let err = run(&sargs(&["serve", "--stream-tsv", "d.tsv", "--mine"])).unwrap_err();
        assert!(err.contains("--mine needs --data"), "{err}");
        let err = run(&sargs(&[
            "ingest",
            "--data",
            "x.tsv",
            "--on-bad-event",
            "clamp",
        ]))
        .unwrap_err();
        assert!(err.contains("strict|skip"), "{err}");
    }

    #[test]
    fn bad_event_policy_parses_or_errors() {
        assert_eq!(
            "clamp".parse::<QuarantinePolicy>().unwrap(),
            QuarantinePolicy::Clamp
        );
        assert!("lenient".parse::<QuarantinePolicy>().is_err());
    }
}
