//! # supa-serve — concurrent online recommendation serving for SUPA
//!
//! SUPA's promise is *instant* representation learning: one edge event
//! updates the embeddings in `O((k·l + N_neg)·d)`. This crate turns that
//! into a serving system:
//!
//! ```text
//!            ingest                north star: readers never block on
//!  producers ──────▶ admission ──▶ bounded   training, never see torn state
//!                    control        queue
//!               (shed policy ×       │
//!                degradation    writer thread ── StreamGuard (admit / clamp
//!                ladder)             │            │            / quarantine)
//!                                    │            ▼
//!                                    │      Dmhg + Supa ── fit_incremental
//!                                    │            │            per chunk
//!                                    ▼            ▼
//!                          CheckpointManager  Arc<EpochSnapshot> ──▶ readers
//!                          (periodic, atomic)     swap │               │
//!                                                      ▼               ▼
//!                                             touched-set cache  top_k(user,
//!                                             invalidation          r, k)
//! ```
//!
//! - [`engine::ServeEngine`] — start serving; [`engine::ServeHandle`] —
//!   ingest events, query top-K, verify epoch consistency, shut down.
//! - [`admission`] — overload control in front of the writer: shedding
//!   policies (`block` / `drop-oldest` / `sample-1-in-k` with unbiased
//!   reweighting), per-relation event priorities, and an occupancy/lag
//!   detector that climbs an explicit degradation ladder and recovers with
//!   hysteresis. The default `block` policy is bit-identical to classic
//!   backpressure.
//! - [`engine::AnnOptions`] — optional sub-linear retrieval: each epoch
//!   carries per-relation `supa-ann` HNSW indexes (only touched nodes are
//!   re-inserted between epochs); queries beam-search the index, re-score
//!   candidates exactly, and a sampling recall guard meters recall@K
//!   against brute force without perturbing results.
//! - [`cache::QueryCache`] — per-user result cache invalidated by the
//!   rows each training chunk actually touched (SUPA's propagate step).
//! - [`metrics::ServeMetrics`] — QPS, p50/p99 latency, cache hit rate,
//!   staleness (admitted events not yet trained into published state),
//!   shed counts per priority class, and the degradation-level gauge.
//! - [`loadgen::run_closed_loop`] — seeded replay + query traffic with a
//!   reproducible result digest, used by `serve_bench` and CI;
//!   [`loadgen::run_open_loop`] — Poisson-arrival overload traffic that
//!   does *not* slow the producer down when the engine lags, for proving
//!   shed behavior and tail-latency bounds.
//!
//! ```
//! use supa::{Supa, SupaConfig};
//! use supa_datasets::taobao;
//! use supa_serve::{LoadConfig, ServeConfig, run_closed_loop};
//!
//! let data = taobao(0.01, 7);
//! let model = Supa::from_dataset(&data, SupaConfig::small(), 7).unwrap();
//! let load = LoadConfig { readers: 2, queries_per_reader: 20, ..LoadConfig::default() };
//! let report = run_closed_loop(&data, model, ServeConfig::default(), load).unwrap();
//! assert_eq!(report.metrics.torn_reads, 0);
//! ```

pub mod admission;
pub mod cache;
pub mod engine;
pub mod loadgen;
pub mod metrics;
pub mod prom;

pub use admission::{AdmissionOptions, DegradeLevel, ShedPolicy};
pub use cache::QueryCache;
pub use engine::{
    AnnEpoch, AnnOptions, CheckpointOptions, ClosedCause, EngineClosed, EpochSnapshot, QueryResult,
    ServeConfig, ServeEngine, ServeHandle, ServeReport, StopCause,
};
pub use loadgen::{
    probe_digest, run_closed_loop, run_open_loop, run_streamed_closed_loop, EventSource,
    LoadConfig, LoadReport, OpenLoopConfig, OpenLoopReport,
};
pub use metrics::{LatencyHistogram, MetricsReport, ServeMetrics};
pub use prom::PromServer;
