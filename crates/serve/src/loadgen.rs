//! Seeded closed-loop load generator: replays a dataset's event stream
//! through a serving engine while reader threads issue query traffic, then
//! reports throughput, latency, staleness, and consistency.
//!
//! The report separates *deterministic* fields (counts, the post-flush
//! result digest — reproducible for a fixed seed) from *timing* fields
//! (QPS, latency quantiles, cache hit rate — machine- and load-dependent),
//! so seeded runs can be compared modulo timing.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use supa::Supa;
use supa_datasets::Dataset;
use supa_eval::top_k_scored;
use supa_graph::{NodeId, RelationId};

use crate::engine::{ServeConfig, ServeEngine, StopCause};
use crate::metrics::MetricsReport;

/// Query-side knobs for [`run_closed_loop`].
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent reader threads.
    pub readers: usize,
    /// K for every top-K query.
    pub top_k: usize,
    /// Queries each reader issues.
    pub queries_per_reader: usize,
    /// Seed for the query mix (reader `i` uses `seed ^ i`-derived streams).
    pub seed: u64,
    /// Unmetered warm-up queries each reader issues before its metered loop
    /// (drawn from a separate rng stream, so the metered mix is unchanged).
    /// The first query on a fresh thread pays one-off costs — thread-local
    /// scratch allocation, faulting the embedding tables in — that would
    /// otherwise show up as a multi-millisecond p99 outlier.
    pub warmup_per_reader: usize,
    /// Re-score every result against its claimed epoch's retained snapshot
    /// and count mismatches as torn reads.
    pub verify: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            readers: 4,
            top_k: 10,
            queries_per_reader: 500,
            seed: 7,
            warmup_per_reader: 8,
            verify: true,
        }
    }
}

/// Outcome of one closed-loop run.
#[derive(Debug)]
pub struct LoadReport {
    /// Events offered to the ingest queue (the full dataset stream).
    pub events_offered: u64,
    /// Queries whose claimed epoch had already aged out of the history ring
    /// (only counted under `verify`; such results are *not* torn reads,
    /// just unverifiable).
    pub unverifiable: u64,
    /// FNV-1a digest of deterministic probe queries issued after the final
    /// flush, scored directly against the final snapshot. Identical across
    /// runs with the same dataset, model seed, and serve/load seeds.
    pub digest: u64,
    /// Serving metrics at shutdown.
    pub metrics: MetricsReport,
    /// Why the writer stopped (normally `Shutdown`).
    pub stop: StopCause,
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "offered {} events", self.events_offered)?;
        writeln!(f, "{}", self.metrics)?;
        write!(
            f,
            "check:  {} unverifiable, probe digest {:#018x}",
            self.unverifiable, self.digest
        )
    }
}

fn fnv1a(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Per-relation query-side universe: which nodes may ask, about what.
struct QueryMix {
    /// `(relation, users of its source type)`, relations with no possible
    /// querier excluded.
    per_relation: Vec<(RelationId, Vec<NodeId>)>,
}

impl QueryMix {
    fn from_dataset(d: &Dataset) -> Self {
        let schema = d.prototype.schema();
        let per_relation = (0..schema.num_relations())
            .filter_map(|r| {
                let rel = RelationId(r as u16);
                let users = d.prototype.nodes_of_type(schema.relation(rel)?.src_type);
                (!users.is_empty()).then(|| (rel, users.to_vec()))
            })
            .collect();
        QueryMix { per_relation }
    }

    fn sample(&self, rng: &mut SmallRng) -> (NodeId, RelationId) {
        let (rel, users) = &self.per_relation[rng.random_range(0..self.per_relation.len())];
        (users[rng.random_range(0..users.len())], *rel)
    }
}

/// Replays `dataset`'s event stream into a fresh serving engine while
/// `load.readers` threads issue `load.queries_per_reader` queries each,
/// then flushes, runs deterministic probe queries, and shuts down.
pub fn run_closed_loop(
    dataset: &Dataset,
    model: Supa,
    serve_cfg: ServeConfig,
    load: LoadConfig,
) -> std::io::Result<LoadReport> {
    let mix = QueryMix::from_dataset(dataset);
    let handle = ServeEngine::start(dataset.prototype.clone(), model, serve_cfg)?;

    let unverifiable = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for reader in 0..load.readers {
            let handle = &handle;
            let mix = &mix;
            let unverifiable = &unverifiable;
            let mut rng = SmallRng::seed_from_u64(load.seed ^ (reader as u64).wrapping_mul(0x9E37));
            let mut warm_rng = SmallRng::seed_from_u64(
                load.seed ^ 0x5741_524D ^ (reader as u64).wrapping_mul(0x9E37),
            );
            scope.spawn(move || {
                for _ in 0..load.warmup_per_reader {
                    let (user, rel) = mix.sample(&mut warm_rng);
                    let _ = handle.warm_query(user, rel, load.top_k);
                }
                for _ in 0..load.queries_per_reader {
                    let (user, rel) = mix.sample(&mut rng);
                    let result = handle.query(user, rel, load.top_k);
                    if load.verify && handle.verify(user, rel, load.top_k, &result).is_none() {
                        unverifiable.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        // The ingest loop runs on this thread, concurrent with the readers;
        // `ingest` blocks when the bounded queue fills (backpressure).
        for &edge in &dataset.edges {
            if handle.ingest(edge).is_err() {
                break; // writer stopped (strict-policy fault)
            }
        }
    });

    // Drain the queue and train the final partial chunk so the probe sees
    // every admitted event, then digest a deterministic query sample scored
    // directly against the final snapshot (bypassing the cache, whose
    // contents depend on reader timing).
    let _ = handle.flush();
    let snap = handle.snapshot();
    let mut digest = 0xCBF2_9CE4_8422_2325u64;
    let mut rng = SmallRng::seed_from_u64(load.seed);
    for _ in 0..64 {
        let (user, rel) = mix.sample(&mut rng);
        let items = top_k_scored(&snap.scorer, user, handle.candidates(rel), rel, load.top_k);
        fnv1a(&mut digest, &user.0.to_le_bytes());
        fnv1a(&mut digest, &rel.0.to_le_bytes());
        for (item, score) in items {
            fnv1a(&mut digest, &item.0.to_le_bytes());
            fnv1a(&mut digest, &score.to_bits().to_le_bytes());
        }
    }

    let report = handle.shutdown();
    Ok(LoadReport {
        events_offered: dataset.edges.len() as u64,
        unverifiable: unverifiable.into_inner(),
        digest,
        metrics: report.metrics,
        stop: report.stop,
    })
}
