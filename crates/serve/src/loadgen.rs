//! Seeded load generators: replay a dataset's event stream through a
//! serving engine while reader threads issue query traffic, then report
//! throughput, latency, staleness, and consistency.
//!
//! Two arrival models:
//!
//! - [`run_closed_loop`] — the producer offers the next event as soon as
//!   the previous `ingest` returns, so a lagging engine slows the producer
//!   down (backpressure hides overload). The report separates
//!   *deterministic* fields (counts, the post-flush result digest —
//!   reproducible for a fixed seed) from *timing* fields (QPS, latency
//!   quantiles, cache hit rate — machine- and load-dependent), so seeded
//!   runs can be compared modulo timing.
//! - [`run_open_loop`] — seeded Poisson arrivals at a fixed mean rate that
//!   do **not** slow down when the engine lags; the backlog is the
//!   experiment. Readers hammer queries for the whole burst and their
//!   latencies are recorded exactly (not histogram-bucketed), so the
//!   report can prove tail-latency bounds under overload, alongside shed
//!   counts and the degradation ladder's peak and recovery.
//!
//! Both runners can periodically append one JSON line of [`MetricsReport`]
//! to [`LoadConfig::metrics_dump`] while they run.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use supa::Supa;
use supa_datasets::Dataset;
use supa_eval::top_k_scored;
use supa_graph::{NodeId, RelationId, TemporalEdge};

use crate::engine::{ServeConfig, ServeEngine, ServeHandle, StopCause};
use crate::metrics::{MetricsReport, ServeMetrics};
use crate::prom::PromServer;

/// Query-side knobs for [`run_closed_loop`] and [`run_open_loop`].
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent reader threads.
    pub readers: usize,
    /// K for every top-K query.
    pub top_k: usize,
    /// Queries each reader issues (closed loop only; open-loop readers run
    /// for the duration of the burst).
    pub queries_per_reader: usize,
    /// Seed for the query mix (reader `i` uses `seed ^ i`-derived streams).
    pub seed: u64,
    /// Unmetered warm-up queries each reader issues before its metered loop
    /// (drawn from a separate rng stream, so the metered mix is unchanged).
    /// The first query on a fresh thread pays one-off costs — thread-local
    /// scratch allocation, faulting the embedding tables in — that would
    /// otherwise show up as a multi-millisecond p99 outlier.
    pub warmup_per_reader: usize,
    /// Re-score every result against its claimed epoch's retained snapshot
    /// and count mismatches as torn reads.
    pub verify: bool,
    /// Append a [`MetricsReport`] JSON line here every ~200 ms while the
    /// run is live (plus one final line), for offline overload analysis.
    pub metrics_dump: Option<std::path::PathBuf>,
    /// Serve Prometheus text exposition (`text/plain; version=0.0.4`) on
    /// this address (e.g. `127.0.0.1:9464`) for the lifetime of the run.
    pub prom_addr: Option<String>,
    /// With `prom_addr`: after the replay finishes, keep serving until at
    /// least this many scrapes have been answered (bounded by a ~60 s
    /// timeout), so a scraper that races a short run still gets a sample.
    pub prom_wait: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            readers: 4,
            top_k: 10,
            queries_per_reader: 500,
            seed: 7,
            warmup_per_reader: 8,
            verify: true,
            metrics_dump: None,
            prom_addr: None,
            prom_wait: 0,
        }
    }
}

/// A stream of timestamped edges for [`run_streamed_closed_loop`]: the
/// producer side of the closed loop, abstracted so a replay can come from
/// an in-memory dataset or a bounded-memory file reader without the two
/// paths diverging (they must produce the same engine digest).
pub trait EventSource {
    /// The next event, `None` at end of stream, `Some(Err)` on a fatal
    /// stream error (the run aborts and surfaces it).
    fn next_event(&mut self) -> Option<std::io::Result<TemporalEdge>>;

    /// Publishes source-side counters (lines, bytes, interner tallies) into
    /// the engine's metrics block. Called every few thousand events and
    /// once at end of stream; the default does nothing.
    fn publish(&self, _metrics: &ServeMetrics) {}
}

/// The in-memory source behind [`run_closed_loop`]: yields a dataset's
/// edge slice in order, infallibly.
struct SliceSource<'a> {
    iter: std::slice::Iter<'a, TemporalEdge>,
}

impl EventSource for SliceSource<'_> {
    fn next_event(&mut self) -> Option<std::io::Result<TemporalEdge>> {
        self.iter.next().map(|&e| Ok(e))
    }
}

/// The bounded-memory file producer: `supa-ingest`'s second pass streams
/// edges straight off disk, and its line/byte/interner tallies surface as
/// the engine's `ingest_*` metrics.
impl EventSource for supa_ingest::EventStream {
    fn next_event(&mut self) -> Option<std::io::Result<TemporalEdge>> {
        self.next().map(|r| {
            r.map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
        })
    }

    fn publish(&self, m: &ServeMetrics) {
        let s = self.stats();
        // `stats()` is cumulative, so these are absolute stores, not adds.
        m.ingest_lines.store(s.lines, Ordering::Relaxed);
        m.ingest_comments.store(s.comments, Ordering::Relaxed);
        m.ingest_malformed.store(s.malformed, Ordering::Relaxed);
        m.ingest_interned_nodes
            .store(s.interner.interned, Ordering::Relaxed);
        m.ingest_spills.store(s.interner.spills, Ordering::Relaxed);
        m.ingest_bytes.store(s.bytes, Ordering::Relaxed);
    }
}

/// Outcome of one closed-loop run.
#[derive(Debug)]
pub struct LoadReport {
    /// Events offered to the ingest queue (the full stream, unless the
    /// writer stopped early).
    pub events_offered: u64,
    /// Queries whose claimed epoch had already aged out of the history ring
    /// (only counted under `verify`; such results are *not* torn reads,
    /// just unverifiable).
    pub unverifiable: u64,
    /// FNV-1a digest of deterministic probe queries issued after the final
    /// flush, scored directly against the final snapshot. Identical across
    /// runs with the same dataset, model seed, and serve/load seeds.
    pub digest: u64,
    /// Throughput each reader achieved over its own metered window, indexed
    /// by reader (empty when no reader issued metered queries). The
    /// aggregate `metrics.qps` divides by wall clock, so with staggered
    /// reader lifetimes it can sit well below the per-reader rates; this is
    /// the skew view.
    pub reader_qps: Vec<f64>,
    /// Serving metrics at shutdown.
    pub metrics: MetricsReport,
    /// Why the writer stopped (normally `Shutdown`).
    pub stop: StopCause,
}

/// Formats per-reader rates as `[r0 .., r1 .., ...]` for the reports.
fn fmt_reader_qps(qps: &[f64]) -> String {
    let cells: Vec<String> = qps
        .iter()
        .enumerate()
        .map(|(i, q)| format!("r{i} {q:.0}"))
        .collect();
    format!("[{}]", cells.join(", "))
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "offered {} events", self.events_offered)?;
        writeln!(f, "{}", self.metrics)?;
        if self.reader_qps.len() > 1 {
            writeln!(f, "qps/r:  {}", fmt_reader_qps(&self.reader_qps))?;
        }
        write!(
            f,
            "check:  {} unverifiable, probe digest {:#018x}",
            self.unverifiable, self.digest
        )
    }
}

fn fnv1a(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Issues the 64 seeded probe queries against `answer` and folds users,
/// relations, item ids, and score bits into the FNV-1a digest the load
/// reports print as `probe digest 0x…`.
///
/// The probe mix is a pure function of `(dataset, seed)`, so any two
/// answerers — the writer's post-flush snapshot, a replica that tailed its
/// delta stream, a segment replay — produce the same digest exactly when
/// their top-K answers are bit-identical.
pub fn probe_digest<F>(dataset: &Dataset, seed: u64, top_k: usize, mut answer: F) -> u64
where
    F: FnMut(NodeId, RelationId, usize) -> Vec<(NodeId, f32)>,
{
    let mix = QueryMix::from_dataset(dataset);
    let mut digest = 0xCBF2_9CE4_8422_2325u64;
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..64 {
        let (user, rel) = mix.sample(&mut rng);
        fnv1a(&mut digest, &user.0.to_le_bytes());
        fnv1a(&mut digest, &rel.0.to_le_bytes());
        for (item, score) in answer(user, rel, top_k) {
            fnv1a(&mut digest, &item.0.to_le_bytes());
            fnv1a(&mut digest, &score.to_bits().to_le_bytes());
        }
    }
    digest
}

/// Per-relation query-side universe: which nodes may ask, about what.
struct QueryMix {
    /// `(relation, users of its source type)`, relations with no possible
    /// querier excluded.
    per_relation: Vec<(RelationId, Vec<NodeId>)>,
}

impl QueryMix {
    fn from_dataset(d: &Dataset) -> Self {
        let schema = d.prototype.schema();
        let per_relation = (0..schema.num_relations())
            .filter_map(|r| {
                let rel = RelationId(r as u16);
                let users = d.prototype.nodes_of_type(schema.relation(rel)?.src_type);
                (!users.is_empty()).then(|| (rel, users.to_vec()))
            })
            .collect();
        QueryMix { per_relation }
    }

    fn sample(&self, rng: &mut SmallRng) -> (NodeId, RelationId) {
        let (rel, users) = &self.per_relation[rng.random_range(0..self.per_relation.len())];
        (users[rng.random_range(0..users.len())], *rel)
    }
}

/// Appends one [`MetricsReport`] JSON line (prefixed with a `t_ms` relative
/// timestamp) every ~200 ms until `stop` is raised, then a final line. On a
/// sharded engine each line also carries the per-shard breakdown
/// (`"shards":[...]`, see [`ServeHandle::metrics_json`]).
fn dump_loop(handle: &ServeHandle, file: std::fs::File, stop: &AtomicBool) {
    use std::io::Write;
    let mut wtr = std::io::BufWriter::new(file);
    let t0 = Instant::now();
    loop {
        let done = stop.load(Ordering::Relaxed);
        let line = handle.metrics_json();
        // Splice the timestamp into the report object: both are flat JSON.
        let _ = writeln!(
            wtr,
            "{{\"t_ms\":{},{}",
            t0.elapsed().as_millis(),
            &line[1..]
        );
        if done {
            break;
        }
        for _ in 0..10 {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    let _ = wtr.flush();
}

/// Re-renders the exposition and answers pending scrapes every ~20 ms
/// until `stop` is raised, then one final poll. `served` accumulates how
/// many scrapes were answered (the `prom_wait` gate watches it).
fn prom_loop(handle: &ServeHandle, srv: PromServer, stop: &AtomicBool, served: &AtomicU64) {
    loop {
        let done = stop.load(Ordering::Relaxed);
        let body = crate::prom::render(&handle.metrics());
        let n = srv.poll(&body);
        if n > 0 {
            served.fetch_add(n as u64, Ordering::Relaxed);
        }
        if done {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// With `prom_addr` set: blocks until `prom_wait` scrapes have been
/// answered or ~60 s pass, so short CI runs stay alive long enough for an
/// external scraper to land one request.
fn prom_wait_gate(load: &LoadConfig, served: &AtomicU64) {
    if load.prom_addr.is_none() || load.prom_wait == 0 {
        return;
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    while served.load(Ordering::Relaxed) < load.prom_wait as u64 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Replays `dataset`'s event stream into a fresh serving engine while
/// `load.readers` threads issue `load.queries_per_reader` queries each,
/// then flushes, runs deterministic probe queries, and shuts down.
pub fn run_closed_loop(
    dataset: &Dataset,
    model: Supa,
    serve_cfg: ServeConfig,
    load: LoadConfig,
) -> std::io::Result<LoadReport> {
    let mut source = SliceSource {
        iter: dataset.edges.iter(),
    };
    run_streamed_closed_loop(dataset, model, serve_cfg, load, &mut source)
}

/// [`run_closed_loop`] with the producer abstracted behind an
/// [`EventSource`]: events come from `source` instead of
/// `dataset.edges`, so a bounded-memory file reader can replay a dump the
/// dataset never materialises. `dataset` supplies only the node universe
/// and query mix (its edge list may be empty).
///
/// The contract both producers share: a well-formed dump streamed through
/// here and the same dump loaded via `load_tsv` and replayed by
/// [`run_closed_loop`] produce the **same probe digest** — streaming is an
/// I/O strategy, not a semantic change.
pub fn run_streamed_closed_loop(
    dataset: &Dataset,
    model: Supa,
    serve_cfg: ServeConfig,
    load: LoadConfig,
    source: &mut dyn EventSource,
) -> std::io::Result<LoadReport> {
    let mix = QueryMix::from_dataset(dataset);
    let mut dump_file = match &load.metrics_dump {
        Some(path) => Some(std::fs::File::create(path)?),
        None => None,
    };
    let mut prom = match &load.prom_addr {
        Some(addr) => Some(PromServer::bind(addr)?),
        None => None,
    };
    let handle = ServeEngine::start(dataset.prototype.clone(), model, serve_cfg)?;

    let unverifiable = AtomicU64::new(0);
    let dump_stop = AtomicBool::new(false);
    let prom_stop = AtomicBool::new(false);
    let prom_served = AtomicU64::new(0);
    let reader_qps: Mutex<Vec<(usize, f64)>> = Mutex::new(Vec::new());
    let mut digest = 0u64;
    let mut offered = 0u64;
    let mut stream_err: Option<std::io::Error> = None;
    std::thread::scope(|outer| {
        if let Some(file) = dump_file.take() {
            let handle = &handle;
            let dump_stop = &dump_stop;
            outer.spawn(move || dump_loop(handle, file, dump_stop));
        }
        if let Some(srv) = prom.take() {
            let handle = &handle;
            let prom_stop = &prom_stop;
            let prom_served = &prom_served;
            outer.spawn(move || prom_loop(handle, srv, prom_stop, prom_served));
        }
        std::thread::scope(|scope| {
            for reader in 0..load.readers {
                let handle = &handle;
                let mix = &mix;
                let unverifiable = &unverifiable;
                let reader_qps = &reader_qps;
                let mut rng =
                    SmallRng::seed_from_u64(load.seed ^ (reader as u64).wrapping_mul(0x9E37));
                let mut warm_rng = SmallRng::seed_from_u64(
                    load.seed ^ 0x5741_524D ^ (reader as u64).wrapping_mul(0x9E37),
                );
                scope.spawn(move || {
                    for _ in 0..load.warmup_per_reader {
                        let (user, rel) = mix.sample(&mut warm_rng);
                        let _ = handle.warm_query(user, rel, load.top_k);
                    }
                    let t0 = Instant::now();
                    for _ in 0..load.queries_per_reader {
                        let (user, rel) = mix.sample(&mut rng);
                        let result = handle.query(user, rel, load.top_k);
                        if load.verify && handle.verify(user, rel, load.top_k, &result).is_none() {
                            unverifiable.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    let secs = t0.elapsed().as_secs_f64();
                    if load.queries_per_reader > 0 && secs > 0.0 {
                        reader_qps
                            .lock()
                            .unwrap()
                            .push((reader, load.queries_per_reader as f64 / secs));
                    }
                });
            }

            // The ingest loop runs on this thread, concurrent with the
            // readers; under the default `block` policy `ingest` blocks when
            // the bounded queue fills (backpressure) — which in turn stalls
            // the source's reads, so a streamed file is consumed no faster
            // than the engine absorbs it.
            loop {
                match source.next_event() {
                    None => break,
                    Some(Err(e)) => {
                        stream_err = Some(e);
                        break;
                    }
                    Some(Ok(edge)) => {
                        offered += 1;
                        if handle.ingest(edge).is_err() {
                            break; // writer stopped (strict-policy fault)
                        }
                        if offered % 512 == 0 {
                            source.publish(handle.ingest_metrics());
                        }
                    }
                }
            }
            source.publish(handle.ingest_metrics());
        });

        // Drain the queue and train the final partial chunk so the probe
        // sees every admitted event, then digest a deterministic query
        // sample scored directly against the final snapshot (bypassing the
        // cache, whose contents depend on reader timing).
        let _ = handle.flush();
        let snap = handle.snapshot();
        digest = probe_digest(dataset, load.seed, load.top_k, |user, rel, k| {
            top_k_scored(&snap.scorer, user, handle.candidates(rel), rel, k)
        });
        dump_stop.store(true, Ordering::Relaxed);
        prom_wait_gate(&load, &prom_served);
        prom_stop.store(true, Ordering::Relaxed);
    });

    let mut per_reader = reader_qps.into_inner().unwrap_or_else(|e| e.into_inner());
    per_reader.sort_by_key(|&(reader, _)| reader);
    let report = handle.shutdown();
    if let Some(e) = stream_err {
        return Err(e);
    }
    Ok(LoadReport {
        events_offered: offered,
        unverifiable: unverifiable.into_inner(),
        digest,
        reader_qps: per_reader.into_iter().map(|(_, qps)| qps).collect(),
        metrics: report.metrics,
        stop: report.stop,
    })
}

/// Arrival-side knobs for [`run_open_loop`].
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Mean Poisson arrival rate, events per second. Offered load, not
    /// achieved load: the producer never slows down for a lagging engine.
    pub arrival_rate: f64,
    /// Events to offer (truncated to the dataset's stream length).
    pub events: usize,
    /// After the burst is flushed, how long to wait for the degradation
    /// ladder to walk back to level 0 before giving up (the report records
    /// the level actually reached).
    pub recovery_timeout: Duration,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            arrival_rate: 50_000.0,
            events: 4096,
            recovery_timeout: Duration::from_secs(10),
        }
    }
}

/// Outcome of one open-loop (Poisson-arrival) overload run.
#[derive(Debug)]
pub struct OpenLoopReport {
    /// Events actually offered to admission control.
    pub events_offered: u64,
    /// Wall-clock duration of the arrival burst.
    pub burst_secs: f64,
    /// `events_offered / burst_secs` — sags below the configured rate only
    /// if the admission path itself blocked (e.g. pre-escalation
    /// backpressure), since the pacer never waits for the engine.
    pub achieved_rate: f64,
    /// Metered queries answered during the burst.
    pub queries: u64,
    /// Exact (sorted-sample, not histogram) query latency median, µs.
    pub query_p50_us: f64,
    /// Exact query latency 99th percentile, µs.
    pub query_p99_us: f64,
    /// Verified queries whose epoch aged out of the history ring.
    pub unverifiable: u64,
    /// Throughput each reader achieved over its own metered window, indexed
    /// by reader (the aggregate `queries / burst_secs` hides skew).
    pub reader_qps: Vec<f64>,
    /// Highest degradation-ladder level the burst forced.
    pub max_level: u64,
    /// Ladder level after the recovery wait (0 = fully recovered).
    pub final_level: u8,
    /// Serving metrics at shutdown (shed counts live here).
    pub metrics: MetricsReport,
    /// Why the writer stopped (normally `Shutdown`).
    pub stop: StopCause,
}

impl std::fmt::Display for OpenLoopReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "offered {} events in {:.2}s (~{:.0} ev/s achieved)",
            self.events_offered, self.burst_secs, self.achieved_rate
        )?;
        writeln!(f, "{}", self.metrics)?;
        writeln!(
            f,
            "open:   {} queries, exact p50 {:.1} µs, p99 {:.1} µs, {} unverifiable",
            self.queries, self.query_p50_us, self.query_p99_us, self.unverifiable
        )?;
        if self.reader_qps.len() > 1 {
            writeln!(f, "qps/r:  {}", fmt_reader_qps(&self.reader_qps))?;
        }
        write!(
            f,
            "ladder: peaked at level {}, finished at level {}",
            self.max_level, self.final_level
        )
    }
}

/// Exact percentile over an ascending sample (0 for an empty sample).
fn pctl(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = (p.clamp(0.0, 1.0) * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)]
}

/// Offers `open.events` events at seeded Poisson arrivals of
/// `open.arrival_rate`/s while `load.readers` threads hammer queries, then
/// flushes, waits for ladder recovery, and shuts down.
///
/// The producer is *open-loop*: when an arrival's scheduled time is already
/// past it fires immediately and never re-paces, so a lagging engine faces
/// the full configured rate — exactly the regime admission control exists
/// for.
pub fn run_open_loop(
    dataset: &Dataset,
    model: Supa,
    serve_cfg: ServeConfig,
    load: LoadConfig,
    open: OpenLoopConfig,
) -> std::io::Result<OpenLoopReport> {
    if !open.arrival_rate.is_finite() || open.arrival_rate <= 0.0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "open-loop arrival_rate must be a positive finite rate, got {}",
                open.arrival_rate
            ),
        ));
    }
    let mix = QueryMix::from_dataset(dataset);
    let mut dump_file = match &load.metrics_dump {
        Some(path) => Some(std::fs::File::create(path)?),
        None => None,
    };
    let mut prom = match &load.prom_addr {
        Some(addr) => Some(PromServer::bind(addr)?),
        None => None,
    };
    let handle = ServeEngine::start(dataset.prototype.clone(), model, serve_cfg)?;

    let unverifiable = AtomicU64::new(0);
    let dump_stop = AtomicBool::new(false);
    let prom_stop = AtomicBool::new(false);
    let prom_served = AtomicU64::new(0);
    let read_stop = AtomicBool::new(false);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let reader_qps: Mutex<Vec<(usize, f64)>> = Mutex::new(Vec::new());
    let events = open.events.min(dataset.edges.len());
    let mut offered = 0u64;
    let mut burst_secs = 0.0f64;
    std::thread::scope(|outer| {
        if let Some(file) = dump_file.take() {
            let handle = &handle;
            let dump_stop = &dump_stop;
            outer.spawn(move || dump_loop(handle, file, dump_stop));
        }
        if let Some(srv) = prom.take() {
            let handle = &handle;
            let prom_stop = &prom_stop;
            let prom_served = &prom_served;
            outer.spawn(move || prom_loop(handle, srv, prom_stop, prom_served));
        }
        std::thread::scope(|scope| {
            for reader in 0..load.readers {
                let handle = &handle;
                let mix = &mix;
                let unverifiable = &unverifiable;
                let read_stop = &read_stop;
                let latencies = &latencies;
                let reader_qps = &reader_qps;
                let mut rng =
                    SmallRng::seed_from_u64(load.seed ^ (reader as u64).wrapping_mul(0x9E37));
                let mut warm_rng = SmallRng::seed_from_u64(
                    load.seed ^ 0x5741_524D ^ (reader as u64).wrapping_mul(0x9E37),
                );
                scope.spawn(move || {
                    for _ in 0..load.warmup_per_reader {
                        let (user, rel) = mix.sample(&mut warm_rng);
                        let _ = handle.warm_query(user, rel, load.top_k);
                    }
                    let mut local = Vec::new();
                    let metered_from = Instant::now();
                    while !read_stop.load(Ordering::Relaxed) {
                        let (user, rel) = mix.sample(&mut rng);
                        let t0 = Instant::now();
                        let result = handle.query(user, rel, load.top_k);
                        local.push(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                        if load.verify && handle.verify(user, rel, load.top_k, &result).is_none() {
                            unverifiable.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    let secs = metered_from.elapsed().as_secs_f64();
                    if !local.is_empty() && secs > 0.0 {
                        reader_qps
                            .lock()
                            .unwrap()
                            .push((reader, local.len() as f64 / secs));
                    }
                    latencies.lock().unwrap().extend(local);
                });
            }

            // Seeded Poisson pacer on this thread: exponential inter-arrival
            // gaps, absolute-time targets (drift-free), never waits for the
            // engine when behind schedule.
            let mut rng = SmallRng::seed_from_u64(load.seed ^ 0x4F50_454E);
            let start = Instant::now();
            let mut next_s = 0.0f64;
            for &edge in &dataset.edges[..events] {
                next_s += -(1.0 - rng.random::<f64>()).ln() / open.arrival_rate;
                let target = start + Duration::from_secs_f64(next_s);
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
                if handle.ingest(edge).is_err() {
                    break; // writer stopped
                }
                offered += 1;
            }
            burst_secs = start.elapsed().as_secs_f64();
            read_stop.store(true, Ordering::Relaxed);
        });

        // Drain and train everything that survived admission, then give the
        // writer's idle ticks time to walk the ladder back to full service.
        let _ = handle.flush();
        let deadline = Instant::now() + open.recovery_timeout;
        while handle.degradation_level() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        dump_stop.store(true, Ordering::Relaxed);
        prom_wait_gate(&load, &prom_served);
        prom_stop.store(true, Ordering::Relaxed);
    });

    let mut lat = latencies.into_inner().unwrap_or_else(|e| e.into_inner());
    lat.sort_unstable();
    let mut per_reader = reader_qps.into_inner().unwrap_or_else(|e| e.into_inner());
    per_reader.sort_by_key(|&(reader, _)| reader);
    let final_level = handle.degradation_level();
    let report = handle.shutdown();
    let max_level = report.metrics.degradation_max;
    Ok(OpenLoopReport {
        events_offered: offered,
        burst_secs,
        achieved_rate: if burst_secs > 0.0 {
            offered as f64 / burst_secs
        } else {
            0.0
        },
        queries: lat.len() as u64,
        query_p50_us: pctl(&lat, 0.50) as f64 / 1e3,
        query_p99_us: pctl(&lat, 0.99) as f64 / 1e3,
        unverifiable: unverifiable.into_inner(),
        reader_qps: per_reader.into_iter().map(|(_, qps)| qps).collect(),
        max_level,
        final_level,
        metrics: report.metrics,
        stop: report.stop,
    })
}
