//! # supa-ann — deterministic incremental ANN retrieval for SUPA serving
//!
//! A hierarchical navigable-small-world (HNSW-style) index over item
//! embedding vectors, specialised for the serving path of this workspace:
//!
//! - **Inner-product similarity.** SUPA's Eq. 15 readout is
//!   `γ(u, v, r) = 0.25 · ⟨e_u, e_v⟩` over per-relation *composite* vectors
//!   (`h_long + h_short + ctx_r`), so maximum-inner-product search over the
//!   composite item vectors ranks exactly like γ. The index returns
//!   *candidates only*; callers re-score them exactly, so any returned
//!   score is bit-identical to the brute-force path.
//! - **Determinism.** Layer assignment is a pure function of
//!   `(seed, external id)` — independent of insertion order — and every
//!   traversal breaks score ties by ascending id using [`f32::total_cmp`].
//!   Two indexes built by the same operation sequence are structurally
//!   identical, and [`HnswIndex::search_into`] is a pure function of the
//!   index state. [`HnswIndex::fingerprint`] digests the full structure so
//!   tests can pin bit-determinism.
//! - **Incremental updates.** [`HnswIndex::update`] re-links a single dirty
//!   node in `O(ef_construction · log n)` — the serving engine refreshes
//!   only the items touched by a training chunk between epochs instead of
//!   rebuilding the index.
//! - **Symmetric links.** Neighbor lists are kept bidirectional (a prune
//!   that drops `a → b` also drops `b → a`), which makes unlinking a dirty
//!   node exact: its neighbors are the only nodes pointing back at it.
//!
//! The crate is dependency-free; vectors are plain `&[f32]` rows.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Hard cap on layer height; with per-layer probability `1/m ≤ 1/2`, sixteen
/// layers cover indexes far beyond any catalog this workspace serves.
const MAX_LEVEL: usize = 16;

/// Construction/search knobs for [`HnswIndex`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnnConfig {
    /// Max neighbors per node on layers ≥ 1 (layer 0 keeps `2m`).
    pub m: usize,
    /// Beam width while linking a node (higher = better graphs, slower
    /// inserts).
    pub ef_construction: usize,
    /// Seed for the per-id layer assignment.
    pub seed: u64,
}

impl Default for AnnConfig {
    fn default() -> Self {
        AnnConfig {
            m: 16,
            ef_construction: 128,
            seed: 7,
        }
    }
}

/// How far a neighbor list may overflow its cap before the diversity
/// reselection in [`HnswIndex::prune`] runs. Reselection costs O(cap²)
/// dot products; triggering it on every single-link overflow (one per
/// backlink of every insert) would dominate insert/update time. Letting the
/// list run `PRUNE_SLACK` entries hot amortises that cost ~8× at the price
/// of slightly longer neighbor scans, and every list still prunes back down
/// to its cap.
const PRUNE_SLACK: usize = 8;

/// SplitMix64 — the layer-assignment hash. Chosen for full 64-bit avalanche
/// so consecutive item ids land on independent layer draws.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0f32;
    for k in 0..a.len() {
        s += a[k] * b[k];
    }
    s
}

/// A `(score, slot)` pair with the total, deterministic ordering used
/// everywhere in the index: higher score first, ties broken by *ascending*
/// slot. `Ord::max` on two distinct hits is therefore unambiguous even for
/// equal scores, and NaN orders below every real score via `total_cmp`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Hit {
    score: f32,
    slot: u32,
}

impl Eq for Hit {}

impl Ord for Hit {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.slot.cmp(&self.slot))
    }
}

impl PartialOrd for Hit {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable buffers for [`HnswIndex::search_into`]. Once warm, a search
/// allocates nothing; serving readers keep one per thread.
#[derive(Debug, Default)]
pub struct SearchScratch {
    /// Expansion frontier (max-heap: best candidate first).
    cand: BinaryHeap<Hit>,
    /// Current best set (min-heap via `Reverse`: worst kept hit on top).
    best: BinaryHeap<std::cmp::Reverse<Hit>>,
    /// Per-slot visited stamps (`stamp` marks this search's generation).
    visited: Vec<u32>,
    stamp: u32,
    /// Result ids, best first.
    out: Vec<u32>,
    /// Entry points carried between layers during insert.
    entries: Vec<u32>,
}

impl SearchScratch {
    fn begin(&mut self, slots: usize) {
        self.cand.clear();
        self.best.clear();
        if self.visited.len() < slots {
            self.visited.resize(slots, 0);
        }
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            // u32 wrap: stale stamps could collide, so reset the marks.
            self.visited.iter_mut().for_each(|v| *v = 0);
            self.stamp = 1;
        }
    }

    #[inline]
    fn visit(&mut self, slot: u32) -> bool {
        let seen = self.visited[slot as usize] == self.stamp;
        self.visited[slot as usize] = self.stamp;
        !seen
    }
}

/// A deterministic, incrementally-updatable HNSW index over inner-product
/// similarity. External ids are `u32` (the workspace's node ids).
#[derive(Debug, Clone, PartialEq)]
pub struct HnswIndex {
    cfg: AnnConfig,
    dim: usize,
    /// External id per slot (slots are never freed; `update` reuses them).
    ids: Vec<u32>,
    /// Layer height per slot (a node exists on layers `0..=levels[slot]`).
    levels: Vec<u8>,
    /// Row-major vectors, one `dim`-row per slot.
    vectors: Vec<f32>,
    /// `links[slot][layer]` = neighbor slots, kept symmetric.
    links: Vec<Vec<Vec<u32>>>,
    /// External id → slot.
    slot_of: std::collections::HashMap<u32, u32>,
    /// Slot of the current top entry point (the highest-level node).
    entry: Option<u32>,
}

impl HnswIndex {
    /// An empty index over `dim`-dimensional vectors.
    pub fn new(dim: usize, cfg: AnnConfig) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        assert!(cfg.m >= 2, "m must be at least 2");
        assert!(cfg.ef_construction >= 1, "ef_construction must be positive");
        HnswIndex {
            cfg,
            dim,
            ids: Vec::new(),
            levels: Vec::new(),
            vectors: Vec::new(),
            links: Vec::new(),
            slot_of: std::collections::HashMap::new(),
            entry: None,
        }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether `id` is indexed.
    pub fn contains(&self, id: u32) -> bool {
        self.slot_of.contains_key(&id)
    }

    /// The layer height assigned to `id` — a pure function of
    /// `(cfg.seed, id)`, so a node keeps its level across updates and
    /// rebuilds (the determinism contract's first leg).
    pub fn level_for(&self, id: u32) -> usize {
        let mut h = splitmix64(self.cfg.seed ^ ((id as u64) << 1 | 1));
        let mut level = 0usize;
        while level < MAX_LEVEL && (h as usize).is_multiple_of(self.cfg.m) {
            level += 1;
            h = splitmix64(h);
        }
        level
    }

    #[inline]
    fn vec_of(&self, slot: u32) -> &[f32] {
        let i = slot as usize * self.dim;
        &self.vectors[i..i + self.dim]
    }

    #[inline]
    fn cap(&self, layer: usize) -> usize {
        if layer == 0 {
            self.cfg.m * 2
        } else {
            self.cfg.m
        }
    }

    /// Inserts `id` with `vector`, or re-links it in place if already
    /// present (then identical to [`HnswIndex::update`]).
    pub fn insert(&mut self, id: u32, vector: &[f32]) {
        assert_eq!(vector.len(), self.dim, "vector dimension mismatch");
        if let Some(&slot) = self.slot_of.get(&id) {
            self.unlink(slot);
            let i = slot as usize * self.dim;
            self.vectors[i..i + self.dim].copy_from_slice(vector);
            self.link(slot);
            return;
        }
        let slot = self.ids.len() as u32;
        let level = self.level_for(id);
        self.ids.push(id);
        self.levels.push(level as u8);
        self.vectors.extend_from_slice(vector);
        self.links.push(vec![Vec::new(); level + 1]);
        self.slot_of.insert(id, slot);
        self.link(slot);
    }

    /// Replaces `id`'s vector and repairs its links — the dirty-node refresh
    /// the serving engine runs between epochs. Inserts if absent.
    pub fn update(&mut self, id: u32, vector: &[f32]) {
        self.insert(id, vector);
    }

    /// Batched dirty-set refresh: updates every `(ids[j], vectors[j·dim..])`
    /// pair in one graph-repair pass. `ids` must be strictly ascending
    /// (sorted and deduplicated — the serving engine's touched-set order);
    /// `vectors` is row-major with one `dim` row per id. Absent ids are
    /// inserted.
    ///
    /// Compared to calling [`HnswIndex::update`] per id, the batch:
    ///
    /// 1. **Unlinks the whole touched set first** (symmetric removals only),
    ///    recording hole-repair work instead of running it inline;
    /// 2. **Amortises hole repair** — orphans that are themselves in the
    ///    touched set are skipped entirely (their re-link rebuilds their
    ///    lists anyway), and each surviving orphan is patched once against
    ///    the post-removal graph;
    /// 3. **Re-links with one shared beam scratch** in ascending-id order,
    ///    so the per-update allocation of frontier/visited buffers is paid
    ///    once per epoch, not once per touched node.
    ///
    /// A batch of one is bit-identical to a serial [`HnswIndex::update`] of
    /// the same id. Larger batches are deterministic (a pure function of the
    /// prior index state and the batch), but intentionally *not* structurally
    /// identical to the serial sequence: deferring repair changes which
    /// replacement links are chosen, never whether the graph stays navigable
    /// — recall parity is pinned by tests, exact structure is not.
    pub fn update_batch(&mut self, ids: &[u32], vectors: &[f32]) {
        assert_eq!(
            vectors.len(),
            ids.len() * self.dim,
            "update_batch: vectors must hold one row per id"
        );
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "update_batch ids must be strictly ascending"
        );
        if ids.is_empty() {
            return;
        }
        // Phase 1: allocate slots for new ids, copy every vector in place.
        let mut slots: Vec<u32> = Vec::with_capacity(ids.len());
        for (j, &id) in ids.iter().enumerate() {
            let v = &vectors[j * self.dim..(j + 1) * self.dim];
            let slot = match self.slot_of.get(&id) {
                Some(&slot) => {
                    let i = slot as usize * self.dim;
                    self.vectors[i..i + self.dim].copy_from_slice(v);
                    slot
                }
                None => {
                    let slot = self.ids.len() as u32;
                    let level = self.level_for(id);
                    self.ids.push(id);
                    self.levels.push(level as u8);
                    self.vectors.extend_from_slice(v);
                    self.links.push(vec![Vec::new(); level + 1]);
                    self.slot_of.insert(id, slot);
                    slot
                }
            };
            slots.push(slot);
        }
        let mut touched = vec![false; self.ids.len()];
        for &s in &slots {
            touched[s as usize] = true;
        }
        // Phase 2: bulk unlink — symmetric removals only, repair deferred.
        struct RepairJob {
            layer: u32,
            /// Orphaned neighbors outside the touched set, in list order.
            orphans: Vec<u32>,
            /// The removed node's full neighbor list: the replacement pool.
            candidates: Vec<u32>,
        }
        let mut jobs: Vec<RepairJob> = Vec::new();
        for &slot in &slots {
            for layer in 0..self.links[slot as usize].len() {
                let neighbors = std::mem::take(&mut self.links[slot as usize][layer]);
                for &n in &neighbors {
                    self.links[n as usize][layer].retain(|&s| s != slot);
                }
                let orphans: Vec<u32> = neighbors
                    .iter()
                    .copied()
                    .filter(|&n| !touched[n as usize])
                    .collect();
                if !orphans.is_empty() {
                    jobs.push(RepairJob {
                        layer: layer as u32,
                        orphans,
                        candidates: neighbors,
                    });
                }
            }
        }
        // Entry fallback once for the whole batch, not per touched node.
        if let Some(e) = self.entry {
            if touched[e as usize] {
                self.entry = (0..self.ids.len())
                    .filter(|&s| !touched[s])
                    .max_by_key(|&s| (self.levels[s], std::cmp::Reverse(self.ids[s])))
                    .map(|s| s as u32);
            }
        }
        // Phase 3: deferred hole repair against the post-removal graph.
        // Deficits and partner room are evaluated now, so an orphan that
        // lost links to several touched nodes is patched once, and partners
        // inside the touched set are skipped (their re-link refills them).
        for job in &jobs {
            let layer = job.layer as usize;
            let cap = self.cap(layer);
            for &n in &job.orphans {
                let deficit = cap.saturating_sub(self.links[n as usize][layer].len());
                if deficit == 0 {
                    continue;
                }
                let base = {
                    let i = n as usize * self.dim;
                    &self.vectors[i..i + self.dim]
                };
                let mut cands: Vec<Hit> = job
                    .candidates
                    .iter()
                    .filter(|&&m| {
                        m != n
                            && !touched[m as usize]
                            && self.links[m as usize][layer].len() < cap
                            && !self.links[n as usize][layer].contains(&m)
                    })
                    .map(|&m| Hit {
                        score: dot(base, {
                            let i = m as usize * self.dim;
                            &self.vectors[i..i + self.dim]
                        }),
                        slot: m,
                    })
                    .collect();
                cands.sort_unstable_by(|a, b| b.cmp(a));
                for h in cands.into_iter().take(deficit) {
                    self.links[n as usize][layer].push(h.slot);
                    self.links[h.slot as usize][layer].push(n);
                }
            }
        }
        // Phase 4: re-link in ascending-id order with one shared beam.
        let mut scratch = SearchScratch::default();
        for &slot in &slots {
            self.link_with(slot, &mut scratch);
        }
    }

    /// Removes `slot` from every neighbor list pointing at it (exact, thanks
    /// to link symmetry) and clears its own lists, then repairs the holes:
    /// each orphaned neighbor whose list dropped below its cap is offered the
    /// removed node's *other* neighbors (best-scoring first) as replacement
    /// links. Without this, repeated dirty-node updates thin the lists of
    /// every node near an update site and beam recall decays epoch over
    /// epoch — the graph loses exactly the edges that made the region
    /// navigable. If `slot` was the entry point, the highest remaining node
    /// (ties: lowest id) takes over.
    fn unlink(&mut self, slot: u32) {
        for layer in 0..self.links[slot as usize].len() {
            let neighbors = std::mem::take(&mut self.links[slot as usize][layer]);
            for &n in &neighbors {
                self.links[n as usize][layer].retain(|&s| s != slot);
            }
            let cap = self.cap(layer);
            for &n in &neighbors {
                let deficit = cap.saturating_sub(self.links[n as usize][layer].len());
                if deficit == 0 {
                    continue;
                }
                let base = {
                    let i = n as usize * self.dim;
                    &self.vectors[i..i + self.dim]
                };
                let mut cands: Vec<Hit> = neighbors
                    .iter()
                    .filter(|&&m| {
                        // Only pair with neighbors that also have room:
                        // repair must not trigger overflow pruning of its
                        // own (the prune/repair cascade dominates update
                        // cost), and a full list has no hole to patch.
                        m != n
                            && self.links[m as usize][layer].len() < cap
                            && !self.links[n as usize][layer].contains(&m)
                    })
                    .map(|&m| Hit {
                        score: dot(base, {
                            let i = m as usize * self.dim;
                            &self.vectors[i..i + self.dim]
                        }),
                        slot: m,
                    })
                    .collect();
                cands.sort_unstable_by(|a, b| b.cmp(a));
                for h in cands.into_iter().take(deficit) {
                    self.links[n as usize][layer].push(h.slot);
                    self.links[h.slot as usize][layer].push(n);
                }
            }
        }
        if self.entry == Some(slot) {
            self.entry = self
                .ids
                .iter()
                .enumerate()
                .filter(|&(s, _)| s as u32 != slot)
                .max_by_key(|&(s, _)| (self.levels[s], std::cmp::Reverse(self.ids[s])))
                .map(|(s, _)| s as u32);
        }
    }

    /// Links `slot` into the graph with a fresh scratch (single-update
    /// path). The batch path shares one scratch via
    /// [`HnswIndex::link_with`].
    fn link(&mut self, slot: u32) {
        let mut scratch = SearchScratch::default();
        self.link_with(slot, &mut scratch);
    }

    /// Links `slot` into the graph: greedy descent through layers above its
    /// level, then beam search + top-`cap` selection on each of its layers.
    /// `scratch` is only reused storage — the result is identical to linking
    /// with a fresh scratch.
    fn link_with(&mut self, slot: u32, scratch: &mut SearchScratch) {
        let level = self.levels[slot as usize] as usize;
        let Some(entry) = self.entry else {
            self.entry = Some(slot);
            return;
        };
        let entry_level = self.levels[entry as usize] as usize;
        let q = {
            // Borrow dance: the query vector aliases `self`, so copy it out
            // once (dim is small; this is an insert, not the query path).
            self.vec_of(slot).to_vec()
        };
        let mut ep = entry;
        for layer in ((level + 1)..=entry_level).rev() {
            ep = self.greedy_step(&q, ep, layer);
        }
        scratch.entries.clear();
        scratch.entries.push(ep);
        for layer in (0..=level.min(entry_level)).rev() {
            let entries = scratch.entries.clone();
            self.search_layer(&q, &entries, self.cfg.ef_construction, layer, scratch);
            // Drain best-first: the heap pops worst-first, so reverse.
            let mut found: Vec<Hit> = Vec::with_capacity(scratch.best.len());
            while let Some(std::cmp::Reverse(h)) = scratch.best.pop() {
                found.push(h);
            }
            found.reverse();
            let cap = self.cap(layer);
            let chosen = self.select_diverse(&found, slot, cap);
            for &n in &chosen {
                self.links[slot as usize][layer].push(n);
                self.links[n as usize][layer].push(slot);
                self.prune(n, layer);
            }
            scratch.entries.clear();
            scratch.entries.extend(chosen.iter().copied());
            if scratch.entries.is_empty() {
                scratch.entries.push(ep);
            }
        }
        if level > entry_level {
            self.entry = Some(slot);
        }
    }

    /// Neighbor-diversity selection (the HNSW paper's Algorithm 4, adapted
    /// to inner-product scores): walk `found` best-first and keep a
    /// candidate only if it scores higher against the query than against
    /// every neighbor already chosen — plain top-`cap` selection links a
    /// tight cluster to itself and leaves the region unreachable from
    /// outside. Skipped candidates backfill in score order if the diverse
    /// set comes up short of `cap`.
    fn select_diverse(&self, found: &[Hit], slot: u32, cap: usize) -> Vec<u32> {
        let mut chosen: Vec<u32> = Vec::with_capacity(cap);
        let mut skipped: Vec<u32> = Vec::new();
        for h in found {
            if h.slot == slot {
                continue;
            }
            if chosen.len() >= cap {
                break;
            }
            let diverse = chosen.iter().all(|&s| {
                dot(self.vec_of(h.slot), self.vec_of(s)).total_cmp(&h.score) == Ordering::Less
            });
            if diverse {
                chosen.push(h.slot);
            } else {
                skipped.push(h.slot);
            }
        }
        for s in skipped {
            if chosen.len() >= cap {
                break;
            }
            chosen.push(s);
        }
        chosen
    }

    /// If `slot`'s list on `layer` overflows its cap, re-select its
    /// neighbors with the same diversity heuristic the insert path uses
    /// (so overflow pruning cannot collapse a node's links back into one
    /// cluster) and symmetrically drop the rest.
    fn prune(&mut self, slot: u32, layer: usize) {
        let cap = self.cap(layer);
        if self.links[slot as usize][layer].len() <= cap + PRUNE_SLACK {
            return;
        }
        let base = self.vec_of(slot);
        let mut scored: Vec<Hit> = self.links[slot as usize][layer]
            .iter()
            .map(|&n| Hit {
                score: dot(base, {
                    let i = n as usize * self.dim;
                    &self.vectors[i..i + self.dim]
                }),
                slot: n,
            })
            .collect();
        scored.sort_unstable_by(|a, b| b.cmp(a));
        let keep = self.select_diverse(&scored, slot, cap);
        let dropped: Vec<u32> = scored
            .iter()
            .map(|h| h.slot)
            .filter(|s| !keep.contains(s))
            .collect();
        self.links[slot as usize][layer] = keep;
        for d in dropped {
            self.links[d as usize][layer].retain(|&s| s != slot);
        }
    }

    /// One layer of greedy descent: repeatedly move to the best-scoring
    /// neighbor, ties broken by ascending slot. The move target is strictly
    /// greater in `(score, ascending-id)` order, so the walk terminates.
    fn greedy_step(&self, q: &[f32], mut cur: u32, layer: usize) -> u32 {
        let mut cur_score = dot(q, self.vec_of(cur));
        loop {
            let mut moved = false;
            for &n in &self.links[cur as usize][layer] {
                let s = dot(q, self.vec_of(n));
                let better = match s.total_cmp(&cur_score) {
                    Ordering::Greater => true,
                    Ordering::Equal => n < cur,
                    Ordering::Less => false,
                };
                if better {
                    cur = n;
                    cur_score = s;
                    moved = true;
                }
            }
            if !moved {
                return cur;
            }
        }
    }

    /// Beam search on one layer: expands the frontier best-first, keeping
    /// the `ef` best visited nodes in `scratch.best`.
    fn search_layer(
        &self,
        q: &[f32],
        entries: &[u32],
        ef: usize,
        layer: usize,
        scratch: &mut SearchScratch,
    ) {
        scratch.begin(self.ids.len());
        for &ep in entries {
            if scratch.visit(ep) {
                let h = Hit {
                    score: dot(q, self.vec_of(ep)),
                    slot: ep,
                };
                scratch.cand.push(h);
                scratch.best.push(std::cmp::Reverse(h));
            }
        }
        while scratch.best.len() > ef {
            scratch.best.pop();
        }
        while let Some(c) = scratch.cand.pop() {
            let worst = scratch.best.peek().map(|r| r.0);
            if scratch.best.len() >= ef && worst.is_some_and(|w| c < w) {
                break;
            }
            for &n in &self.links[c.slot as usize][layer] {
                if !scratch.visit(n) {
                    continue;
                }
                let h = Hit {
                    score: dot(q, self.vec_of(n)),
                    slot: n,
                };
                let worst = scratch.best.peek().map(|r| r.0);
                if scratch.best.len() < ef || worst.is_some_and(|w| h > w) {
                    scratch.cand.push(h);
                    scratch.best.push(std::cmp::Reverse(h));
                    while scratch.best.len() > ef {
                        scratch.best.pop();
                    }
                }
            }
        }
    }

    /// Approximate top candidates for `query`: descends the layers greedily,
    /// beam-searches layer 0 with width `max(ef, k)`, and writes the visited
    /// best external ids into `scratch.out`, best score first (ties by
    /// ascending id). Returns the ids as a slice borrowing the scratch.
    ///
    /// Callers re-score the returned candidates *exactly*, so the index only
    /// has to get membership right, not scores — with `ef ≥ k` and a healthy
    /// graph, recall@k is typically well above 0.95 (the serving layer's
    /// recall guard measures it continuously).
    pub fn search_into<'a>(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        scratch: &'a mut SearchScratch,
    ) -> &'a [u32] {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        scratch.out.clear();
        let Some(entry) = self.entry else {
            return &scratch.out;
        };
        if k == 0 {
            return &scratch.out;
        }
        let ef = ef.max(k).max(1);
        let mut ep = entry;
        for layer in (1..=self.levels[entry as usize] as usize).rev() {
            ep = self.greedy_step(query, ep, layer);
        }
        self.search_layer(query, &[ep], ef, 0, scratch);
        let mut found: Vec<Hit> = Vec::with_capacity(scratch.best.len());
        while let Some(std::cmp::Reverse(h)) = scratch.best.pop() {
            found.push(h);
        }
        for h in found.iter().rev() {
            scratch.out.push(self.ids[h.slot as usize]);
        }
        &scratch.out
    }

    /// Allocating convenience wrapper over [`HnswIndex::search_into`].
    pub fn search(&self, query: &[f32], k: usize, ef: usize) -> Vec<u32> {
        let mut scratch = SearchScratch::default();
        self.search_into(query, k, ef, &mut scratch).to_vec()
    }

    /// FNV-1a digest of the entire structure — ids, levels, links, entry,
    /// and the exact vector bits. Equal fingerprints mean bit-identical
    /// indexes; the determinism tests pin this across rebuilds.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(&(self.dim as u64).to_le_bytes());
        eat(&self.entry.map(|e| e as u64 + 1).unwrap_or(0).to_le_bytes());
        for (slot, &id) in self.ids.iter().enumerate() {
            eat(&id.to_le_bytes());
            eat(&[self.levels[slot]]);
            for layer in &self.links[slot] {
                eat(&(layer.len() as u32).to_le_bytes());
                for &n in layer {
                    eat(&n.to_le_bytes());
                }
            }
        }
        for v in &self.vectors {
            eat(&v.to_bits().to_le_bytes());
        }
        h
    }

    /// Estimated resident bytes of the index: vector slab, id/level columns,
    /// neighbor lists (24 B `Vec` header + 4 B per link), and the id→slot
    /// map. Used by benches to report index memory (the shared-base layout's
    /// ÷R headline).
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.vectors.len() * 4 // vector slab
            + self.ids.len() * (4 + 1)         // ids + levels
            + self.slot_of.len() * 16; // id → slot entries (approx)
        for per_slot in &self.links {
            for layer in per_slot {
                bytes += 24 + layer.len() * 4;
            }
        }
        bytes
    }

    /// Exact brute-force top-`k` ids over the indexed vectors (reference for
    /// recall measurement in tests and benches).
    pub fn brute_force(&self, query: &[f32], k: usize) -> Vec<u32> {
        let mut scored: Vec<Hit> = (0..self.ids.len() as u32)
            .map(|s| Hit {
                score: dot(query, self.vec_of(s)),
                slot: s,
            })
            .collect();
        scored.sort_unstable_by(|a, b| b.cmp(a));
        scored
            .iter()
            .take(k)
            .map(|h| self.ids[h.slot as usize])
            .collect()
    }
}

/// On-disk framing magic for a serialized [`HnswIndex`].
const SERDE_MAGIC: &[u8; 8] = b"SUPANN01";

/// Implausibility bounds for deserialization: a header claiming more than
/// these is corruption, not a real index (prevents attacker/bitrot-sized
/// allocations before any data is read).
const MAX_ITEMS: u64 = 1 << 31;
const MAX_DIM: u64 = 1 << 20;

/// Errors from [`HnswIndex::write_to`] / [`HnswIndex::read_from`]. Decoding
/// never panics and never yields a structurally invalid index: every failure
/// is one of these named cases.
#[derive(Debug)]
pub enum AnnIoError {
    /// Underlying reader/writer error.
    Io(std::io::Error),
    /// The stream does not start with the `SUPANN01` magic.
    BadMagic,
    /// Structural validation failed (bounds, counts, duplicate ids, …).
    Corrupt(&'static str),
    /// The structure decoded, but its recomputed fingerprint does not match
    /// the stored one — bit rot inside otherwise-plausible data.
    FingerprintMismatch { stored: u64, computed: u64 },
}

impl std::fmt::Display for AnnIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnnIoError::Io(e) => write!(f, "ann index io: {e}"),
            AnnIoError::BadMagic => write!(f, "ann index: bad magic (not a SUPANN01 stream)"),
            AnnIoError::Corrupt(what) => write!(f, "ann index corrupt: {what}"),
            AnnIoError::FingerprintMismatch { stored, computed } => write!(
                f,
                "ann index fingerprint mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
        }
    }
}

impl std::error::Error for AnnIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnnIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for AnnIoError {
    fn from(e: std::io::Error) -> Self {
        AnnIoError::Io(e)
    }
}

/// Persistence: the full structure — config, vector slab, neighbor lists,
/// id↔slot map (implicit in slot order), entry point — is serialized
/// little-endian with the fingerprint as a trailer, so a restored index is
/// bit-identical to the saved one and verifiably so. Checkpoint v3 and
/// replication baseline frames carry these bytes opaquely.
impl HnswIndex {
    /// Serializes the index. Layout (all little-endian):
    ///
    /// ```text
    /// "SUPANN01" | dim u64 | m u64 | ef_construction u64 | seed u64
    ///           | entry+1 u64 | n u64
    ///           | ids   n×u32
    ///           | levels n×u8
    ///           | links  per slot: per layer (levels[slot]+1 of them):
    ///                      len u32, then len×u32 neighbor slots
    ///           | vectors n·dim×f32 (bit patterns)
    ///           | fingerprint u64
    /// ```
    pub fn write_to<W: std::io::Write>(&self, w: &mut W) -> Result<(), AnnIoError> {
        w.write_all(SERDE_MAGIC)?;
        let header = [
            self.dim as u64,
            self.cfg.m as u64,
            self.cfg.ef_construction as u64,
            self.cfg.seed,
            self.entry.map(|e| e as u64 + 1).unwrap_or(0),
            self.ids.len() as u64,
        ];
        for v in header {
            w.write_all(&v.to_le_bytes())?;
        }
        for &id in &self.ids {
            w.write_all(&id.to_le_bytes())?;
        }
        w.write_all(&self.levels)?;
        for per_slot in &self.links {
            for layer in per_slot {
                w.write_all(&(layer.len() as u32).to_le_bytes())?;
                for &n in layer {
                    w.write_all(&n.to_le_bytes())?;
                }
            }
        }
        let mut row = Vec::with_capacity(self.dim * 4);
        for chunk in self.vectors.chunks(self.dim.max(1)) {
            row.clear();
            for v in chunk {
                row.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            w.write_all(&row)?;
        }
        w.write_all(&self.fingerprint().to_le_bytes())?;
        Ok(())
    }

    /// The serialized index as an owned byte buffer (what checkpoints and
    /// baseline frames embed).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.vectors.len() * 4);
        self.write_to(&mut out)
            .expect("Vec<u8> writes are infallible");
        out
    }

    /// Deserializes an index written by [`HnswIndex::write_to`], validating
    /// structure (bounds, counts, duplicate ids) and then the stored
    /// fingerprint against a recomputation — a decode that returns `Ok` is
    /// bit-identical to the index that was saved, never silently corrupt.
    pub fn read_from<R: std::io::Read>(r: &mut R) -> Result<HnswIndex, AnnIoError> {
        fn u64_of<R: std::io::Read>(r: &mut R) -> Result<u64, AnnIoError> {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)?;
            Ok(u64::from_le_bytes(b))
        }
        fn u32_of<R: std::io::Read>(r: &mut R) -> Result<u32, AnnIoError> {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            Ok(u32::from_le_bytes(b))
        }
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != SERDE_MAGIC {
            return Err(AnnIoError::BadMagic);
        }
        let dim = u64_of(r)?;
        let m = u64_of(r)?;
        let ef_construction = u64_of(r)?;
        let seed = u64_of(r)?;
        let entry = u64_of(r)?;
        let n = u64_of(r)?;
        if dim == 0 || dim > MAX_DIM {
            return Err(AnnIoError::Corrupt("implausible dimension"));
        }
        if !(2..=MAX_DIM).contains(&m) || !(1..=MAX_DIM).contains(&ef_construction) {
            return Err(AnnIoError::Corrupt("implausible config"));
        }
        if n > MAX_ITEMS {
            return Err(AnnIoError::Corrupt("implausible item count"));
        }
        let n = n as usize;
        if entry > n as u64 {
            return Err(AnnIoError::Corrupt("entry point out of bounds"));
        }
        if entry == 0 && n > 0 || entry > 0 && n == 0 {
            return Err(AnnIoError::Corrupt(
                "entry point inconsistent with item count",
            ));
        }
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(u32_of(r)?);
        }
        let mut levels = vec![0u8; n];
        r.read_exact(&mut levels)?;
        if levels.iter().any(|&l| l as usize > MAX_LEVEL) {
            return Err(AnnIoError::Corrupt("level above MAX_LEVEL"));
        }
        let mut links = Vec::with_capacity(n);
        for &level in &levels {
            let mut per_slot = Vec::with_capacity(level as usize + 1);
            for _ in 0..=level {
                let len = u32_of(r)? as usize;
                if len > n {
                    return Err(AnnIoError::Corrupt("neighbor list longer than index"));
                }
                let mut layer = Vec::with_capacity(len);
                for _ in 0..len {
                    let s = u32_of(r)?;
                    if s as usize >= n {
                        return Err(AnnIoError::Corrupt("neighbor slot out of bounds"));
                    }
                    layer.push(s);
                }
                per_slot.push(layer);
            }
            links.push(per_slot);
        }
        let mut vectors = Vec::with_capacity(n * dim as usize);
        let mut row = vec![0u8; dim as usize * 4];
        for _ in 0..n {
            r.read_exact(&mut row)?;
            for b in row.chunks_exact(4) {
                vectors.push(f32::from_bits(u32::from_le_bytes([b[0], b[1], b[2], b[3]])));
            }
        }
        let stored = u64_of(r)?;
        let mut slot_of = std::collections::HashMap::with_capacity(n);
        for (slot, &id) in ids.iter().enumerate() {
            if slot_of.insert(id, slot as u32).is_some() {
                return Err(AnnIoError::Corrupt("duplicate external id"));
            }
        }
        let idx = HnswIndex {
            cfg: AnnConfig {
                m: m as usize,
                ef_construction: ef_construction as usize,
                seed,
            },
            dim: dim as usize,
            ids,
            levels,
            vectors,
            links,
            slot_of,
            entry: if entry == 0 {
                None
            } else {
                Some(entry as u32 - 1)
            },
        };
        let computed = idx.fingerprint();
        if computed != stored {
            return Err(AnnIoError::FingerprintMismatch { stored, computed });
        }
        Ok(idx)
    }

    /// Deserializes from an in-memory buffer, rejecting trailing garbage.
    pub fn from_bytes(bytes: &[u8]) -> Result<HnswIndex, AnnIoError> {
        let mut cursor = bytes;
        let idx = HnswIndex::read_from(&mut cursor)?;
        if !cursor.is_empty() {
            return Err(AnnIoError::Corrupt("trailing bytes after index"));
        }
        Ok(idx)
    }
}

/// Framing magic for a serialized index *set* (the serving layer's
/// shard-major `[shard][group]` family of indexes).
const SET_MAGIC: &[u8; 8] = b"SUPANNS1";

/// One shard's family of per-destination-group indexes. A `None` slot means
/// the group had no candidates when the set was published.
pub type IndexSet = Vec<Option<HnswIndex>>;

/// Implausibility bound on the outer set dimensions: more shards or groups
/// than this is corruption, not a real deployment.
const MAX_SET_AXIS: u64 = 1 << 12;

/// Serializes a shard-major set of optional indexes plus two opaque `u64`
/// stamps (the serving layer records the effective `ef_search`/`ef_margin`
/// there so a restored engine resumes the tuner where it left off). The
/// inner indexes use the [`HnswIndex::write_to`] format, each guarded by
/// its own fingerprint trailer.
///
/// ```text
/// "SUPANNS1" | stamp0 u64 | stamp1 u64 | n_shards u64
///           | per shard: n_groups u64,
///                        per group: present u8 (0/1),
///                                   if 1: len u64 + index bytes
/// ```
pub fn encode_index_set(shards: &[IndexSet], stamps: [u64; 2]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SET_MAGIC);
    out.extend_from_slice(&stamps[0].to_le_bytes());
    out.extend_from_slice(&stamps[1].to_le_bytes());
    out.extend_from_slice(&(shards.len() as u64).to_le_bytes());
    for groups in shards {
        out.extend_from_slice(&(groups.len() as u64).to_le_bytes());
        for index in groups {
            match index {
                Some(idx) => {
                    out.push(1);
                    let bytes = idx.to_bytes();
                    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
                    out.extend_from_slice(&bytes);
                }
                None => out.push(0),
            }
        }
    }
    out
}

/// Deserializes an index set written by [`encode_index_set`], validating the
/// outer framing and every inner index (structure + fingerprint). Trailing
/// garbage is rejected, so adopting a decoded set is all-or-nothing — a
/// caller either gets the exact saved family or a named error and rebuilds.
pub fn decode_index_set(bytes: &[u8]) -> Result<(Vec<IndexSet>, [u64; 2]), AnnIoError> {
    let mut cur = bytes;
    fn u64_of(cur: &mut &[u8]) -> Result<u64, AnnIoError> {
        if cur.len() < 8 {
            return Err(AnnIoError::Corrupt("index set truncated"));
        }
        let (head, rest) = cur.split_at(8);
        *cur = rest;
        Ok(u64::from_le_bytes(head.try_into().unwrap()))
    }
    if cur.len() < 8 || &cur[..8] != SET_MAGIC {
        return Err(AnnIoError::BadMagic);
    }
    cur = &cur[8..];
    let stamps = [u64_of(&mut cur)?, u64_of(&mut cur)?];
    let n_shards = u64_of(&mut cur)?;
    if n_shards > MAX_SET_AXIS {
        return Err(AnnIoError::Corrupt("implausible shard count"));
    }
    let mut shards = Vec::with_capacity(n_shards as usize);
    for _ in 0..n_shards {
        let n_groups = u64_of(&mut cur)?;
        if n_groups > MAX_SET_AXIS {
            return Err(AnnIoError::Corrupt("implausible group count"));
        }
        let mut groups = Vec::with_capacity(n_groups as usize);
        for _ in 0..n_groups {
            let Some((&flag, rest)) = cur.split_first() else {
                return Err(AnnIoError::Corrupt("index set truncated"));
            };
            cur = rest;
            match flag {
                0 => groups.push(None),
                1 => {
                    let len = u64_of(&mut cur)? as usize;
                    if len > cur.len() {
                        return Err(AnnIoError::Corrupt("index set truncated"));
                    }
                    let (head, rest) = cur.split_at(len);
                    cur = rest;
                    groups.push(Some(HnswIndex::from_bytes(head)?));
                }
                _ => return Err(AnnIoError::Corrupt("index presence flag out of range")),
            }
        }
        shards.push(groups);
    }
    if !cur.is_empty() {
        return Err(AnnIoError::Corrupt("trailing bytes after index set"));
    }
    Ok((shards, stamps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.random_range(-1.0..1.0f32)).collect())
            .collect()
    }

    fn build(vectors: &[Vec<f32>], cfg: AnnConfig) -> HnswIndex {
        let mut idx = HnswIndex::new(vectors[0].len(), cfg);
        for (i, v) in vectors.iter().enumerate() {
            idx.insert(i as u32, v);
        }
        idx
    }

    fn recall(idx: &HnswIndex, queries: &[Vec<f32>], k: usize, ef: usize) -> f64 {
        let mut scratch = SearchScratch::default();
        let (mut hit, mut want) = (0usize, 0usize);
        for q in queries {
            let exact = idx.brute_force(q, k);
            let approx = idx.search_into(q, k, ef, &mut scratch);
            want += exact.len().min(k);
            hit += exact
                .iter()
                .take(k)
                .filter(|id| approx[..approx.len().min(ef)].contains(id))
                .count();
        }
        hit as f64 / want.max(1) as f64
    }

    #[test]
    fn empty_and_tiny_indexes_answer() {
        let idx = HnswIndex::new(4, AnnConfig::default());
        assert!(idx.is_empty());
        assert!(idx.search(&[0.0; 4], 5, 10).is_empty());

        let mut idx = HnswIndex::new(2, AnnConfig::default());
        idx.insert(42, &[1.0, 0.0]);
        assert_eq!(idx.search(&[1.0, 0.0], 3, 8), vec![42]);
        assert!(idx.search(&[1.0, 0.0], 0, 8).is_empty());
    }

    #[test]
    fn recall_is_high_on_random_vectors() {
        let vectors = random_vectors(2_000, 16, 11);
        let idx = build(&vectors, AnnConfig::default());
        let queries = random_vectors(100, 16, 99);
        let r = recall(&idx, &queries, 10, 64);
        assert!(r >= 0.95, "recall@10 {r:.3} < 0.95");
    }

    #[test]
    fn construction_and_search_are_bit_deterministic() {
        let vectors = random_vectors(600, 8, 3);
        let a = build(&vectors, AnnConfig::default());
        let b = build(&vectors, AnnConfig::default());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
        let queries = random_vectors(20, 8, 5);
        let mut sa = SearchScratch::default();
        let mut sb = SearchScratch::default();
        for q in &queries {
            assert_eq!(
                a.search_into(q, 10, 40, &mut sa),
                b.search_into(q, 10, 40, &mut sb)
            );
        }
    }

    #[test]
    fn levels_are_a_pure_function_of_seed_and_id() {
        let idx = HnswIndex::new(4, AnnConfig::default());
        let other = HnswIndex::new(9, AnnConfig::default());
        for id in 0..2_000u32 {
            assert_eq!(idx.level_for(id), other.level_for(id));
        }
        // Levels follow a geometric-ish distribution: most nodes at 0,
        // some above, none at the cap.
        let above: usize = (0..2_000u32).filter(|&i| idx.level_for(i) > 0).count();
        assert!(above > 20 && above < 600, "{above} nodes above layer 0");
    }

    #[test]
    fn updates_keep_the_index_searchable_and_deterministic() {
        let mut vectors = random_vectors(800, 8, 17);
        let mut idx = build(&vectors, AnnConfig::default());
        // Dirty refresh: move 10% of the vectors, update in ascending id
        // order (the serving engine's touched-set order).
        let moved = random_vectors(80, 8, 18);
        for (j, v) in moved.iter().enumerate() {
            let id = (j * 10) as u32;
            vectors[id as usize] = v.clone();
            idx.update(id, v);
        }
        assert_eq!(idx.len(), 800);
        let queries = random_vectors(50, 8, 19);
        let r = recall(&idx, &queries, 10, 64);
        assert!(r >= 0.95, "post-update recall@10 {r:.3} < 0.95");

        // The same update sequence on a fresh build lands on the same bits.
        let mut again = build(&random_vectors(800, 8, 17), AnnConfig::default());
        for (j, v) in moved.iter().enumerate() {
            again.update((j * 10) as u32, v);
        }
        assert_eq!(idx.fingerprint(), again.fingerprint());
    }

    #[test]
    fn links_stay_symmetric_and_capped() {
        let vectors = random_vectors(500, 8, 23);
        let mut idx = build(
            &vectors,
            AnnConfig {
                m: 4,
                ..AnnConfig::default()
            },
        );
        for (j, v) in random_vectors(50, 8, 24).iter().enumerate() {
            idx.update((j * 7) as u32, v);
        }
        for slot in 0..idx.ids.len() as u32 {
            for (layer, list) in idx.links[slot as usize].iter().enumerate() {
                assert!(
                    list.len() <= idx.cap(layer) + PRUNE_SLACK,
                    "slot {slot} layer {layer}: {} links over the pruning bound",
                    list.len()
                );
                for &n in list {
                    assert!(
                        idx.links[n as usize][layer].contains(&slot),
                        "asymmetric link {slot} -> {n} on layer {layer}"
                    );
                }
            }
        }
    }

    #[test]
    fn search_prefers_the_true_nearest_for_clustered_data() {
        // Two well-separated clusters: a query near one cluster's center
        // must return members of that cluster.
        let dim = 8;
        let mut vectors = Vec::new();
        for i in 0..200 {
            let mut v = vec![0.0f32; dim];
            v[0] = 10.0 + (i as f32) * 1e-3;
            vectors.push(v);
        }
        for i in 0..200 {
            let mut v = vec![0.0f32; dim];
            v[1] = 10.0 + (i as f32) * 1e-3;
            vectors.push(v);
        }
        let idx = build(&vectors, AnnConfig::default());
        let mut q = vec![0.0f32; dim];
        q[1] = 1.0;
        for id in idx.search(&q, 5, 32) {
            assert!(
                id >= 200,
                "cluster-0 item {id} returned for a cluster-1 query"
            );
        }
    }

    /// Row-major concatenation helper for `update_batch`.
    fn rows(vs: &[Vec<f32>]) -> Vec<f32> {
        vs.iter().flat_map(|v| v.iter().copied()).collect()
    }

    #[test]
    fn update_of_a_never_inserted_id_inserts_it() {
        let vectors = random_vectors(100, 8, 51);
        let mut idx = build(&vectors, AnnConfig::default());
        assert!(!idx.contains(7_000));
        let v = random_vectors(1, 8, 52).remove(0);
        idx.update(7_000, &v);
        assert!(idx.contains(7_000));
        assert_eq!(idx.len(), 101);
        assert!(idx.search(&v, 5, 32).contains(&7_000));
        // Same through the batch path.
        let mut idx2 = build(&vectors, AnnConfig::default());
        idx2.update_batch(&[7_000], &v);
        assert_eq!(idx.fingerprint(), idx2.fingerprint());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let vectors = random_vectors(300, 8, 53);
        let mut idx = build(&vectors, AnnConfig::default());
        let before = idx.fingerprint();
        idx.update_batch(&[], &[]);
        assert_eq!(idx.fingerprint(), before);
        // An empty index accepts an empty batch too.
        let mut empty = HnswIndex::new(8, AnnConfig::default());
        empty.update_batch(&[], &[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn batch_of_one_is_bit_identical_to_a_serial_update() {
        let vectors = random_vectors(500, 8, 55);
        let mut serial = build(&vectors, AnnConfig::default());
        let mut batched = build(&vectors, AnnConfig::default());
        let moved = random_vectors(40, 8, 56);
        for (j, v) in moved.iter().enumerate() {
            let id = (j * 11) as u32;
            serial.update(id, v);
            batched.update_batch(&[id], v);
            assert_eq!(
                serial.fingerprint(),
                batched.fingerprint(),
                "batch-of-1 diverged at update {j}"
            );
        }
        assert_eq!(serial, batched);
    }

    #[test]
    fn whole_catalog_batch_keeps_the_index_searchable() {
        // Touched set == entire catalog: every node is unlinked, the entry
        // point falls back to None, and the re-link pass rebuilds the graph
        // from scratch — recall and determinism must survive.
        let n = 600;
        let vectors = random_vectors(n, 8, 57);
        let mut idx = build(&vectors, AnnConfig::default());
        let replaced = random_vectors(n, 8, 58);
        let ids: Vec<u32> = (0..n as u32).collect();
        idx.update_batch(&ids, &rows(&replaced));
        assert_eq!(idx.len(), n);
        let queries = random_vectors(50, 8, 59);
        let r = recall(&idx, &queries, 10, 64);
        assert!(r >= 0.95, "whole-catalog batch recall@10 {r:.3} < 0.95");
        // Bit-determinism: the same batch on a fresh build lands on the
        // same structure.
        let mut again = build(&random_vectors(n, 8, 57), AnnConfig::default());
        again.update_batch(&ids, &rows(&replaced));
        assert_eq!(idx.fingerprint(), again.fingerprint());
    }

    #[test]
    fn batch_and_serial_updates_have_recall_parity_on_a_seeded_stream() {
        // Replay the same seeded dirty-stream through per-id updates and
        // through one batch per "epoch": the structures legitimately differ
        // (deferred repair picks different patch links), but both must hold
        // the same vectors and keep recall at the contract floor.
        let n = 800;
        let base = random_vectors(n, 8, 61);
        let mut serial = build(&base, AnnConfig::default());
        let mut batched = build(&base, AnnConfig::default());
        for epoch in 0..5u64 {
            let moved = random_vectors(60, 8, 100 + epoch);
            let ids: Vec<u32> = (0..60)
                .map(|j| ((j * 13 + epoch as usize) % n) as u32)
                .collect();
            let mut sorted: Vec<(u32, &Vec<f32>)> = ids.iter().copied().zip(moved.iter()).collect();
            sorted.sort_unstable_by_key(|&(id, _)| id);
            sorted.dedup_by_key(|&mut (id, _)| id);
            for &(id, v) in &sorted {
                serial.update(id, v);
            }
            let ids: Vec<u32> = sorted.iter().map(|&(id, _)| id).collect();
            let flat: Vec<f32> = sorted
                .iter()
                .flat_map(|&(_, v)| v.iter().copied())
                .collect();
            batched.update_batch(&ids, &flat);
        }
        let queries = random_vectors(60, 8, 62);
        for q in &queries {
            // Same vectors stored: exact scans agree bit-for-bit.
            assert_eq!(serial.brute_force(q, 10), batched.brute_force(q, 10));
        }
        let rs = recall(&serial, &queries, 10, 64);
        let rb = recall(&batched, &queries, 10, 64);
        assert!(rs >= 0.95, "serial recall@10 {rs:.3} < 0.95");
        assert!(rb >= 0.95, "batched recall@10 {rb:.3} < 0.95");
    }

    #[test]
    fn persist_roundtrip_is_bit_identical() {
        let vectors = random_vectors(400, 8, 63);
        let mut idx = build(&vectors, AnnConfig::default());
        for (j, v) in random_vectors(30, 8, 64).iter().enumerate() {
            idx.update((j * 9) as u32, v);
        }
        let bytes = idx.to_bytes();
        let restored = HnswIndex::from_bytes(&bytes).expect("roundtrip decodes");
        assert_eq!(idx, restored);
        assert_eq!(idx.fingerprint(), restored.fingerprint());
        let queries = random_vectors(20, 8, 65);
        let mut sa = SearchScratch::default();
        let mut sb = SearchScratch::default();
        for q in &queries {
            assert_eq!(
                idx.search_into(q, 10, 48, &mut sa),
                restored.search_into(q, 10, 48, &mut sb)
            );
        }
        // Empty index round-trips too.
        let empty = HnswIndex::new(8, AnnConfig::default());
        let back = HnswIndex::from_bytes(&empty.to_bytes()).unwrap();
        assert!(back.is_empty());
        assert_eq!(empty.fingerprint(), back.fingerprint());
    }

    #[test]
    fn persist_rejects_corruption_with_named_errors() {
        let vectors = random_vectors(200, 8, 67);
        let idx = build(&vectors, AnnConfig::default());
        let bytes = idx.to_bytes();

        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            HnswIndex::from_bytes(&bad),
            Err(AnnIoError::BadMagic)
        ));

        // Truncation anywhere surfaces as Io (read_exact hits EOF).
        assert!(matches!(
            HnswIndex::from_bytes(&bytes[..bytes.len() / 2]),
            Err(AnnIoError::Io(_))
        ));

        // A flipped bit inside the vector slab decodes structurally but
        // fails the fingerprint — never a silent corruption.
        let mut rot = bytes.clone();
        let slab_byte = rot.len() - 12; // inside the last vector row
        rot[slab_byte] ^= 0x01;
        assert!(matches!(
            HnswIndex::from_bytes(&rot),
            Err(AnnIoError::FingerprintMismatch { .. })
        ));

        // Trailing garbage is rejected.
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            HnswIndex::from_bytes(&long),
            Err(AnnIoError::Corrupt(_))
        ));
    }

    #[test]
    fn index_set_round_trips_with_holes_and_stamps() {
        let a = build(&random_vectors(150, 8, 70), AnnConfig::default());
        let b = build(&random_vectors(90, 8, 71), AnnConfig::default());
        let set = vec![vec![Some(a.clone()), None], vec![None, Some(b.clone())]];
        let bytes = encode_index_set(&set, [96, 32]);
        let (back, stamps) = decode_index_set(&bytes).expect("set decodes");
        assert_eq!(stamps, [96, 32]);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0][0].as_ref().unwrap().fingerprint(), a.fingerprint());
        assert!(back[0][1].is_none());
        assert!(back[1][0].is_none());
        assert_eq!(back[1][1].as_ref().unwrap().fingerprint(), b.fingerprint());
        // Empty set (ANN off / no shards) round-trips too.
        let (empty, stamps) = decode_index_set(&encode_index_set(&[], [0, 0])).unwrap();
        assert!(empty.is_empty());
        assert_eq!(stamps, [0, 0]);
    }

    #[test]
    fn index_set_rejects_corruption_with_named_errors() {
        let a = build(&random_vectors(60, 4, 72), AnnConfig::default());
        let bytes = encode_index_set(&[vec![Some(a)]], [64, 16]);
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(decode_index_set(&bad), Err(AnnIoError::BadMagic)));
        assert!(matches!(
            decode_index_set(&bytes[..bytes.len() - 5]),
            Err(AnnIoError::Corrupt(_)) | Err(AnnIoError::Io(_))
        ));
        // A presence flag outside {0, 1} is named, not interpreted.
        let mut flag = bytes.clone();
        flag[8 + 8 + 8 + 8 + 8] = 7; // magic + stamps + n_shards + n_groups
        assert!(matches!(
            decode_index_set(&flag),
            Err(AnnIoError::Corrupt(_))
        ));
        // Inner-index bit rot surfaces as the inner fingerprint error.
        let mut rot = bytes.clone();
        let n = rot.len();
        rot[n - 12] ^= 0x01;
        assert!(matches!(
            decode_index_set(&rot),
            Err(AnnIoError::FingerprintMismatch { .. })
        ));
        // Trailing garbage is all-or-nothing rejected.
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            decode_index_set(&long),
            Err(AnnIoError::Corrupt(_))
        ));
    }
}
