//! Shared CRC-32 and frame-envelope helpers.
//!
//! One CRC implementation serves every on-disk and on-wire format in the
//! workspace: the `SUPAv002` checkpoint envelope ([`crate::checkpoint`]) and
//! the `SUPADELTAv001`/`SUPABASEv0001` replication frames
//! ([`crate::delta`]). All of them share the same envelope discipline —
//! magic, little-endian length header, payload, then an IEEE CRC-32 footer
//! computed over *everything after the magic* — so torn writes and silent
//! bit-rot surface as clean, named load errors instead of corrupt state.

/// IEEE CRC-32 lookup table (polynomial 0xEDB88320), built at compile time
/// so no external crate is needed.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Initial value for a running CRC-32 (feed with [`crc32_update`], close
/// with [`crc32_finish`]).
pub const CRC_INIT: u32 = 0xFFFF_FFFF;

/// Feeds `data` into a running CRC-32.
pub fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    for &b in data {
        crc = CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// Finalises a running CRC-32.
pub fn crc32_finish(crc: u32) -> u32 {
    !crc
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_finish(crc32_update(CRC_INIT, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        // Streaming in pieces is identical to one shot.
        let mut crc = CRC_INIT;
        crc = crc32_update(crc, b"1234");
        crc = crc32_update(crc, b"56789");
        assert_eq!(crc32_finish(crc), 0xCBF4_3926);
    }

    #[test]
    fn crc32_distinguishes_single_bit_flips() {
        let a = crc32(b"hello frames");
        let mut flipped = b"hello frames".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(a, crc32(&flipped));
        assert_eq!(crc32(b""), 0);
    }
}
