//! InsLearn: single-pass incremental training (paper Algorithm 1).
//!
//! The edge stream is cut into sequential batches of `S_batch`. Within each
//! batch, the last `S_valid` edges are held out; the model trains on the
//! rest for up to `N_iter` iterations, validating (MRR over sampled
//! candidates) every `I_valid` iterations, early-stopping after μ
//! non-improving validations, and rolling back to the best snapshot before
//! the next batch. Batches are seen exactly once — the stream is never
//! revisited, which is what makes the workflow deployable online.

use supa_eval::RankingEvaluator;
use supa_graph::{sequential_batches, Dmhg, TemporalEdge};

use crate::model::Supa;

/// Hyper-parameters of the InsLearn workflow (paper §IV-C).
#[derive(Debug, Clone, PartialEq)]
pub struct InsLearnConfig {
    /// `S_batch` (paper: 1024).
    pub batch_size: usize,
    /// `N_iter` (paper: 100 on UCI/Taobao, 30 elsewhere).
    pub n_iter: usize,
    /// `I_valid` (paper: 8).
    pub valid_interval: usize,
    /// `S_valid` (paper: 150; clamped to ⅕ of the batch).
    pub valid_size: usize,
    /// Early-stopping patience μ (paper: 3).
    pub patience: usize,
    /// Distractor count for the sampled validation ranking.
    pub valid_candidates: usize,
}

impl Default for InsLearnConfig {
    fn default() -> Self {
        InsLearnConfig {
            batch_size: 1024,
            n_iter: 30,
            valid_interval: 8,
            valid_size: 150,
            patience: 3,
            valid_candidates: 50,
        }
    }
}

impl InsLearnConfig {
    /// A faster profile for sweeps: fewer iterations, denser validation.
    pub fn fast() -> Self {
        InsLearnConfig {
            n_iter: 8,
            valid_interval: 4,
            ..Default::default()
        }
    }
}

/// What happened during one InsLearn run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InsLearnReport {
    /// Number of batches consumed.
    pub batches: usize,
    /// Total training iterations executed (across batches).
    pub iterations: usize,
    /// Total validations performed.
    pub validations: usize,
    /// Batches that ended by early stopping (patience exceeded).
    pub early_stops: usize,
    /// Batches whose final state was rolled back to a snapshot.
    pub rollbacks: usize,
    /// Mean training loss over the final batch's last iteration.
    pub final_loss: f64,
    /// Best validation MRR observed in the final batch.
    pub final_valid_mrr: f64,
}

impl Supa {
    /// Trains the model with the InsLearn workflow over `edges` (which must
    /// already be present in `g` and time-sorted).
    pub fn train_inslearn(
        &mut self,
        g: &Dmhg,
        edges: &[TemporalEdge],
        cfg: &InsLearnConfig,
    ) -> InsLearnReport {
        assert!(cfg.batch_size > 0 && cfg.n_iter > 0 && cfg.valid_interval > 0);
        let mut report = InsLearnReport::default();
        if edges.is_empty() {
            return report;
        }
        self.resolve_time_scale(g);
        self.ensure_capacity(g.num_nodes());
        self.rebuild_negative_samplers(g);

        for batch in sequential_batches(edges, cfg.batch_size) {
            report.batches += 1;
            // STEP 2: split off the validation suffix (clamped so tiny
            // batches still mostly train).
            let valid_size = cfg.valid_size.min(batch.len() / 5);
            if valid_size == 0 {
                report.iterations += 1;
                report.final_loss = self.train_pass(g, batch);
                continue;
            }
            let (train_part, valid_part) = batch.split_at(batch.len() - valid_size);
            let evaluator =
                RankingEvaluator::sampled(cfg.valid_candidates, self.rng_u64());

            // Algorithm 1 lines 4–19.
            let mut best_score = 0.0f64;
            let mut best_state = self.snapshot();
            let mut cur_patience = 0usize;
            let mut validated = false;
            for i in 1..=cfg.n_iter {
                report.iterations += 1;
                report.final_loss = self.train_pass(g, train_part);
                if i % cfg.valid_interval == 0 {
                    report.validations += 1;
                    validated = true;
                    let score = evaluator.evaluate(g, &*self, valid_part).mrr();
                    if score > best_score {
                        best_score = score;
                        best_state = self.snapshot();
                        cur_patience = 0;
                    } else {
                        cur_patience += 1;
                        if cur_patience > cfg.patience {
                            report.early_stops += 1;
                            break;
                        }
                    }
                }
            }
            // STEP 5: keep the best-validated model. If no validation ever
            // succeeded (score stuck at 0), keep the trained weights instead
            // of discarding the batch.
            if validated && best_score > 0.0 {
                report.rollbacks += 1;
                self.restore(best_state);
            }
            report.final_valid_mrr = best_score;
        }
        report
    }

    /// The conventional (non-InsLearn) training baseline `SUPA_{w/o Ins}`:
    /// scans the whole edge set for `epochs` full passes with no batch
    /// validation or rollback (paper §IV-G3).
    pub fn train_conventional(
        &mut self,
        g: &Dmhg,
        edges: &[TemporalEdge],
        epochs: usize,
    ) -> f64 {
        self.resolve_time_scale(g);
        self.ensure_capacity(g.num_nodes());
        self.rebuild_negative_samplers(g);
        let mut last = 0.0;
        for _ in 0..epochs {
            last = self.train_pass(g, edges);
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SupaConfig;
    use supa_datasets::taobao;
    use supa_eval::Scorer;

    fn setup() -> (Supa, supa_datasets::Dataset, Dmhg) {
        let d = taobao(0.02, 11);
        let cfg = SupaConfig {
            dim: 16,
            ..SupaConfig::small()
        };
        let m = Supa::from_dataset(&d, cfg, 11).unwrap();
        let g = d.full_graph();
        (m, d, g)
    }

    #[test]
    fn inslearn_consumes_every_batch_once() {
        let (mut m, d, g) = setup();
        let n = 2100.min(d.edges.len());
        let cfg = InsLearnConfig {
            batch_size: 1000,
            n_iter: 4,
            valid_interval: 2,
            valid_size: 100,
            patience: 1,
            valid_candidates: 20,
        };
        let report = m.train_inslearn(&g, &d.edges[..n], &cfg);
        assert_eq!(report.batches, 3);
        assert!(report.iterations >= report.batches);
        assert!(report.validations >= 1);
        assert!(report.final_loss > 0.0);
    }

    #[test]
    fn inslearn_improves_scores_of_seen_pairs() {
        let (mut m, d, g) = setup();
        let n = 1500.min(d.edges.len());
        let probe = &d.edges[10];
        let before = m.score(probe.src, probe.dst, probe.relation);
        let cfg = InsLearnConfig {
            batch_size: 512,
            n_iter: 6,
            valid_interval: 3,
            valid_size: 60,
            patience: 2,
            valid_candidates: 20,
        };
        m.train_inslearn(&g, &d.edges[..n], &cfg);
        let after = m.score(probe.src, probe.dst, probe.relation);
        assert!(after > before, "{after} !< {before}");
    }

    #[test]
    fn early_stopping_respects_patience() {
        let (mut m, d, g) = setup();
        let n = 1000.min(d.edges.len());
        // Aggressive validation, zero patience: must early-stop quickly.
        let cfg = InsLearnConfig {
            batch_size: 1000,
            n_iter: 100,
            valid_interval: 1,
            valid_size: 100,
            patience: 0,
            valid_candidates: 20,
        };
        let report = m.train_inslearn(&g, &d.edges[..n], &cfg);
        assert!(
            report.iterations < 100,
            "ran all {} iterations despite patience 0",
            report.iterations
        );
    }

    #[test]
    fn tiny_batches_skip_validation_but_still_train() {
        let (mut m, d, g) = setup();
        let cfg = InsLearnConfig {
            batch_size: 4,
            n_iter: 10,
            valid_interval: 2,
            valid_size: 150,
            patience: 3,
            valid_candidates: 10,
        };
        let report = m.train_inslearn(&g, &d.edges[..12], &cfg);
        assert_eq!(report.batches, 3);
        assert_eq!(report.validations, 0);
        assert_eq!(report.iterations, 3, "one pass per unvalidatable batch");
    }

    #[test]
    fn empty_stream_is_a_noop() {
        let (mut m, _, g) = setup();
        let report = m.train_inslearn(&g, &[], &InsLearnConfig::default());
        assert_eq!(report, InsLearnReport::default());
    }

    #[test]
    fn conventional_training_runs_requested_epochs() {
        let (mut m, d, g) = setup();
        let loss = m.train_conventional(&g, &d.edges[..600], 2);
        assert!(loss > 0.0);
    }
}
