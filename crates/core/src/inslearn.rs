//! InsLearn: single-pass incremental training (paper Algorithm 1), with a
//! fault-tolerant pipeline around it.
//!
//! The edge stream is cut into sequential batches of `S_batch`. Within each
//! batch, the last `S_valid` edges are held out; the model trains on the
//! rest for up to `N_iter` iterations, validating (MRR over sampled
//! candidates) every `I_valid` iterations, early-stopping after μ
//! non-improving validations, and rolling back to the best snapshot before
//! the next batch. Batches are seen exactly once — the stream is never
//! revisited, which is what makes the workflow deployable online.
//!
//! An online trainer also has to survive the real world:
//!
//! - **Divergence guards** ([`GuardConfig`]): every iteration's loss is
//!   checked for NaN/∞ and for spikes above a running average; embedding
//!   health is probed before any state is snapshotted or checkpointed. On
//!   divergence the model rolls back to the last good snapshot and retries
//!   with a backed-off learning rate, up to a bounded retry budget.
//! - **Crash-safe checkpoints** ([`TrainOptions::checkpoints`]): completed
//!   batches are checkpointed through [`CheckpointManager`] with the stream
//!   position, and [`TrainOptions::resume`] picks up from the newest valid
//!   checkpoint after a crash, skipping already-consumed events.

use supa_eval::RankingEvaluator;
use supa_graph::{sequential_batches, Dmhg, TemporalEdge};

use crate::checkpoint::{CheckpointManager, ResumeOutcome};
use crate::model::Supa;

/// Hyper-parameters of the InsLearn workflow (paper §IV-C).
#[derive(Debug, Clone, PartialEq)]
pub struct InsLearnConfig {
    /// `S_batch` (paper: 1024).
    pub batch_size: usize,
    /// `N_iter` (paper: 100 on UCI/Taobao, 30 elsewhere).
    pub n_iter: usize,
    /// `I_valid` (paper: 8).
    pub valid_interval: usize,
    /// `S_valid` (paper: 150; clamped to ⅕ of the batch).
    pub valid_size: usize,
    /// Early-stopping patience μ (paper: 3).
    pub patience: usize,
    /// Distractor count for the sampled validation ranking.
    pub valid_candidates: usize,
}

impl Default for InsLearnConfig {
    fn default() -> Self {
        InsLearnConfig {
            batch_size: 1024,
            n_iter: 30,
            valid_interval: 8,
            valid_size: 150,
            patience: 3,
            valid_candidates: 50,
        }
    }
}

impl InsLearnConfig {
    /// A faster profile for sweeps: fewer iterations, denser validation.
    pub fn fast() -> Self {
        InsLearnConfig {
            n_iter: 8,
            valid_interval: 4,
            ..Default::default()
        }
    }

    /// A copy with zero counts clamped to 1. User-supplied configs (e.g.
    /// CLI flags) flow through this instead of panicking on `0`.
    pub fn sanitized(&self) -> Self {
        InsLearnConfig {
            batch_size: self.batch_size.max(1),
            n_iter: self.n_iter.max(1),
            valid_interval: self.valid_interval.max(1),
            ..self.clone()
        }
    }
}

/// Divergence-guard policy: what counts as a blown-up iteration and how to
/// recover from one.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardConfig {
    /// Master switch; when off, the trainer behaves exactly like the bare
    /// InsLearn loop.
    pub enabled: bool,
    /// A loss above `spike_factor ×` the running loss average (after a short
    /// warm-up) counts as divergence even if finite.
    pub spike_factor: f64,
    /// Divergence recoveries allowed per batch before the batch is
    /// abandoned at its last good state.
    pub max_retries: usize,
    /// Learning-rate multiplier applied on each recovery (`< 1`).
    pub lr_backoff: f32,
    /// The learning rate is never backed off below this.
    pub min_lr: f32,
    /// Any embedding magnitude above this counts as exploded (NaN/∞ always
    /// does).
    pub max_abs_embed: f32,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            enabled: true,
            spike_factor: 25.0,
            max_retries: 3,
            lr_backoff: 0.5,
            min_lr: 1e-5,
            max_abs_embed: 1e6,
        }
    }
}

impl GuardConfig {
    /// A guard that never fires (bare-loop behaviour).
    pub fn disabled() -> Self {
        GuardConfig {
            enabled: false,
            ..Default::default()
        }
    }
}

/// A per-iteration callback: receives the model and the 0-based global
/// iteration index. The fault-injection seam used by the bench harness.
pub type IterHook<'a> = &'a mut dyn FnMut(&mut Supa, u64);

/// Fault-tolerance options for [`Supa::train_inslearn_ft`].
///
/// The default is guards on, no checkpointing — identical learning
/// behaviour to the bare loop on a healthy run (the guard draws no
/// randomness and only reads losses).
#[derive(Default)]
pub struct TrainOptions<'a> {
    /// Divergence-guard policy.
    pub guard: GuardConfig,
    /// Where to write checkpoints (none by default).
    pub checkpoints: Option<&'a mut CheckpointManager>,
    /// Checkpoint every this many completed batches (clamped to ≥ 1).
    pub checkpoint_every: usize,
    /// Before training, load the newest valid checkpoint and skip the
    /// events it already consumed. Requires `checkpoints`; the caller must
    /// pass the same `edges` slice across restarts.
    pub resume: bool,
    /// Called after every training iteration. Not for production use.
    pub iter_hook: Option<IterHook<'a>>,
    /// Per-event importance weights, aligned with `edges` (one per event).
    /// Event `i`'s applied update is scaled by `weights[i]`; validation is
    /// never weighted. `None` (the default) is the exact unweighted run.
    /// See [`Supa::train_pass_weighted`].
    pub weights: Option<&'a [f32]>,
}

/// What happened during one InsLearn run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InsLearnReport {
    /// Number of batches consumed.
    pub batches: usize,
    /// Total training iterations executed (across batches).
    pub iterations: usize,
    /// Total validations performed.
    pub validations: usize,
    /// Batches that ended by early stopping (patience exceeded).
    pub early_stops: usize,
    /// Batches whose final state was rolled back to a snapshot.
    pub rollbacks: usize,
    /// Divergence events (NaN/∞/spiking loss, exploded embeddings) that
    /// were recovered by rolling back to the last good snapshot.
    pub divergence_rollbacks: usize,
    /// Learning-rate reductions performed by the divergence guard.
    pub lr_backoffs: usize,
    /// Whether this run started from a checkpoint instead of scratch.
    pub resumed_from_checkpoint: bool,
    /// Mean training loss over the final batch's last iteration.
    pub final_loss: f64,
    /// Best validation MRR observed in the final batch.
    pub final_valid_mrr: f64,
}

/// Why an iteration was judged divergent.
enum Divergence {
    NonFiniteLoss,
    LossSpike,
    UnhealthyState,
}

/// Per-batch loss statistics for spike detection.
struct LossTracker {
    ema: f64,
    observed: usize,
}

impl LossTracker {
    fn new() -> Self {
        LossTracker {
            ema: 0.0,
            observed: 0,
        }
    }

    /// Checks `loss` against the guard policy; on a healthy value, folds it
    /// into the running average.
    fn check(&mut self, loss: f64, guard: &GuardConfig) -> Option<Divergence> {
        if !loss.is_finite() {
            return Some(Divergence::NonFiniteLoss);
        }
        // Spikes only count after a short warm-up — the first iterations of
        // a batch legitimately move fast.
        if self.observed >= 3 && loss > guard.spike_factor * self.ema.max(1e-12) {
            return Some(Divergence::LossSpike);
        }
        self.ema = if self.observed == 0 {
            loss
        } else {
            0.8 * self.ema + 0.2 * loss
        };
        self.observed += 1;
        None
    }

    fn reset(&mut self) {
        self.observed = 0;
        self.ema = 0.0;
    }
}

impl Supa {
    /// Trains the model with the InsLearn workflow over `edges` (which must
    /// already be present in `g` and time-sorted). Divergence guards are on
    /// (defaults), checkpointing is off; see [`Supa::train_inslearn_ft`]
    /// for the full fault-tolerant pipeline.
    pub fn train_inslearn(
        &mut self,
        g: &Dmhg,
        edges: &[TemporalEdge],
        cfg: &InsLearnConfig,
    ) -> InsLearnReport {
        let (report, _) = self
            .train_inslearn_ft(g, edges, cfg, TrainOptions::default())
            // No checkpoint manager configured, so no I/O can fail.
            .expect("training without checkpointing performs no I/O");
        report
    }

    /// The fault-tolerant InsLearn pipeline: the bare workflow plus
    /// divergence guards, periodic crash-safe checkpoints, and resume.
    ///
    /// Returns the run report and, when `opts.resume` was set with a
    /// checkpoint manager, the [`ResumeOutcome`] describing which
    /// checkpoint loaded and which were skipped (with reasons).
    ///
    /// `Err` only for checkpoint I/O failures; the learning-rate backoff
    /// applied by the guard is restored before returning either way.
    pub fn train_inslearn_ft(
        &mut self,
        g: &Dmhg,
        edges: &[TemporalEdge],
        cfg: &InsLearnConfig,
        opts: TrainOptions<'_>,
    ) -> std::io::Result<(InsLearnReport, Option<ResumeOutcome>)> {
        let orig_lr = self.cfg.learning_rate;
        let result = self.train_inslearn_ft_inner(g, edges, &cfg.sanitized(), opts);
        self.cfg.learning_rate = orig_lr;
        result
    }

    fn train_inslearn_ft_inner(
        &mut self,
        g: &Dmhg,
        edges: &[TemporalEdge],
        cfg: &InsLearnConfig,
        mut opts: TrainOptions<'_>,
    ) -> std::io::Result<(InsLearnReport, Option<ResumeOutcome>)> {
        let mut report = InsLearnReport::default();
        let guard = opts.guard.clone();
        let checkpoint_every = opts.checkpoint_every.max(1);

        // Resume: load the newest valid checkpoint and skip what it already
        // trained on.
        let mut consumed: u64 = 0;
        let mut resume_outcome = None;
        if opts.resume {
            if let Some(mgr) = opts.checkpoints.as_deref_mut() {
                let outcome = mgr.resume(self)?;
                if let Some((_, events)) = &outcome.loaded {
                    consumed = (*events).min(edges.len() as u64);
                    report.resumed_from_checkpoint = true;
                }
                resume_outcome = Some(outcome);
            }
        }
        if let Some(w) = opts.weights {
            assert_eq!(
                w.len(),
                edges.len(),
                "TrainOptions::weights must carry one weight per edge"
            );
        }
        let weights = opts.weights.map(|w| &w[consumed as usize..]);
        let edges = &edges[consumed as usize..];
        if edges.is_empty() {
            return Ok((report, resume_outcome));
        }
        self.resolve_time_scale(g);
        self.ensure_capacity(g.num_nodes());
        // Incremental refresh: callers hand InsLearn one chunk of the stream
        // at a time, and a full per-chunk alias-table rebuild dominated the
        // small-chunk cost. Samplers are rebuilt only on real degree drift.
        self.refresh_negative_samplers(g);

        let mut global_iter: u64 = 0;
        let mut last_saved: Option<u64> = None;
        for batch in sequential_batches(edges, cfg.batch_size) {
            report.batches += 1;
            // `sequential_batches` yields subslices of `edges`, so the
            // batch's offset (and thus its weight window) falls out of
            // pointer arithmetic.
            let offset =
                (batch.as_ptr() as usize - edges.as_ptr() as usize) / size_of::<TemporalEdge>();
            let batch_weights = weights.map(|w| &w[offset..offset + batch.len()]);
            // STEP 2: split off the validation suffix (clamped so tiny
            // batches still mostly train).
            let valid_size = cfg.valid_size.min(batch.len() / 5);
            if valid_size == 0 {
                // Unvalidatable batch: single pass, but still guarded.
                let entry = guard.enabled.then(|| self.snapshot());
                report.iterations += 1;
                report.final_loss = self.train_pass_weighted(g, batch, batch_weights);
                if let Some(hook) = opts.iter_hook.as_mut() {
                    hook(self, global_iter);
                }
                global_iter += 1;
                if let Some(entry) = entry {
                    if !report.final_loss.is_finite() || !self.state.is_healthy(guard.max_abs_embed)
                    {
                        report.divergence_rollbacks += 1;
                        self.restore(entry);
                        self.backoff_lr(&guard, &mut report);
                    }
                }
            } else {
                let (train_part, valid_part) = batch.split_at(batch.len() - valid_size);
                let evaluator = RankingEvaluator::sampled(cfg.valid_candidates, self.rng_u64());

                // Algorithm 1 lines 4–19.
                let mut best_score = 0.0f64;
                let mut best_state = self.snapshot();
                let mut cur_patience = 0usize;
                let mut validated = false;
                let mut tracker = LossTracker::new();
                let mut retries = 0usize;
                for i in 1..=cfg.n_iter {
                    report.iterations += 1;
                    let loss = self.train_pass_weighted(
                        g,
                        train_part,
                        batch_weights.map(|w| &w[..train_part.len()]),
                    );
                    report.final_loss = loss;
                    if let Some(hook) = opts.iter_hook.as_mut() {
                        hook(self, global_iter);
                    }
                    global_iter += 1;

                    if guard.enabled {
                        let divergence = tracker.check(loss, &guard).or_else(|| {
                            // The state probe is a full-table scan, so only
                            // run it where bad state could be persisted:
                            // validation iterations (snapshot) — the loss
                            // checks catch blow-ups on the others a step
                            // later.
                            (i % cfg.valid_interval == 0
                                && !self.state.is_healthy(guard.max_abs_embed))
                            .then_some(Divergence::UnhealthyState)
                        });
                        if let Some(_why) = divergence {
                            report.divergence_rollbacks += 1;
                            self.restore(best_state.clone());
                            self.backoff_lr(&guard, &mut report);
                            tracker.reset();
                            retries += 1;
                            if retries > guard.max_retries {
                                // Budget exhausted: abandon the batch at its
                                // last good state.
                                break;
                            }
                            continue; // skip validation on a rolled-back iter
                        }
                    }

                    if i % cfg.valid_interval == 0 {
                        report.validations += 1;
                        validated = true;
                        let score = evaluator.evaluate(g, &*self, valid_part).mrr();
                        if score > best_score {
                            best_score = score;
                            best_state = self.snapshot();
                            cur_patience = 0;
                        } else {
                            cur_patience += 1;
                            if cur_patience > cfg.patience {
                                report.early_stops += 1;
                                break;
                            }
                        }
                    }
                }
                // STEP 5: keep the best-validated model. If no validation
                // ever succeeded (score stuck at 0), keep the trained
                // weights instead of discarding the batch.
                if validated && best_score > 0.0 {
                    report.rollbacks += 1;
                    self.restore(best_state);
                }
                report.final_valid_mrr = best_score;
            }

            consumed += batch.len() as u64;
            if let Some(mgr) = opts.checkpoints.as_deref_mut() {
                let due = report.batches % checkpoint_every == 0;
                // Never persist a sick state: a corrupt checkpoint today is
                // a poisoned resume tomorrow.
                if due && (!guard.enabled || self.state.is_healthy(guard.max_abs_embed)) {
                    mgr.save(self, consumed)?;
                    last_saved = Some(consumed);
                }
            }
        }
        // A final checkpoint so a completed run resumes as a no-op.
        if let Some(mgr) = opts.checkpoints.as_deref_mut() {
            if last_saved != Some(consumed)
                && (!guard.enabled || self.state.is_healthy(guard.max_abs_embed))
            {
                mgr.save(self, consumed)?;
            }
        }
        Ok((report, resume_outcome))
    }

    /// One learning-rate backoff step (guard recovery).
    fn backoff_lr(&mut self, guard: &GuardConfig, report: &mut InsLearnReport) {
        let backed = (self.cfg.learning_rate * guard.lr_backoff).max(guard.min_lr);
        if backed < self.cfg.learning_rate {
            self.cfg.learning_rate = backed;
            report.lr_backoffs += 1;
        }
    }

    /// The conventional (non-InsLearn) training baseline `SUPA_{w/o Ins}`:
    /// scans the whole edge set for `epochs` full passes with no batch
    /// validation or rollback (paper §IV-G3).
    pub fn train_conventional(&mut self, g: &Dmhg, edges: &[TemporalEdge], epochs: usize) -> f64 {
        self.resolve_time_scale(g);
        self.ensure_capacity(g.num_nodes());
        self.rebuild_negative_samplers(g);
        let mut last = 0.0;
        for _ in 0..epochs {
            last = self.train_pass(g, edges);
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SupaConfig;
    use supa_datasets::taobao;
    use supa_eval::Scorer;

    fn setup() -> (Supa, supa_datasets::Dataset, Dmhg) {
        let d = taobao(0.02, 11);
        let cfg = SupaConfig {
            dim: 16,
            ..SupaConfig::small()
        };
        let m = Supa::from_dataset(&d, cfg, 11).unwrap();
        let g = d.full_graph();
        (m, d, g)
    }

    #[test]
    fn inslearn_consumes_every_batch_once() {
        let (mut m, d, g) = setup();
        let n = 2100.min(d.edges.len());
        let cfg = InsLearnConfig {
            batch_size: 1000,
            n_iter: 4,
            valid_interval: 2,
            valid_size: 100,
            patience: 1,
            valid_candidates: 20,
        };
        let report = m.train_inslearn(&g, &d.edges[..n], &cfg);
        assert_eq!(report.batches, 3);
        assert!(report.iterations >= report.batches);
        assert!(report.validations >= 1);
        assert!(report.final_loss > 0.0);
    }

    #[test]
    fn inslearn_improves_scores_of_seen_pairs() {
        let (mut m, d, g) = setup();
        let n = 1500.min(d.edges.len());
        let probe = &d.edges[10];
        let before = m.score(probe.src, probe.dst, probe.relation);
        let cfg = InsLearnConfig {
            batch_size: 512,
            n_iter: 6,
            valid_interval: 3,
            valid_size: 60,
            patience: 2,
            valid_candidates: 20,
        };
        m.train_inslearn(&g, &d.edges[..n], &cfg);
        let after = m.score(probe.src, probe.dst, probe.relation);
        assert!(after > before, "{after} !< {before}");
    }

    #[test]
    fn early_stopping_respects_patience() {
        let (mut m, d, g) = setup();
        let n = 1000.min(d.edges.len());
        // Aggressive validation, zero patience: must early-stop quickly.
        let cfg = InsLearnConfig {
            batch_size: 1000,
            n_iter: 100,
            valid_interval: 1,
            valid_size: 100,
            patience: 0,
            valid_candidates: 20,
        };
        let report = m.train_inslearn(&g, &d.edges[..n], &cfg);
        assert!(
            report.iterations < 100,
            "ran all {} iterations despite patience 0",
            report.iterations
        );
    }

    #[test]
    fn tiny_batches_skip_validation_but_still_train() {
        let (mut m, d, g) = setup();
        let cfg = InsLearnConfig {
            batch_size: 4,
            n_iter: 10,
            valid_interval: 2,
            valid_size: 150,
            patience: 3,
            valid_candidates: 10,
        };
        let report = m.train_inslearn(&g, &d.edges[..12], &cfg);
        assert_eq!(report.batches, 3);
        assert_eq!(report.validations, 0);
        assert_eq!(report.iterations, 3, "one pass per unvalidatable batch");
    }

    #[test]
    fn empty_stream_is_a_noop() {
        let (mut m, _, g) = setup();
        let report = m.train_inslearn(&g, &[], &InsLearnConfig::default());
        assert_eq!(report, InsLearnReport::default());
    }

    #[test]
    fn conventional_training_runs_requested_epochs() {
        let (mut m, d, g) = setup();
        let loss = m.train_conventional(&g, &d.edges[..600], 2);
        assert!(loss > 0.0);
    }

    #[test]
    fn zero_config_values_are_sanitized_not_panics() {
        let (mut m, d, g) = setup();
        let cfg = InsLearnConfig {
            batch_size: 0,
            n_iter: 0,
            valid_interval: 0,
            ..InsLearnConfig::default()
        };
        // Would have been an assert! panic before; now clamps to 1.
        let report = m.train_inslearn(&g, &d.edges[..10], &cfg);
        assert_eq!(report.batches, 10);
    }

    #[test]
    fn guard_is_behaviour_neutral_on_healthy_runs() {
        let (mut a, d, g) = setup();
        let mut b = Supa::from_dataset(
            &d,
            SupaConfig {
                dim: 16,
                ..SupaConfig::small()
            },
            11,
        )
        .unwrap();
        let cfg = InsLearnConfig {
            batch_size: 512,
            n_iter: 4,
            valid_interval: 2,
            valid_size: 60,
            patience: 1,
            valid_candidates: 20,
        };
        let n = 1200.min(d.edges.len());
        let (ra, _) = a
            .train_inslearn_ft(&g, &d.edges[..n], &cfg, TrainOptions::default())
            .unwrap();
        let (rb, _) = b
            .train_inslearn_ft(
                &g,
                &d.edges[..n],
                &cfg,
                TrainOptions {
                    guard: GuardConfig::disabled(),
                    ..TrainOptions::default()
                },
            )
            .unwrap();
        assert_eq!(ra, rb, "guard must not perturb a healthy run");
        assert_eq!(ra.divergence_rollbacks, 0);
        assert_eq!(ra.lr_backoffs, 0);
        let e = d.edges[5];
        assert_eq!(
            a.gamma(e.src, e.dst, e.relation),
            b.gamma(e.src, e.dst, e.relation)
        );
    }

    #[test]
    fn nan_poisoned_iteration_is_rolled_back() {
        let (mut m, d, g) = setup();
        let cfg = InsLearnConfig {
            batch_size: 600,
            n_iter: 6,
            valid_interval: 2,
            valid_size: 60,
            patience: 3,
            valid_candidates: 20,
        };
        let mut poison = |model: &mut Supa, it: u64| {
            if it == 2 {
                model.state_mut_for_tests().h_long.row_mut(0)[0] = f32::NAN;
            }
        };
        let (report, _) = m
            .train_inslearn_ft(
                &g,
                &d.edges[..600],
                &cfg,
                TrainOptions {
                    iter_hook: Some(&mut poison),
                    ..TrainOptions::default()
                },
            )
            .unwrap();
        assert!(
            report.divergence_rollbacks >= 1,
            "poison was never detected: {report:?}"
        );
        assert!(report.lr_backoffs >= 1);
        assert!(
            m.state().is_healthy(1e6),
            "NaN survived into the final state"
        );
        assert!(report.final_loss.is_finite());
    }

    #[test]
    fn unguarded_poison_survives_to_prove_the_guard_matters() {
        let (mut m, d, g) = setup();
        let cfg = InsLearnConfig {
            batch_size: 600,
            n_iter: 4,
            valid_interval: 2,
            valid_size: 60,
            patience: 3,
            valid_candidates: 20,
        };
        // Poison a row the batch's own edges train, so the NaN spreads.
        let hot = d.edges[0].src.index();
        let mut poison = |model: &mut Supa, it: u64| {
            if it == 1 {
                for x in model.state_mut_for_tests().h_long.row_mut(hot) {
                    *x = f32::NAN;
                }
            }
        };
        let (report, _) = m
            .train_inslearn_ft(
                &g,
                &d.edges[..600],
                &cfg,
                TrainOptions {
                    guard: GuardConfig::disabled(),
                    iter_hook: Some(&mut poison),
                    ..TrainOptions::default()
                },
            )
            .unwrap();
        assert_eq!(report.divergence_rollbacks, 0);
        assert!(!m.state().is_healthy(1e6), "NaN should persist unguarded");
    }

    #[test]
    fn retry_budget_bounds_guard_recoveries_per_batch() {
        let (mut m, d, g) = setup();
        let cfg = InsLearnConfig {
            batch_size: 600,
            n_iter: 50,
            valid_interval: 2,
            valid_size: 60,
            patience: 10,
            valid_candidates: 20,
        };
        // Poison every iteration: the guard must give up after its budget
        // instead of spinning through all 50 iterations.
        let mut poison = |model: &mut Supa, _it: u64| {
            model.state_mut_for_tests().h_long.row_mut(0)[0] = f32::NAN;
        };
        let (report, _) = m
            .train_inslearn_ft(
                &g,
                &d.edges[..600],
                &cfg,
                TrainOptions {
                    guard: GuardConfig {
                        max_retries: 2,
                        ..GuardConfig::default()
                    },
                    iter_hook: Some(&mut poison),
                    ..TrainOptions::default()
                },
            )
            .unwrap();
        assert!(report.divergence_rollbacks <= 3, "{report:?}");
        assert!(m.state().is_healthy(1e6), "abandoned at a good state");
    }

    #[test]
    fn checkpoint_resume_skips_consumed_events() {
        let dir = std::env::temp_dir().join(format!("supa-ft-resume-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let (mut m, d, g) = setup();
        let cfg = InsLearnConfig {
            batch_size: 500,
            n_iter: 3,
            valid_interval: 2,
            valid_size: 60,
            patience: 2,
            valid_candidates: 20,
        };
        let edges = &d.edges[..1500];
        let mut mgr = CheckpointManager::new(&dir, 3).unwrap();
        let (first, _) = m
            .train_inslearn_ft(
                &g,
                edges,
                &cfg,
                TrainOptions {
                    checkpoints: Some(&mut mgr),
                    ..TrainOptions::default()
                },
            )
            .unwrap();
        assert_eq!(first.batches, 3);
        assert!(!mgr.list().unwrap().is_empty());

        // A "restarted process": fresh model, resume from disk. The final
        // checkpoint covers the whole stream, so training is a no-op.
        let mut m2 = Supa::from_dataset(
            &d,
            SupaConfig {
                dim: 16,
                ..SupaConfig::small()
            },
            77,
        )
        .unwrap();
        let (second, outcome) = m2
            .train_inslearn_ft(
                &g,
                edges,
                &cfg,
                TrainOptions {
                    checkpoints: Some(&mut mgr),
                    resume: true,
                    ..TrainOptions::default()
                },
            )
            .unwrap();
        assert!(second.resumed_from_checkpoint);
        assert_eq!(second.batches, 0, "everything was already consumed");
        let out = outcome.expect("resume outcome present");
        assert_eq!(out.loaded.as_ref().unwrap().1, 1500);
        let e = d.edges[5];
        assert_eq!(
            m.gamma(e.src, e.dst, e.relation),
            m2.gamma(e.src, e.dst, e.relation),
            "resumed model must equal the one that trained through"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
