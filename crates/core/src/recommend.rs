//! SUPA as a [`Recommender`]: Eq. 15 scoring plus the protocol hooks.
//!
//! `fit` resets the learnable state and runs InsLearn over the training
//! stream; `fit_incremental` continues InsLearn on the new edges only —
//! SUPA is a *dynamic* method in the paper's taxonomy.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use supa_embed::EmbeddingTable;
use supa_eval::{Recommender, Scorer};
use supa_graph::{Dmhg, NodeId, RelationId, TemporalEdge};

use crate::inslearn::InsLearnConfig;
use crate::model::{AdamScalar, Supa};

impl Supa {
    /// Replaces the InsLearn configuration used by [`Recommender::fit`].
    pub fn with_inslearn(mut self, cfg: InsLearnConfig) -> Self {
        self.inslearn_cfg = cfg;
        self
    }

    /// The InsLearn configuration in effect.
    pub fn inslearn_config(&self) -> &InsLearnConfig {
        &self.inslearn_cfg
    }

    /// Re-initialises all learnable state from the original seed (fresh
    /// random embeddings, reset Adam moments and α values).
    pub fn reset(&mut self) {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n = self.state.h_long.len();
        let dim = self.cfg.dim;
        let scale = self.cfg.init_scale;
        let wd = self.cfg.weight_decay;
        let mk = |rng: &mut SmallRng| EmbeddingTable::new(n, dim, scale, rng).with_weight_decay(wd);
        self.state.h_long = mk(&mut rng);
        self.state.h_short = mk(&mut rng);
        for t in &mut self.state.ctx {
            *t = mk(&mut rng);
        }
        for a in &mut self.state.alpha {
            *a = AdamScalar::new(self.cfg.alpha_init);
        }
        self.rng = rng;
        self.neg_samplers.iter_mut().for_each(|s| *s = None);
        self.sampler_stats.iter_mut().for_each(|s| *s = (0, 0.0));
    }
}

impl Scorer for Supa {
    fn score(&self, u: NodeId, v: NodeId, r: RelationId) -> f32 {
        self.gamma(u, v, r)
    }
}

impl Recommender for Supa {
    fn name(&self) -> &str {
        self.display_name()
    }

    fn fit(&mut self, g: &Dmhg, train: &[TemporalEdge]) {
        self.reset();
        let cfg = self.inslearn_cfg.clone();
        self.train_inslearn(g, train, &cfg);
    }

    fn fit_incremental(&mut self, g: &Dmhg, new_edges: &[TemporalEdge]) {
        let cfg = self.inslearn_cfg.clone();
        self.train_inslearn(g, new_edges, &cfg);
    }

    fn is_dynamic(&self) -> bool {
        true
    }

    fn embedding(&self, v: NodeId, r: RelationId) -> Option<Vec<f32>> {
        Some(self.final_embedding(v, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SupaConfig;
    use supa_datasets::taobao;
    use supa_eval::{link_prediction, EvalContext, RankingEvaluator, SplitRatios};

    #[test]
    fn reset_restores_initial_state() {
        let d = taobao(0.02, 21);
        let mut m = Supa::from_dataset(&d, SupaConfig::small(), 21).unwrap();
        let initial = m.state().h_long.row(0).to_vec();
        let g = d.full_graph();
        let mut m2 = m;
        m2.resolve_time_scale(&g);
        m2.rebuild_negative_samplers(&g);
        m2.train_pass(&g, &d.edges[..200]);
        m2.reset();
        assert_eq!(m2.state().h_long.row(0), initial.as_slice());
        m = m2;
        assert!(m.is_dynamic());
    }

    #[test]
    fn fit_is_reproducible() {
        let d = taobao(0.02, 22);
        let cfg = SupaConfig {
            dim: 16,
            ..SupaConfig::small()
        };
        let il = InsLearnConfig {
            n_iter: 3,
            valid_interval: 2,
            ..InsLearnConfig::fast()
        };
        let ctx = EvalContext::new(d.prototype.clone(), d.edges.clone());
        let ev = RankingEvaluator::sampled(30, 5);

        let mut a = Supa::from_dataset(&d, cfg.clone(), 9)
            .unwrap()
            .with_inslearn(il.clone());
        let ra = link_prediction(&ctx, &mut a, &ev, SplitRatios::default());
        let mut b = Supa::from_dataset(&d, cfg, 9).unwrap().with_inslearn(il);
        let rb = link_prediction(&ctx, &mut b, &ev, SplitRatios::default());
        assert_eq!(ra.metrics.mrr(), rb.metrics.mrr());
        assert_eq!(ra.metrics.hit50(), rb.metrics.hit50());
    }

    #[test]
    fn supa_beats_random_chance_on_link_prediction() {
        let d = taobao(0.02, 23);
        let cfg = SupaConfig {
            dim: 16,
            ..SupaConfig::small()
        };
        let il = InsLearnConfig {
            n_iter: 6,
            valid_interval: 3,
            ..InsLearnConfig::fast()
        };
        let mut m = Supa::from_dataset(&d, cfg, 23).unwrap().with_inslearn(il);
        let ctx = EvalContext::new(d.prototype.clone(), d.edges.clone());
        // 100-candidate sampled ranking: chance MRR ≈ Σ(1/r)/100 ≈ 0.05.
        let ev = RankingEvaluator::sampled(100, 3);
        let res = link_prediction(&ctx, &mut m, &ev, SplitRatios::default());
        assert!(
            res.metrics.mrr() > 0.10,
            "MRR {} not above chance",
            res.metrics.mrr()
        );
    }
}
