//! Per-edge training: the sample → update → propagate step.
//!
//! For each new edge `(u, v, r, t)` this module implements the full forward
//! pass (Eq. 5–12) and the hand-derived analytic gradients for every touched
//! parameter: the endpoints' long/short-term memories, the context
//! embeddings of the endpoints, influenced nodes and negatives, and the
//! node-type drift scalars `α_o`. Gradients are verified against central
//! finite differences in this module's tests.

use rand::RngExt;
use supa_graph::{Dmhg, TemporalEdge, Walk, WalkConfig};

use crate::decay::{filter, g_decay, g_decay_prime, log_sigmoid, sigmoid, sigmoid_prime};
use crate::model::Supa;

/// The three loss components of one event (Eq. 13).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EventLoss {
    /// Interaction loss `L_inter` (Eq. 7).
    pub inter: f64,
    /// Propagation loss `L_prop` (Eq. 10).
    pub prop: f64,
    /// Negative-sampling loss `L_neg` (Eq. 12).
    pub neg: f64,
}

impl EventLoss {
    /// `L = L_inter + L_prop + L_neg`.
    pub fn total(&self) -> f64 {
        self.inter + self.prop + self.neg
    }
}

/// The stochastic choices of one event, frozen so the loss/gradient
/// computation itself is deterministic (and finite-difference checkable).
#[derive(Debug, Clone)]
pub(crate) struct EventSample {
    pub walks_u: Vec<Walk>,
    pub walks_v: Vec<Walk>,
    /// Negative node ids contrasted against `h*_u`.
    pub negs_u: Vec<u32>,
    /// Negative node ids contrasted against `h*_v`.
    pub negs_v: Vec<u32>,
}

/// Which embedding table a gradient row belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Long,
    Short,
    /// `.1` carries the (already collapsed) context-table index.
    Ctx(usize),
}

/// Sparse gradient bundle for one event.
#[derive(Debug, Default)]
pub(crate) struct EventGrads {
    rows: Vec<(Kind, u32, Vec<f32>)>,
    alpha: Vec<(usize, f64)>,
}

impl EventGrads {
    /// Accumulates `scale · vec` into the (kind, node) row.
    fn add(&mut self, kind: Kind, node: u32, scale: f32, vec: &[f32]) {
        if scale == 0.0 {
            return;
        }
        for (k, n, g) in &mut self.rows {
            if *k == kind && *n == node {
                for (gi, &vi) in g.iter_mut().zip(vec) {
                    *gi += scale * vi;
                }
                return;
            }
        }
        let mut g = vec![0.0f32; vec.len()];
        for (gi, &vi) in g.iter_mut().zip(vec) {
            *gi = scale * vi;
        }
        self.rows.push((kind, node, g));
    }

    fn add_alpha(&mut self, idx: usize, grad: f64) {
        for (i, g) in &mut self.alpha {
            if *i == idx {
                *g += grad;
                return;
            }
        }
        self.alpha.push((idx, grad));
    }
}

/// The smallest float strictly greater than `x` (finite positives only).
#[inline]
fn f64_next_up(x: f64) -> f64 {
    f64::from_bits(x.to_bits() + 1)
}

/// Collects every node id whose embedding rows one event's gradient step can
/// read *or* write: the endpoints, every walk-step node, and every negative.
/// For SUPA the per-row read set equals the write set, so two events with
/// disjoint touched sets commute exactly (only the `α` drift scalars are
/// shared — the batched path handles those by freezing them per wave).
fn touched_nodes(e: &TemporalEdge, s: &EventSample, out: &mut Vec<u32>) {
    out.clear();
    out.push(e.src.0);
    out.push(e.dst.0);
    for walk in s.walks_u.iter().chain(&s.walks_v) {
        for step in &walk.steps {
            out.push(step.node.0);
        }
    }
    out.extend_from_slice(&s.negs_u);
    out.extend_from_slice(&s.negs_v);
}

impl Supa {
    /// Draws the event's stochastic choices: `k` walks per endpoint over the
    /// influenced graph (§III-B), and `N_neg` negatives per flow from the
    /// *counterpart* node type's `deg^{0.75}` distribution.
    ///
    /// Edges established up to and *including* `t` are walkable (the cutoff
    /// is the next float above `t`): simultaneous edges — in particular every
    /// edge of a static graph, where all timestamps coincide (§III-A) —
    /// belong to the influenced graph, while strictly-future edges never do.
    /// In streaming use the event edge itself is not yet inserted.
    pub(crate) fn sample_event(&mut self, g: &Dmhg, e: &TemporalEdge) -> EventSample {
        let cfg = WalkConfig {
            num_walks: self.cfg.num_walks,
            walk_length: self.cfg.walk_length,
            neighbor_cap: None,
            before: Some(f64_next_up(e.time)),
        };
        let walks_u = self.walker.sample_walks(g, e.src, &cfg, &mut self.rng);
        let walks_v = self.walker.sample_walks(g, e.dst, &cfg, &mut self.rng);
        let mut negs_u = Vec::new();
        let mut negs_v = Vec::new();
        if self.variant.use_neg {
            let ty_v = g.node_type(e.dst).index();
            let ty_u = g.node_type(e.src).index();
            if let Some(s) = &self.neg_samplers[ty_v] {
                s.sample_many(self.cfg.n_neg, e.dst.0, &mut self.rng, &mut negs_u);
            }
            if let Some(s) = &self.neg_samplers[ty_u] {
                s.sample_many(self.cfg.n_neg, e.src.0, &mut self.rng, &mut negs_v);
            }
        }
        EventSample {
            walks_u,
            walks_v,
            negs_u,
            negs_v,
        }
    }

    /// Deterministic loss + analytic gradients given frozen samples.
    pub(crate) fn grads_given_sample(
        &self,
        g: &Dmhg,
        e: &TemporalEdge,
        sample: &EventSample,
    ) -> (EventLoss, EventGrads) {
        let t = e.time;
        let r_ctx = self.ctx_idx(e.relation);
        let parts_u = self.target_parts(g, e.src, t);
        let parts_v = self.target_parts(g, e.dst, t);
        let dim = self.cfg.dim;

        let mut loss = EventLoss::default();
        let mut grads = EventGrads::default();
        let mut grad_hstar_u = vec![0.0f32; dim];
        let mut grad_hstar_v = vec![0.0f32; dim];

        // ---- interaction loss (Eq. 6–7) --------------------------------
        if self.variant.use_inter {
            let c_u = self.state.ctx[r_ctx].row(e.src.index());
            let c_v = self.state.ctx[r_ctx].row(e.dst.index());
            let hr_u: Vec<f32> = parts_u
                .hstar
                .iter()
                .zip(c_u)
                .map(|(&h, &c)| 0.5 * (h + c))
                .collect();
            let hr_v: Vec<f32> = parts_v
                .hstar
                .iter()
                .zip(c_v)
                .map(|(&h, &c)| 0.5 * (h + c))
                .collect();
            let s: f32 = hr_u.iter().zip(&hr_v).map(|(a, b)| a * b).sum();
            loss.inter = -log_sigmoid(s as f64);
            let ds = (sigmoid(s as f64) - 1.0) as f32;
            // ∂L/∂h*_u = ½·ds·h_v^r ; ∂L/∂c_u^r = ½·ds·h_v^r (and symmetric).
            for k in 0..dim {
                grad_hstar_u[k] += 0.5 * ds * hr_v[k];
                grad_hstar_v[k] += 0.5 * ds * hr_u[k];
            }
            grads.add(Kind::Ctx(r_ctx), e.src.0, 0.5 * ds, &hr_v);
            grads.add(Kind::Ctx(r_ctx), e.dst.0, 0.5 * ds, &hr_u);
        }

        // ---- propagation loss (Eq. 8–10) --------------------------------
        if self.variant.use_prop {
            for (walks, parts, grad_hstar) in [
                (&sample.walks_u, &parts_u, &mut grad_hstar_u),
                (&sample.walks_v, &parts_v, &mut grad_hstar_v),
            ] {
                for walk in walks.iter() {
                    let mut a = 1.0f64; // cumulative attenuation along the path
                    for step in &walk.steps {
                        if !self.variant.no_decay {
                            let de = ((t - step.edge_time) / self.time_scale).max(0.0);
                            a *= filter(de, self.cfg.tau) * g_decay(de);
                            if a <= 0.0 {
                                break; // termination: flow stops at outdated edges
                            }
                        }
                        let z_ctx = self.ctx_idx(step.relation);
                        let c_z = self.state.ctx[z_ctx].row(step.node.index());
                        let dot: f32 = c_z.iter().zip(&parts.hstar).map(|(a, b)| a * b).sum();
                        let s = a * dot as f64; // c_z · d where d = a·h*
                        loss.prop += -log_sigmoid(s);
                        let coef = ((sigmoid(s) - 1.0) * a) as f32;
                        grads.add(Kind::Ctx(z_ctx), step.node.0, coef, &parts.hstar);
                        for k in 0..dim {
                            grad_hstar[k] += coef * c_z[k];
                        }
                    }
                }
            }
        }

        // ---- negative-sampling loss (Eq. 12) ----------------------------
        if self.variant.use_neg {
            for (negs, parts, grad_hstar, positive) in [
                (&sample.negs_u, &parts_u, &mut grad_hstar_u, e.dst.0),
                (&sample.negs_v, &parts_v, &mut grad_hstar_v, e.src.0),
            ] {
                for &i in negs.iter() {
                    if i == positive {
                        // A tiny universe can collide the negative with the
                        // true counterpart; skip rather than fight L_inter.
                        continue;
                    }
                    let c_i = self.state.ctx[r_ctx].row(i as usize);
                    let s: f32 = c_i.iter().zip(&parts.hstar).map(|(a, b)| a * b).sum();
                    loss.neg += -log_sigmoid(-s as f64);
                    let coef = sigmoid(s as f64) as f32;
                    grads.add(Kind::Ctx(r_ctx), i, coef, &parts.hstar);
                    for k in 0..dim {
                        grad_hstar[k] += coef * c_i[k];
                    }
                }
            }
        }

        // ---- backprop h* → (h^L, h^S, α) (Eq. 5) -------------------------
        for (node, parts, grad_hstar) in [
            (e.src, &parts_u, &grad_hstar_u),
            (e.dst, &parts_v, &grad_hstar_v),
        ] {
            grads.add(Kind::Long, node.0, 1.0, grad_hstar);
            if !self.variant.no_forget {
                grads.add(Kind::Short, node.0, parts.forget as f32, grad_hstar);
                // ∂L/∂α = (∂L/∂h*)·h^S · g'(x)·Δ·σ'(α)
                let hs = self.state.h_short.row(node.index());
                let dot: f64 = grad_hstar
                    .iter()
                    .zip(hs)
                    .map(|(&g, &h)| (g * h) as f64)
                    .sum();
                let alpha_val = self.state.alpha[parts.alpha_idx].value;
                let dalpha = dot * g_decay_prime(parts.x) * parts.delta * sigmoid_prime(alpha_val);
                grads.add_alpha(parts.alpha_idx, dalpha);
            }
        }

        (loss, grads)
    }

    /// Applies a gradient bundle with per-row Adam (and Adam on the `α`s).
    pub(crate) fn apply_grads(&mut self, grads: &EventGrads) {
        let lr = self.cfg.learning_rate;
        if let Some(log) = &mut self.touch_log {
            log.extend(grads.rows.iter().map(|(_, node, _)| *node));
        }
        for (kind, node, g) in &grads.rows {
            let node = *node as usize;
            match kind {
                Kind::Long => self.state.h_long.adam_step_row(node, g, lr),
                Kind::Short => self.state.h_short.adam_step_row(node, g, lr),
                Kind::Ctx(i) => self.state.ctx[*i].adam_step_row(node, g, lr),
            }
        }
        for (idx, g) in &grads.alpha {
            self.state.alpha[*idx].step(*g, lr as f64);
        }
    }

    /// One full SUPA training step on a new edge (the graph must already
    /// contain the event's past; edges at `time ≥ e.time` are never walked).
    pub fn train_edge(&mut self, g: &Dmhg, e: &TemporalEdge) -> EventLoss {
        self.ensure_capacity(g.num_nodes());
        if self.variant.use_neg && self.neg_samplers.iter().all(Option::is_none) {
            self.rebuild_negative_samplers(g);
        }
        let sample = self.sample_event(g, e);
        let (loss, grads) = self.grads_given_sample(g, e, &sample);
        self.apply_grads(&grads);
        loss
    }

    /// Evaluation-only loss of an edge (no parameter updates); used by the
    /// tests and by diagnostics.
    pub fn edge_loss(&mut self, g: &Dmhg, e: &TemporalEdge) -> EventLoss {
        self.ensure_capacity(g.num_nodes());
        if self.variant.use_neg && self.neg_samplers.iter().all(Option::is_none) {
            self.rebuild_negative_samplers(g);
        }
        let sample = self.sample_event(g, e);
        self.grads_given_sample(g, e, &sample).0
    }

    /// Convenience: train an entire (time-sorted) edge slice once, returning
    /// the mean total loss. Shuffles nothing — the stream order *is* the
    /// curriculum.
    ///
    /// With [`Supa::set_workers`] > 1 this dispatches to
    /// [`Supa::train_pass_batched`]; the default (`workers = 1`) is the
    /// exact serial per-event loop.
    pub fn train_pass(&mut self, g: &Dmhg, edges: &[TemporalEdge]) -> f64 {
        if self.workers > 1 {
            return self.train_pass_batched(g, edges, self.workers);
        }
        if edges.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for e in edges {
            total += self.train_edge(g, e).total();
        }
        total / edges.len() as f64
    }

    /// Conflict-aware event micro-batching: trains `edges` with gradient
    /// computation fanned out across `workers` threads while preserving the
    /// stream curriculum.
    ///
    /// How it stays deterministic (and faithful):
    ///
    /// 1. **Sampling is serial.** Every event's walks and negatives are drawn
    ///    up front in stream order; sampling reads no embedding state, so the
    ///    RNG stream is *identical* to the serial path's.
    /// 2. **Waves are contiguous.** A wave is the maximal run of consecutive
    ///    events whose touched-node sets (endpoints ∪ walk steps ∪
    ///    negatives) are pairwise disjoint. Within a wave the events' sparse
    ///    row reads/writes land on disjoint rows, so their updates commute
    ///    exactly; across waves, stream order (and thus event causality) is
    ///    preserved.
    /// 3. **Gradients are pure reads** against the frozen pre-wave state and
    ///    are reassembled in input order by [`supa_par::WorkerPool::map`], so
    ///    the result does not depend on thread scheduling.
    /// 4. **Application is serial**, in event order — per-row Adam, the `α`
    ///    drift scalars, and the touch log all see the serial order.
    ///
    /// `workers ≤ 1` falls back to the per-event loop and is bit-identical
    /// to [`Supa::train_pass`] with `workers = 1`. Any `workers ≥ 2` yields
    /// one deterministic result, independent of the actual worker count; it
    /// can differ from the serial result only in that the `α` scalars are
    /// frozen per wave instead of per event.
    pub fn train_pass_batched(&mut self, g: &Dmhg, edges: &[TemporalEdge], workers: usize) -> f64 {
        let workers = supa_par::effective_workers(workers).max(1);
        if edges.is_empty() {
            return 0.0;
        }
        if workers <= 1 {
            let mut total = 0.0;
            for e in edges {
                total += self.train_edge(g, e).total();
            }
            return total / edges.len() as f64;
        }

        // Preamble, once per pass (equivalent to `train_edge`'s per-event
        // preamble: capacity depends only on the graph, and the sampler
        // rebuild only triggers when all samplers are absent).
        self.ensure_capacity(g.num_nodes());
        if self.variant.use_neg && self.neg_samplers.iter().all(Option::is_none) {
            self.rebuild_negative_samplers(g);
        }

        // Phase 1 — draw all stochastic choices serially, in stream order.
        let samples: Vec<EventSample> = edges.iter().map(|e| self.sample_event(g, e)).collect();

        let pool = supa_par::WorkerPool::new(workers);
        let mut total = 0.0;
        let mut occupied: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut nodes: Vec<u32> = Vec::new();
        let mut start = 0usize;
        while start < edges.len() {
            // Phase 2 — extend the wave while touched sets stay disjoint.
            occupied.clear();
            let mut end = start;
            while end < edges.len() {
                touched_nodes(&edges[end], &samples[end], &mut nodes);
                if end > start && nodes.iter().any(|n| occupied.contains(n)) {
                    break;
                }
                occupied.extend(nodes.iter().copied());
                end += 1;
            }

            // Phase 3 — parallel pure-read gradients against frozen state.
            let wave_edges = &edges[start..end];
            let wave_samples = &samples[start..end];
            let results = {
                let this: &Supa = self;
                pool.map(wave_samples, |k, s| {
                    this.grads_given_sample(g, &wave_edges[k], s)
                })
            };

            // Phase 4 — serial, in-order application.
            for (loss, grads) in &results {
                total += loss.total();
                self.apply_grads(grads);
            }
            start = end;
        }
        total / edges.len() as f64
    }

    /// Exposes the internal RNG for protocol-level sampling decisions.
    pub(crate) fn rng_u64(&mut self) -> u64 {
        self.rng.random()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SupaConfig;
    use crate::variants::SupaVariant;
    use supa_graph::{GraphSchema, MetapathSchema, NodeId, RelationId, RelationSet};

    /// A tiny deterministic fixture: one user, three items, two relations.
    struct Fix {
        g: Dmhg,
        u0: NodeId,
        i2: NodeId,
        r0: RelationId,
        metapaths: Vec<MetapathSchema>,
        schema: GraphSchema,
    }

    fn fixture() -> Fix {
        let mut s = GraphSchema::new();
        let user = s.add_node_type("User");
        let item = s.add_node_type("Item");
        let r0 = s.add_relation("R0", user, item);
        let _r1 = s.add_relation("R1", user, item);
        let mut g = Dmhg::new(s.clone());
        let u0 = g.add_node(user);
        let u1 = g.add_node(user);
        let i0 = g.add_node(item);
        let i1 = g.add_node(item);
        let i2 = g.add_node(item);
        g.add_edge(u0, i0, r0, 1.0).unwrap();
        g.add_edge(u0, i1, r0, 2.0).unwrap();
        g.add_edge(u1, i0, r0, 3.0).unwrap();
        let rels = RelationSet::single(r0);
        let metapaths =
            vec![MetapathSchema::new(vec![user, item, user], vec![rels, rels]).unwrap()];
        Fix {
            g,
            u0,
            i2,
            r0,
            metapaths,
            schema: s,
        }
    }

    fn small_cfg() -> SupaConfig {
        SupaConfig {
            dim: 6,
            num_walks: 2,
            walk_length: 3,
            n_neg: 2,
            time_scale: 1.0,
            weight_decay: 0.0, // keep FD checks clean
            ..SupaConfig::small()
        }
    }

    fn model(f: &Fix, variant: SupaVariant) -> Supa {
        let mut m = Supa::new(
            &f.schema,
            f.g.num_nodes(),
            f.metapaths.clone(),
            small_cfg(),
            variant,
            99,
        )
        .unwrap();
        m.rebuild_negative_samplers(&f.g);
        m
    }

    #[test]
    fn losses_are_positive_and_respect_variant_flags() {
        let f = fixture();
        let e = TemporalEdge::new(f.u0, f.i2, f.r0, 10.0);
        let mut m = model(&f, SupaVariant::full());
        let l = m.edge_loss(&f.g, &e);
        assert!(l.inter > 0.0 && l.prop > 0.0 && l.neg > 0.0);
        assert!(l.total() > l.inter);

        let mut m = model(&f, SupaVariant::losses(true, false, false));
        let l = m.edge_loss(&f.g, &e);
        assert!(l.inter > 0.0);
        assert_eq!(l.prop, 0.0);
        assert_eq!(l.neg, 0.0);
    }

    #[test]
    fn training_reduces_the_event_loss() {
        let f = fixture();
        let e = TemporalEdge::new(f.u0, f.i2, f.r0, 10.0);
        let mut m = model(&f, SupaVariant::full());
        let before = m.edge_loss(&f.g, &e).total();
        for _ in 0..60 {
            m.train_edge(&f.g, &e);
        }
        let after = m.edge_loss(&f.g, &e).total();
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn training_raises_the_pair_score() {
        let f = fixture();
        let e = TemporalEdge::new(f.u0, f.i2, f.r0, 10.0);
        let mut m = model(&f, SupaVariant::full());
        let before = m.gamma(f.u0, f.i2, f.r0);
        for _ in 0..80 {
            m.train_edge(&f.g, &e);
        }
        assert!(m.gamma(f.u0, f.i2, f.r0) > before);
    }

    /// Central finite differences against the analytic gradients for every
    /// parameter class, under the full variant.
    #[test]
    fn analytic_gradients_match_finite_differences() {
        let f = fixture();
        let e = TemporalEdge::new(f.u0, f.i2, f.r0, 10.0);
        let mut m = model(&f, SupaVariant::full());
        let sample = m.sample_event(&f.g, &e);
        let (_, grads) = m.grads_given_sample(&f.g, &e, &sample);

        let eps = 5e-3f32;
        let tol = 3e-2f64;
        // Gather analytic gradients into a lookup.
        let find = |kind: Kind, node: u32| -> Option<&Vec<f32>> {
            grads
                .rows
                .iter()
                .find(|(k, n, _)| *k == kind && *n == node)
                .map(|(_, _, g)| g)
        };

        // Check h^L, h^S of u0, and c^{r0} of i2 (the interactive item).
        for (kind, node) in [
            (Kind::Long, f.u0.0),
            (Kind::Short, f.u0.0),
            (Kind::Ctx(0), f.i2.0),
            (Kind::Long, f.i2.0),
        ] {
            let analytic = find(kind, node).cloned().unwrap_or_default();
            for k in 0..m.cfg.dim {
                let bump = |m: &mut Supa, delta: f32| match kind {
                    Kind::Long => m.state.h_long.row_mut(node as usize)[k] += delta,
                    Kind::Short => m.state.h_short.row_mut(node as usize)[k] += delta,
                    Kind::Ctx(i) => m.state.ctx[i].row_mut(node as usize)[k] += delta,
                };
                bump(&mut m, eps);
                let up = m.grads_given_sample(&f.g, &e, &sample).0.total();
                bump(&mut m, -2.0 * eps);
                let down = m.grads_given_sample(&f.g, &e, &sample).0.total();
                bump(&mut m, eps);
                let numeric = (up - down) / (2.0 * eps as f64);
                let a = analytic.get(k).copied().unwrap_or(0.0) as f64;
                let denom = a.abs().max(numeric.abs()).max(1.0);
                assert!(
                    ((a - numeric) / denom).abs() < tol,
                    "{kind:?} node {node} dim {k}: analytic {a} vs numeric {numeric}"
                );
            }
        }

        // Check α for the user type.
        let alpha_idx = 0usize;
        let analytic_alpha = grads
            .alpha
            .iter()
            .find(|(i, _)| *i == alpha_idx)
            .map(|(_, g)| *g)
            .unwrap_or(0.0);
        let eps_a = 1e-4f64;
        m.state.alpha[alpha_idx].value += eps_a;
        let up = m.grads_given_sample(&f.g, &e, &sample).0.total();
        m.state.alpha[alpha_idx].value -= 2.0 * eps_a;
        let down = m.grads_given_sample(&f.g, &e, &sample).0.total();
        m.state.alpha[alpha_idx].value += eps_a;
        let numeric = (up - down) / (2.0 * eps_a);
        let denom = analytic_alpha.abs().max(numeric.abs()).max(1e-3);
        assert!(
            ((analytic_alpha - numeric) / denom).abs() < 0.05,
            "α: analytic {analytic_alpha} vs numeric {numeric}"
        );
    }

    #[test]
    fn no_decay_variant_ignores_edge_age() {
        let f = fixture();
        // An event so late that every walked edge is outdated (Δ ≫ τ).
        let e = TemporalEdge::new(f.u0, f.i2, f.r0, 1.0e6);
        let mut full = model(&f, SupaVariant::full());
        let mut nd = model(&f, SupaVariant::nd());
        let lf = full.edge_loss(&f.g, &e);
        let lnd = nd.edge_loss(&f.g, &e);
        // Full SUPA terminates all flows (τ ≈ 25 in scaled units) → no prop
        // loss; SUPA_nd keeps propagating.
        assert_eq!(lf.prop, 0.0, "termination filter must stop stale flows");
        assert!(lnd.prop > 0.0);
    }

    #[test]
    fn negatives_are_never_the_positive_node() {
        let f = fixture();
        let e = TemporalEdge::new(f.u0, f.i2, f.r0, 10.0);
        let mut m = model(&f, SupaVariant::full());
        for _ in 0..50 {
            let s = m.sample_event(&f.g, &e);
            // With three items the sampler can always exclude the positive;
            // the two-user universe may collide (handled by the loss skip).
            assert!(s.negs_u.iter().all(|&i| i != f.i2.0));
            // Counterpart typing: negs_u are items (ids ≥ 2 in this fixture).
            assert!(s.negs_u.iter().all(|&i| i >= 2));
            assert!(s.negs_v.iter().all(|&i| i < 2));
        }
    }

    #[test]
    fn train_pass_returns_mean_loss() {
        let f = fixture();
        let mut m = model(&f, SupaVariant::full());
        let edges = vec![
            TemporalEdge::new(f.u0, f.i2, f.r0, 10.0),
            TemporalEdge::new(f.u0, f.i2, f.r0, 11.0),
        ];
        let mean = m.train_pass(&f.g, &edges);
        assert!(mean > 0.0);
        assert_eq!(m.train_pass(&f.g, &[]), 0.0);
    }

    #[test]
    fn touch_tracking_logs_updated_rows() {
        let f = fixture();
        let e = TemporalEdge::new(f.u0, f.i2, f.r0, 10.0);
        let mut m = model(&f, SupaVariant::full());
        // Disabled by default: training logs nothing.
        m.train_edge(&f.g, &e);
        assert!(m.take_touched().is_empty());
        m.enable_touch_tracking();
        m.train_edge(&f.g, &e);
        let touched = m.take_touched();
        // Both endpoints receive gradients; the log is sorted and deduped.
        assert!(touched.contains(&f.u0.0));
        assert!(touched.contains(&f.i2.0));
        assert!(touched.windows(2).all(|w| w[0] < w[1]));
        // Drained: a second take is empty until more training happens.
        assert!(m.take_touched().is_empty());
        m.train_edge(&f.g, &e);
        assert!(!m.take_touched().is_empty());
    }

    #[test]
    fn grad_accumulator_merges_duplicate_rows() {
        let mut g = EventGrads::default();
        g.add(Kind::Long, 3, 1.0, &[1.0, 2.0]);
        g.add(Kind::Long, 3, 0.5, &[2.0, 2.0]);
        g.add(Kind::Short, 3, 1.0, &[1.0, 1.0]);
        assert_eq!(g.rows.len(), 2);
        assert_eq!(g.rows[0].2, vec![2.0, 3.0]);
        g.add_alpha(0, 1.0);
        g.add_alpha(0, 0.25);
        g.add_alpha(1, 3.0);
        assert_eq!(g.alpha, vec![(0, 1.25), (1, 3.0)]);
    }
}
