//! Per-edge training: the sample → update → propagate step.
//!
//! For each new edge `(u, v, r, t)` this module implements the full forward
//! pass (Eq. 5–12) and the hand-derived analytic gradients for every touched
//! parameter: the endpoints' long/short-term memories, the context
//! embeddings of the endpoints, influenced nodes and negatives, and the
//! node-type drift scalars `α_o`. Gradients are verified against central
//! finite differences in this module's tests.
//!
//! The whole step runs on reusable buffers from [`crate::scratch`]: walks
//! land in a flat [`supa_graph::FlatWalks`] arena, negatives in a flat pool,
//! and gradients in pooled rows — once warm, training one event allocates
//! nothing (enforced by `tests/alloc.rs` with a counting global allocator).

use rand::RngExt;
use supa_graph::{Dmhg, TemporalEdge, WalkConfig};

use crate::decay::{filter, g_decay, g_decay_prime, log_sigmoid, sigmoid, sigmoid_prime};
use crate::model::Supa;
use crate::scratch::{touched_nodes, GradScratch, SampleArena};

/// The three loss components of one event (Eq. 13).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EventLoss {
    /// Interaction loss `L_inter` (Eq. 7).
    pub inter: f64,
    /// Propagation loss `L_prop` (Eq. 10).
    pub prop: f64,
    /// Negative-sampling loss `L_neg` (Eq. 12).
    pub neg: f64,
}

impl EventLoss {
    /// `L = L_inter + L_prop + L_neg`.
    pub fn total(&self) -> f64 {
        self.inter + self.prop + self.neg
    }
}

/// Which embedding table a gradient row belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    Long,
    Short,
    /// `.0` carries the (already collapsed) context-table index.
    Ctx(usize),
}

/// One pooled gradient row: its key plus a grad buffer that keeps its
/// allocation across events.
#[derive(Debug, Default)]
struct GradRow {
    kind: Option<(Kind, u32)>,
    grad: Vec<f32>,
}

/// Sparse gradient bundle for one event. Rows are pooled: [`EventGrads::clear`]
/// resets the live count without dropping any buffer, and
/// [`EventGrads::prepare`] pre-allocates the per-event worst case so the
/// warm path never grows.
#[derive(Debug, Default)]
pub(crate) struct EventGrads {
    rows: Vec<GradRow>,
    live: usize,
    alpha: Vec<(usize, f64)>,
}

impl EventGrads {
    /// Accumulates `scale · vec` into the (kind, node) row.
    pub(crate) fn add(&mut self, kind: Kind, node: u32, scale: f32, vec: &[f32]) {
        if scale == 0.0 {
            return;
        }
        for row in &mut self.rows[..self.live] {
            if row.kind == Some((kind, node)) {
                for (gi, &vi) in row.grad.iter_mut().zip(vec) {
                    *gi += scale * vi;
                }
                return;
            }
        }
        if self.live == self.rows.len() {
            self.rows.push(GradRow::default());
        }
        let row = &mut self.rows[self.live];
        self.live += 1;
        row.kind = Some((kind, node));
        row.grad.clear();
        row.grad.extend(vec.iter().map(|&vi| scale * vi));
    }

    pub(crate) fn add_alpha(&mut self, idx: usize, grad: f64) {
        for (i, g) in &mut self.alpha {
            if *i == idx {
                *g += grad;
                return;
            }
        }
        self.alpha.push((idx, grad));
    }

    /// Drops the event's rows, keeping every allocation warm.
    pub(crate) fn clear(&mut self) {
        self.live = 0;
        self.alpha.clear();
    }

    /// The live rows, in insertion order.
    pub(crate) fn iter_rows(&self) -> impl Iterator<Item = (Kind, u32, &[f32])> {
        self.rows[..self.live].iter().map(|r| {
            let (kind, node) = r.kind.expect("live row always has a key");
            (kind, node, r.grad.as_slice())
        })
    }

    /// The `α` gradients, in insertion order.
    pub(crate) fn alpha(&self) -> &[(usize, f64)] {
        &self.alpha
    }

    /// Pre-allocates `rows` pooled rows of `dim` capacity (plus the two
    /// possible `α` slots) so `add` never allocates once warm.
    pub(crate) fn prepare(&mut self, rows: usize, dim: usize) {
        if self.rows.len() < rows {
            self.rows.reserve(rows - self.rows.len());
            while self.rows.len() < rows {
                self.rows.push(GradRow {
                    kind: None,
                    grad: Vec::with_capacity(dim),
                });
            }
        }
        self.alpha.reserve(2);
    }
}

/// The smallest float strictly greater than `x` (finite positives only).
#[inline]
fn f64_next_up(x: f64) -> f64 {
    f64::from_bits(x.to_bits() + 1)
}

/// Below this many events per worker a wave is processed inline: spawning
/// scoped threads costs tens of microseconds, which only pays off when each
/// worker gets a meaningful slice of gradient work.
const MIN_EVENTS_PER_WORKER: usize = 8;

impl Supa {
    /// Draws one event's stochastic choices into `arena`: `k` walks per
    /// endpoint over the influenced graph (§III-B), and `N_neg` negatives
    /// per flow from the *counterpart* node type's `deg^{0.75}` distribution.
    /// Returns the event's index within the arena.
    ///
    /// Edges established up to and *including* `t` are walkable (the cutoff
    /// is the next float above `t`): simultaneous edges — in particular every
    /// edge of a static graph, where all timestamps coincide (§III-A) —
    /// belong to the influenced graph, while strictly-future edges never do.
    /// In streaming use the event edge itself is not yet inserted.
    ///
    /// The RNG draw sequence is identical for any arena state, so batching
    /// many events into one arena samples exactly what per-event arenas
    /// would.
    pub(crate) fn sample_event_into(
        &mut self,
        g: &Dmhg,
        e: &TemporalEdge,
        arena: &mut SampleArena,
        neg_tmp: &mut Vec<u32>,
    ) -> usize {
        let cfg = WalkConfig {
            num_walks: self.cfg.num_walks,
            walk_length: self.cfg.walk_length,
            neighbor_cap: None,
            before: Some(f64_next_up(e.time)),
        };
        let w0 = arena.walks.num_walks() as u32;
        let nu = self
            .walker
            .sample_walks_into(g, e.src, &cfg, &mut self.rng, &mut arena.walks)
            as u32;
        let nv = self
            .walker
            .sample_walks_into(g, e.dst, &cfg, &mut self.rng, &mut arena.walks)
            as u32;
        let n0 = arena.negs.len() as u32;
        let mut n1 = n0;
        let mut n2 = n0;
        if self.variant.use_neg {
            let ty_v = g.node_type(e.dst).index();
            let ty_u = g.node_type(e.src).index();
            if let Some(s) = &self.neg_samplers[ty_v] {
                s.sample_many(self.cfg.n_neg, e.dst.0, &mut self.rng, neg_tmp);
                arena.negs.extend_from_slice(neg_tmp);
            }
            n1 = arena.negs.len() as u32;
            if let Some(s) = &self.neg_samplers[ty_u] {
                s.sample_many(self.cfg.n_neg, e.src.0, &mut self.rng, neg_tmp);
                arena.negs.extend_from_slice(neg_tmp);
            }
            n2 = arena.negs.len() as u32;
        }
        arena.events.push(crate::scratch::SampleMeta {
            walks_u: (w0, w0 + nu),
            walks_v: (w0 + nu, w0 + nu + nv),
            negs_u: (n0, n1),
            negs_v: (n1, n2),
        });
        arena.events.len() - 1
    }

    /// Deterministic loss + analytic gradients for event `idx` of the arena,
    /// computed into `ws` (a pure read of the model, so waves of events can
    /// run this concurrently against frozen state). `ws.grads` holds the
    /// result; all other `ws` buffers are intermediates.
    pub(crate) fn grads_into(
        &self,
        g: &Dmhg,
        e: &TemporalEdge,
        arena: &SampleArena,
        idx: usize,
        ws: &mut GradScratch,
    ) -> EventLoss {
        let t = e.time;
        let r_ctx = self.ctx_idx(e.relation);
        let meta_u = self.target_parts_into(g, e.src, t, &mut ws.hstar_u);
        let meta_v = self.target_parts_into(g, e.dst, t, &mut ws.hstar_v);
        let dim = self.cfg.dim;

        let mut loss = EventLoss::default();
        ws.grads.clear();
        ws.grad_hstar_u.clear();
        ws.grad_hstar_u.resize(dim, 0.0);
        ws.grad_hstar_v.clear();
        ws.grad_hstar_v.resize(dim, 0.0);

        // ---- interaction loss (Eq. 6–7) --------------------------------
        if self.variant.use_inter {
            let c_u = self.state.ctx[r_ctx].row(e.src.index());
            let c_v = self.state.ctx[r_ctx].row(e.dst.index());
            ws.hr_u.clear();
            ws.hr_u
                .extend(ws.hstar_u.iter().zip(c_u).map(|(&h, &c)| 0.5 * (h + c)));
            ws.hr_v.clear();
            ws.hr_v
                .extend(ws.hstar_v.iter().zip(c_v).map(|(&h, &c)| 0.5 * (h + c)));
            let s: f32 = ws.hr_u.iter().zip(&ws.hr_v).map(|(a, b)| a * b).sum();
            loss.inter = -log_sigmoid(s as f64);
            let ds = (sigmoid(s as f64) - 1.0) as f32;
            // ∂L/∂h*_u = ½·ds·h_v^r ; ∂L/∂c_u^r = ½·ds·h_v^r (and symmetric).
            for k in 0..dim {
                ws.grad_hstar_u[k] += 0.5 * ds * ws.hr_v[k];
                ws.grad_hstar_v[k] += 0.5 * ds * ws.hr_u[k];
            }
            ws.grads.add(Kind::Ctx(r_ctx), e.src.0, 0.5 * ds, &ws.hr_v);
            ws.grads.add(Kind::Ctx(r_ctx), e.dst.0, 0.5 * ds, &ws.hr_u);
        }

        let m = arena.events[idx];

        // ---- propagation loss (Eq. 8–10) --------------------------------
        if self.variant.use_prop {
            let grads = &mut ws.grads;
            for (range, hstar, grad_hstar) in [
                (m.walks_u, &ws.hstar_u, &mut ws.grad_hstar_u),
                (m.walks_v, &ws.hstar_v, &mut ws.grad_hstar_v),
            ] {
                for steps in arena.walk_steps(range) {
                    let mut a = 1.0f64; // cumulative attenuation along the path
                    for step in steps {
                        if !self.variant.no_decay {
                            let de = ((t - step.edge_time) / self.time_scale).max(0.0);
                            a *= filter(de, self.cfg.tau) * g_decay(de);
                            if a <= 0.0 {
                                break; // termination: flow stops at outdated edges
                            }
                        }
                        let z_ctx = self.ctx_idx(step.relation);
                        let c_z = self.state.ctx[z_ctx].row(step.node.index());
                        let dot: f32 = c_z.iter().zip(hstar.iter()).map(|(a, b)| a * b).sum();
                        let s = a * dot as f64; // c_z · d where d = a·h*
                        loss.prop += -log_sigmoid(s);
                        let coef = ((sigmoid(s) - 1.0) * a) as f32;
                        grads.add(Kind::Ctx(z_ctx), step.node.0, coef, hstar);
                        for k in 0..dim {
                            grad_hstar[k] += coef * c_z[k];
                        }
                    }
                }
            }
        }

        // ---- negative-sampling loss (Eq. 12) ----------------------------
        if self.variant.use_neg {
            let grads = &mut ws.grads;
            for (negs, hstar, grad_hstar, positive) in [
                (
                    arena.negs_u(idx),
                    &ws.hstar_u,
                    &mut ws.grad_hstar_u,
                    e.dst.0,
                ),
                (
                    arena.negs_v(idx),
                    &ws.hstar_v,
                    &mut ws.grad_hstar_v,
                    e.src.0,
                ),
            ] {
                for &i in negs {
                    if i == positive {
                        // A tiny universe can collide the negative with the
                        // true counterpart; skip rather than fight L_inter.
                        continue;
                    }
                    let c_i = self.state.ctx[r_ctx].row(i as usize);
                    let s: f32 = c_i.iter().zip(hstar.iter()).map(|(a, b)| a * b).sum();
                    loss.neg += -log_sigmoid(-s as f64);
                    let coef = sigmoid(s as f64) as f32;
                    grads.add(Kind::Ctx(r_ctx), i, coef, hstar);
                    for k in 0..dim {
                        grad_hstar[k] += coef * c_i[k];
                    }
                }
            }
        }

        // ---- backprop h* → (h^L, h^S, α) (Eq. 5) -------------------------
        for (node, meta, grad_hstar) in [
            (e.src, meta_u, &ws.grad_hstar_u),
            (e.dst, meta_v, &ws.grad_hstar_v),
        ] {
            ws.grads.add(Kind::Long, node.0, 1.0, grad_hstar);
            if !self.variant.no_forget {
                ws.grads
                    .add(Kind::Short, node.0, meta.forget as f32, grad_hstar);
                // ∂L/∂α = (∂L/∂h*)·h^S · g'(x)·Δ·σ'(α)
                let hs = self.state.h_short.row(node.index());
                let dot: f64 = grad_hstar
                    .iter()
                    .zip(hs)
                    .map(|(&g, &h)| (g * h) as f64)
                    .sum();
                let alpha_val = self.state.alpha[meta.alpha_idx].value;
                let dalpha = dot * g_decay_prime(meta.x) * meta.delta * sigmoid_prime(alpha_val);
                ws.grads.add_alpha(meta.alpha_idx, dalpha);
            }
        }

        loss
    }

    /// Applies a gradient bundle with per-row Adam (and Adam on the `α`s).
    ///
    /// The event's importance weight scales the *learning rate*, not the
    /// gradient: Adam's `m̂/√v̂` step is invariant to gradient scale, so an
    /// lr scale is the only knob that actually applies `w×` the update mass
    /// (the basis of sample-1-in-k shedding's unbiased reweighting). With
    /// the default weight of exactly `1.0` the product is bit-identical to
    /// the unweighted rate.
    pub(crate) fn apply_grads(&mut self, grads: &EventGrads) {
        let lr = self.cfg.learning_rate * self.event_weight;
        if let Some(log) = &mut self.touch_log {
            log.extend(grads.iter_rows().map(|(_, node, _)| node));
        }
        for (kind, node, g) in grads.iter_rows() {
            let node = node as usize;
            match kind {
                Kind::Long => self.state.h_long.adam_step_row(node, g, lr),
                Kind::Short => self.state.h_short.adam_step_row(node, g, lr),
                Kind::Ctx(i) => self.state.ctx[i].adam_step_row(node, g, lr),
            }
        }
        for &(idx, g) in grads.alpha() {
            self.state.alpha[idx].step(g, lr as f64);
        }
    }

    /// One full SUPA training step on a new edge (the graph must already
    /// contain the event's past; edges at `time ≥ e.time` are never walked).
    ///
    /// Steady state, this performs no heap allocation: samples, walks,
    /// negatives, and gradient rows all live in the model's [`SupaScratch`]
    /// pools (see `tests/alloc.rs`).
    ///
    /// [`SupaScratch`]: crate::scratch::SupaScratch
    pub fn train_edge(&mut self, g: &Dmhg, e: &TemporalEdge) -> EventLoss {
        self.ensure_capacity(g.num_nodes());
        if self.variant.use_neg && self.neg_samplers.iter().all(Option::is_none) {
            self.rebuild_negative_samplers(g);
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.prepare(&self.cfg);
        scratch.arena.clear();
        let idx = self.sample_event_into(g, e, &mut scratch.arena, &mut scratch.neg_tmp);
        let loss = self.grads_into(g, e, &scratch.arena, idx, &mut scratch.work);
        self.apply_grads(&scratch.work.grads);
        self.scratch = scratch;
        loss
    }

    /// Evaluation-only loss of an edge (no parameter updates); used by the
    /// tests and by diagnostics.
    pub fn edge_loss(&mut self, g: &Dmhg, e: &TemporalEdge) -> EventLoss {
        self.ensure_capacity(g.num_nodes());
        if self.variant.use_neg && self.neg_samplers.iter().all(Option::is_none) {
            self.rebuild_negative_samplers(g);
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.prepare(&self.cfg);
        scratch.arena.clear();
        let idx = self.sample_event_into(g, e, &mut scratch.arena, &mut scratch.neg_tmp);
        let loss = self.grads_into(g, e, &scratch.arena, idx, &mut scratch.work);
        self.scratch = scratch;
        loss
    }

    /// Convenience: train an entire (time-sorted) edge slice once, returning
    /// the mean total loss. Shuffles nothing — the stream order *is* the
    /// curriculum.
    ///
    /// With [`Supa::set_shards`] ≥ 2 this dispatches to the user-partitioned
    /// sharded pass (see [`Supa::set_shards`]); otherwise
    /// [`Supa::set_workers`] > 1 dispatches to
    /// [`Supa::train_pass_batched`]; the default (`workers = 1`) is the
    /// exact serial per-event loop.
    pub fn train_pass(&mut self, g: &Dmhg, edges: &[TemporalEdge]) -> f64 {
        if self.shards > 1 {
            return self.train_pass_sharded_impl(g, edges, None);
        }
        if self.workers > 1 {
            return self.train_pass_batched(g, edges, self.workers);
        }
        if edges.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for e in edges {
            total += self.train_edge(g, e).total();
        }
        total / edges.len() as f64
    }

    /// [`Supa::train_pass`] with an optional per-event importance weight:
    /// event `i`'s parameter update (the applied Adam step, see
    /// [`Supa::apply_grads`]) is scaled by `weights[i]`. A shedding sampler
    /// that admits 1-in-`k` events and trains the survivors with weight `k`
    /// preserves the stream's expected update mass.
    ///
    /// `weights: None` is the exact unweighted pass — same code path,
    /// bit-identical results.
    pub fn train_pass_weighted(
        &mut self,
        g: &Dmhg,
        edges: &[TemporalEdge],
        weights: Option<&[f32]>,
    ) -> f64 {
        let Some(w) = weights else {
            return self.train_pass(g, edges);
        };
        assert_eq!(
            edges.len(),
            w.len(),
            "train_pass_weighted: one weight per event"
        );
        if self.shards > 1 {
            return self.train_pass_sharded_impl(g, edges, Some(w));
        }
        if self.workers > 1 {
            return self.train_pass_batched_impl(g, edges, Some(w), self.workers);
        }
        if edges.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for (e, &wt) in edges.iter().zip(w) {
            self.event_weight = wt;
            total += self.train_edge(g, e).total();
        }
        self.event_weight = 1.0;
        total / edges.len() as f64
    }

    /// Conflict-aware event micro-batching: trains `edges` with gradient
    /// computation fanned out across `workers` threads while preserving the
    /// stream curriculum.
    ///
    /// How it stays deterministic (and faithful):
    ///
    /// 1. **Sampling is serial.** Every event's walks and negatives are drawn
    ///    up front in stream order into one [`SampleArena`]; sampling reads
    ///    no embedding state, so the RNG stream is *identical* to the serial
    ///    path's.
    /// 2. **Waves are contiguous.** A wave is the maximal run of consecutive
    ///    events whose touched-node sets (endpoints ∪ walk steps ∪
    ///    negatives) are pairwise disjoint — tracked with a stamp-based mark
    ///    set, no per-wave hashing or allocation. Within a wave the events'
    ///    sparse row reads/writes land on disjoint rows, so their updates
    ///    commute exactly; across waves, stream order (and thus event
    ///    causality) is preserved.
    /// 3. **Gradients are pure reads** against the frozen pre-wave state and
    ///    are reassembled in input order by [`supa_par::WorkerPool::map`], so
    ///    the result does not depend on thread scheduling. Short waves
    ///    (fewer than [`MIN_EVENTS_PER_WORKER`] events per worker, where a
    ///    thread spawn would cost more than it buys) run inline on pooled
    ///    buffers with the *same* frozen-state semantics, so the result is
    ///    also independent of where that threshold falls.
    /// 4. **Application is serial**, in event order — per-row Adam, the `α`
    ///    drift scalars, and the touch log all see the serial order.
    ///
    /// The worker fan-out is additionally clamped to the machine's available
    /// parallelism: oversubscribed spawns only add overhead, never change
    /// results.
    ///
    /// When the effective fan-out is 1 — `workers ≤ 1`, or a single-core
    /// machine — the pass falls back to the exact per-event serial loop,
    /// bit-identical to [`Supa::train_pass`] with `workers = 1`: with no
    /// threads to overlap, bulk sampling and wave building are pure
    /// overhead. Any fan-out ≥ 2 yields one deterministic result,
    /// independent of the actual worker count; it can differ from the
    /// serial result only in that the `α` scalars are frozen per wave
    /// instead of per event.
    pub fn train_pass_batched(&mut self, g: &Dmhg, edges: &[TemporalEdge], workers: usize) -> f64 {
        self.train_pass_batched_impl(g, edges, None, workers)
    }

    /// Batched pass body; `weights` (if any) scales event `i`'s applied
    /// update exactly as in [`Supa::train_pass_weighted`]. Application is
    /// serial and in stream order in every branch, so the per-event weight
    /// is set immediately before each `apply_grads`.
    fn train_pass_batched_impl(
        &mut self,
        g: &Dmhg,
        edges: &[TemporalEdge],
        weights: Option<&[f32]>,
        workers: usize,
    ) -> f64 {
        let workers = supa_par::effective_workers(workers).max(1);
        if edges.is_empty() {
            return 0.0;
        }
        let fan_out = workers.min(supa_par::available_workers()).max(1);
        if fan_out <= 1 {
            let mut total = 0.0;
            for (k, e) in edges.iter().enumerate() {
                if let Some(w) = weights {
                    self.event_weight = w[k];
                }
                total += self.train_edge(g, e).total();
            }
            if weights.is_some() {
                self.event_weight = 1.0;
            }
            return total / edges.len() as f64;
        }

        // Preamble, once per pass (equivalent to `train_edge`'s per-event
        // preamble: capacity depends only on the graph, and the sampler
        // rebuild only triggers when all samplers are absent).
        self.ensure_capacity(g.num_nodes());
        if self.variant.use_neg && self.neg_samplers.iter().all(Option::is_none) {
            self.rebuild_negative_samplers(g);
        }

        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.prepare(&self.cfg);
        scratch.arena.clear();

        // Phase 1 — draw all stochastic choices serially, in stream order.
        for e in edges {
            self.sample_event_into(g, e, &mut scratch.arena, &mut scratch.neg_tmp);
        }

        let pool = supa_par::WorkerPool::new(fan_out);
        let mut total = 0.0;
        scratch.marks.ensure_len(g.num_nodes());
        let mut start = 0usize;
        while start < edges.len() {
            // Phase 2 — extend the wave while touched sets stay disjoint.
            scratch.marks.clear();
            let mut end = start;
            while end < edges.len() {
                touched_nodes(&edges[end], &scratch.arena, end, &mut scratch.touched);
                if end > start && scratch.touched.iter().any(|&n| scratch.marks.is_marked(n)) {
                    break;
                }
                for &n in &scratch.touched {
                    scratch.marks.mark(n);
                }
                end += 1;
            }

            // Phase 3 — pure-read gradients against frozen pre-wave state,
            // threaded for long waves and inline (on pooled buffers) for
            // short ones; either way all of the wave's gradients see the
            // same frozen state.
            let wave = end - start;
            if wave < fan_out * MIN_EVENTS_PER_WORKER {
                while scratch.wave.len() < wave {
                    scratch.wave.push(GradScratch::default());
                }
                for k in 0..wave {
                    let loss = self.grads_into(
                        g,
                        &edges[start + k],
                        &scratch.arena,
                        start + k,
                        &mut scratch.wave[k],
                    );
                    scratch.wave[k].loss = loss;
                }
                // Phase 4 — serial, in-order application.
                for (k, ws) in scratch.wave[..wave].iter().enumerate() {
                    if let Some(w) = weights {
                        self.event_weight = w[start + k];
                    }
                    total += ws.loss.total();
                    self.apply_grads(&ws.grads);
                }
            } else {
                let wave_edges = &edges[start..end];
                let arena = &scratch.arena;
                let results = {
                    let this: &Supa = self;
                    pool.map(wave_edges, |k, e| {
                        let mut ws = GradScratch::default();
                        let loss = this.grads_into(g, e, arena, start + k, &mut ws);
                        (loss, ws)
                    })
                };
                for (k, (loss, ws)) in results.iter().enumerate() {
                    if let Some(w) = weights {
                        self.event_weight = w[start + k];
                    }
                    total += loss.total();
                    self.apply_grads(&ws.grads);
                }
            }
            start = end;
        }
        if weights.is_some() {
            self.event_weight = 1.0;
        }
        self.scratch = scratch;
        total / edges.len() as f64
    }

    /// User-partitioned sharded pass: the same serial-sampling /
    /// disjoint-wave / frozen-state structure as
    /// [`Supa::train_pass_batched`], with each wave's gradient work grouped
    /// by the shard owning the event's source user
    /// (`supa_par::shard_of(src, shards)`) instead of split into contiguous
    /// worker chunks.
    ///
    /// Because a wave's gradients are pure reads of the frozen pre-wave
    /// state reassembled by event index, *any* partition of the wave —
    /// contiguous chunks, shard-keyed groups, inline execution — produces
    /// bitwise-identical results. Three consequences this pass pins:
    ///
    /// - every shard count ≥ 2 yields the same result (the grouping drops
    ///   out), equal to the `workers ≥ 2` micro-batched result;
    /// - the result is host-independent: unlike the worker fan-out, the
    ///   shard partition is never clamped to the machine's core count — on
    ///   a single core the shard groups are computed serially with the same
    ///   frozen-state semantics (no thread spawns, bounded overhead);
    /// - it differs from the serial `shards = 1` path only in that the `α`
    ///   drift scalars are frozen per wave instead of per event — exactly
    ///   the batched path's deviation.
    ///
    /// Shard groups run on one scoped thread per non-empty shard when the
    /// machine has the cores for it and the wave is long enough to amortize
    /// the spawns; the thread ↔ shard affinity keeps each worker on its own
    /// users' rows.
    fn train_pass_sharded_impl(
        &mut self,
        g: &Dmhg,
        edges: &[TemporalEdge],
        weights: Option<&[f32]>,
    ) -> f64 {
        let shards = self.shards.max(2);
        if edges.is_empty() {
            return 0.0;
        }

        // Preamble, once per pass (as in the batched path).
        self.ensure_capacity(g.num_nodes());
        if self.variant.use_neg && self.neg_samplers.iter().all(Option::is_none) {
            self.rebuild_negative_samplers(g);
        }

        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.prepare(&self.cfg);
        scratch.arena.clear();

        // Phase 1 — draw all stochastic choices serially, in stream order.
        for e in edges {
            self.sample_event_into(g, e, &mut scratch.arena, &mut scratch.neg_tmp);
        }

        let threads_available = supa_par::available_workers() > 1;
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); shards];
        let mut total = 0.0;
        scratch.marks.ensure_len(g.num_nodes());
        let mut start = 0usize;
        while start < edges.len() {
            // Phase 2 — extend the wave while touched sets stay disjoint
            // (identical to the batched path: same waves, same marks).
            scratch.marks.clear();
            let mut end = start;
            while end < edges.len() {
                touched_nodes(&edges[end], &scratch.arena, end, &mut scratch.touched);
                if end > start && scratch.touched.iter().any(|&n| scratch.marks.is_marked(n)) {
                    break;
                }
                for &n in &scratch.touched {
                    scratch.marks.mark(n);
                }
                end += 1;
            }

            // Phase 3 — group the wave by owning shard of the source user.
            let wave = end - start;
            for grp in &mut groups {
                grp.clear();
            }
            for k in 0..wave {
                groups[supa_par::shard_of(edges[start + k].src.0, shards)].push(k);
            }
            let busy = groups.iter().filter(|grp| !grp.is_empty()).count();
            if threads_available && busy >= 2 && wave >= 2 * MIN_EVENTS_PER_WORKER {
                // One scoped thread per non-empty shard, each reading the
                // frozen pre-wave state for its own users' events.
                let arena = &scratch.arena;
                let this: &Supa = self;
                let computed: Vec<Vec<(usize, EventLoss, GradScratch)>> =
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = groups
                            .iter()
                            .filter(|grp| !grp.is_empty())
                            .map(|grp| {
                                scope.spawn(move || {
                                    grp.iter()
                                        .map(|&k| {
                                            let mut ws = GradScratch::default();
                                            let loss = this.grads_into(
                                                g,
                                                &edges[start + k],
                                                arena,
                                                start + k,
                                                &mut ws,
                                            );
                                            (k, loss, ws)
                                        })
                                        .collect()
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("shard worker panicked"))
                            .collect()
                    });
                // Scatter by wave index, then apply serially in stream
                // order — identical bits to the inline branch below.
                while scratch.wave.len() < wave {
                    scratch.wave.push(GradScratch::default());
                }
                for shard_results in computed {
                    for (k, loss, ws) in shard_results {
                        scratch.wave[k] = ws;
                        scratch.wave[k].loss = loss;
                    }
                }
            } else {
                // Single core (or a wave too short to amortize spawns):
                // compute each shard group in place on the pooled buffers.
                while scratch.wave.len() < wave {
                    scratch.wave.push(GradScratch::default());
                }
                for grp in &groups {
                    for &k in grp {
                        let loss = self.grads_into(
                            g,
                            &edges[start + k],
                            &scratch.arena,
                            start + k,
                            &mut scratch.wave[k],
                        );
                        scratch.wave[k].loss = loss;
                    }
                }
            }
            // Phase 4 — serial, in-order application.
            for (k, ws) in scratch.wave[..wave].iter().enumerate() {
                if let Some(w) = weights {
                    self.event_weight = w[start + k];
                }
                total += ws.loss.total();
                self.apply_grads(&ws.grads);
            }
            start = end;
        }
        if weights.is_some() {
            self.event_weight = 1.0;
        }
        self.scratch = scratch;
        total / edges.len() as f64
    }

    /// Samples `e`'s walks and negatives — advancing the model RNG exactly
    /// as training would — and returns the event's touched row ids
    /// (endpoints ∪ walk steps ∪ negatives). This is the conflict
    /// footprint the wave builder marks; the shard-key study (`expt
    /// shardkey`) replays a stream through it to measure how often an
    /// event's footprint escapes the shard owning its source user.
    pub fn event_touched_nodes(&mut self, g: &Dmhg, e: &TemporalEdge) -> Vec<u32> {
        self.ensure_capacity(g.num_nodes());
        if self.variant.use_neg && self.neg_samplers.iter().all(Option::is_none) {
            self.rebuild_negative_samplers(g);
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.prepare(&self.cfg);
        scratch.arena.clear();
        let idx = self.sample_event_into(g, e, &mut scratch.arena, &mut scratch.neg_tmp);
        touched_nodes(e, &scratch.arena, idx, &mut scratch.touched);
        let out = scratch.touched.clone();
        self.scratch = scratch;
        out
    }

    /// Exposes the internal RNG for protocol-level sampling decisions.
    pub(crate) fn rng_u64(&mut self) -> u64 {
        self.rng.random()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SupaConfig;
    use crate::variants::SupaVariant;
    use supa_graph::{GraphSchema, MetapathSchema, NodeId, RelationId, RelationSet};

    /// A tiny deterministic fixture: one user, three items, two relations.
    struct Fix {
        g: Dmhg,
        u0: NodeId,
        i2: NodeId,
        r0: RelationId,
        metapaths: Vec<MetapathSchema>,
        schema: GraphSchema,
    }

    fn fixture() -> Fix {
        let mut s = GraphSchema::new();
        let user = s.add_node_type("User");
        let item = s.add_node_type("Item");
        let r0 = s.add_relation("R0", user, item);
        let _r1 = s.add_relation("R1", user, item);
        let mut g = Dmhg::new(s.clone());
        let u0 = g.add_node(user);
        let u1 = g.add_node(user);
        let i0 = g.add_node(item);
        let i1 = g.add_node(item);
        let i2 = g.add_node(item);
        g.add_edge(u0, i0, r0, 1.0).unwrap();
        g.add_edge(u0, i1, r0, 2.0).unwrap();
        g.add_edge(u1, i0, r0, 3.0).unwrap();
        let rels = RelationSet::single(r0);
        let metapaths =
            vec![MetapathSchema::new(vec![user, item, user], vec![rels, rels]).unwrap()];
        Fix {
            g,
            u0,
            i2,
            r0,
            metapaths,
            schema: s,
        }
    }

    fn small_cfg() -> SupaConfig {
        SupaConfig {
            dim: 6,
            num_walks: 2,
            walk_length: 3,
            n_neg: 2,
            time_scale: 1.0,
            weight_decay: 0.0, // keep FD checks clean
            ..SupaConfig::small()
        }
    }

    fn model(f: &Fix, variant: SupaVariant) -> Supa {
        let mut m = Supa::new(
            &f.schema,
            f.g.num_nodes(),
            f.metapaths.clone(),
            small_cfg(),
            variant,
            99,
        )
        .unwrap();
        m.rebuild_negative_samplers(&f.g);
        m
    }

    #[test]
    fn losses_are_positive_and_respect_variant_flags() {
        let f = fixture();
        let e = TemporalEdge::new(f.u0, f.i2, f.r0, 10.0);
        let mut m = model(&f, SupaVariant::full());
        let l = m.edge_loss(&f.g, &e);
        assert!(l.inter > 0.0 && l.prop > 0.0 && l.neg > 0.0);
        assert!(l.total() > l.inter);

        let mut m = model(&f, SupaVariant::losses(true, false, false));
        let l = m.edge_loss(&f.g, &e);
        assert!(l.inter > 0.0);
        assert_eq!(l.prop, 0.0);
        assert_eq!(l.neg, 0.0);
    }

    #[test]
    fn training_reduces_the_event_loss() {
        let f = fixture();
        let e = TemporalEdge::new(f.u0, f.i2, f.r0, 10.0);
        let mut m = model(&f, SupaVariant::full());
        let before = m.edge_loss(&f.g, &e).total();
        for _ in 0..60 {
            m.train_edge(&f.g, &e);
        }
        let after = m.edge_loss(&f.g, &e).total();
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn training_raises_the_pair_score() {
        let f = fixture();
        let e = TemporalEdge::new(f.u0, f.i2, f.r0, 10.0);
        let mut m = model(&f, SupaVariant::full());
        let before = m.gamma(f.u0, f.i2, f.r0);
        for _ in 0..80 {
            m.train_edge(&f.g, &e);
        }
        assert!(m.gamma(f.u0, f.i2, f.r0) > before);
    }

    /// Central finite differences against the analytic gradients for every
    /// parameter class, under the full variant.
    #[test]
    fn analytic_gradients_match_finite_differences() {
        let f = fixture();
        let e = TemporalEdge::new(f.u0, f.i2, f.r0, 10.0);
        let mut m = model(&f, SupaVariant::full());
        let mut arena = SampleArena::default();
        let mut neg_tmp = Vec::new();
        let idx = m.sample_event_into(&f.g, &e, &mut arena, &mut neg_tmp);
        let mut ws = GradScratch::default();
        m.grads_into(&f.g, &e, &arena, idx, &mut ws);
        // Snapshot the analytic gradients before re-running the loss.
        let rows: Vec<(Kind, u32, Vec<f32>)> = ws
            .grads
            .iter_rows()
            .map(|(k, n, g)| (k, n, g.to_vec()))
            .collect();
        let alphas: Vec<(usize, f64)> = ws.grads.alpha().to_vec();

        let eps = 5e-3f32;
        let tol = 3e-2f64;
        let find = |kind: Kind, node: u32| -> Option<&Vec<f32>> {
            rows.iter()
                .find(|(k, n, _)| *k == kind && *n == node)
                .map(|(_, _, g)| g)
        };

        // Check h^L, h^S of u0, and c^{r0} of i2 (the interactive item).
        for (kind, node) in [
            (Kind::Long, f.u0.0),
            (Kind::Short, f.u0.0),
            (Kind::Ctx(0), f.i2.0),
            (Kind::Long, f.i2.0),
        ] {
            let analytic = find(kind, node).cloned().unwrap_or_default();
            for k in 0..m.cfg.dim {
                let bump = |m: &mut Supa, delta: f32| match kind {
                    Kind::Long => m.state.h_long.row_mut(node as usize)[k] += delta,
                    Kind::Short => m.state.h_short.row_mut(node as usize)[k] += delta,
                    Kind::Ctx(i) => m.state.ctx[i].row_mut(node as usize)[k] += delta,
                };
                bump(&mut m, eps);
                let up = m.grads_into(&f.g, &e, &arena, idx, &mut ws).total();
                bump(&mut m, -2.0 * eps);
                let down = m.grads_into(&f.g, &e, &arena, idx, &mut ws).total();
                bump(&mut m, eps);
                let numeric = (up - down) / (2.0 * eps as f64);
                let a = analytic.get(k).copied().unwrap_or(0.0) as f64;
                let denom = a.abs().max(numeric.abs()).max(1.0);
                assert!(
                    ((a - numeric) / denom).abs() < tol,
                    "{kind:?} node {node} dim {k}: analytic {a} vs numeric {numeric}"
                );
            }
        }

        // Check α for the user type.
        let alpha_idx = 0usize;
        let analytic_alpha = alphas
            .iter()
            .find(|(i, _)| *i == alpha_idx)
            .map(|(_, g)| *g)
            .unwrap_or(0.0);
        let eps_a = 1e-4f64;
        m.state.alpha[alpha_idx].value += eps_a;
        let up = m.grads_into(&f.g, &e, &arena, idx, &mut ws).total();
        m.state.alpha[alpha_idx].value -= 2.0 * eps_a;
        let down = m.grads_into(&f.g, &e, &arena, idx, &mut ws).total();
        m.state.alpha[alpha_idx].value += eps_a;
        let numeric = (up - down) / (2.0 * eps_a);
        let denom = analytic_alpha.abs().max(numeric.abs()).max(1e-3);
        assert!(
            ((analytic_alpha - numeric) / denom).abs() < 0.05,
            "α: analytic {analytic_alpha} vs numeric {numeric}"
        );
    }

    #[test]
    fn no_decay_variant_ignores_edge_age() {
        let f = fixture();
        // An event so late that every walked edge is outdated (Δ ≫ τ).
        let e = TemporalEdge::new(f.u0, f.i2, f.r0, 1.0e6);
        let mut full = model(&f, SupaVariant::full());
        let mut nd = model(&f, SupaVariant::nd());
        let lf = full.edge_loss(&f.g, &e);
        let lnd = nd.edge_loss(&f.g, &e);
        // Full SUPA terminates all flows (τ ≈ 25 in scaled units) → no prop
        // loss; SUPA_nd keeps propagating.
        assert_eq!(lf.prop, 0.0, "termination filter must stop stale flows");
        assert!(lnd.prop > 0.0);
    }

    #[test]
    fn negatives_are_never_the_positive_node() {
        let f = fixture();
        let e = TemporalEdge::new(f.u0, f.i2, f.r0, 10.0);
        let mut m = model(&f, SupaVariant::full());
        let mut arena = SampleArena::default();
        let mut neg_tmp = Vec::new();
        for _ in 0..50 {
            arena.clear();
            let idx = m.sample_event_into(&f.g, &e, &mut arena, &mut neg_tmp);
            // With three items the sampler can always exclude the positive;
            // the two-user universe may collide (handled by the loss skip).
            assert!(arena.negs_u(idx).iter().all(|&i| i != f.i2.0));
            // Counterpart typing: negs_u are items (ids ≥ 2 in this fixture).
            assert!(arena.negs_u(idx).iter().all(|&i| i >= 2));
            assert!(arena.negs_v(idx).iter().all(|&i| i < 2));
        }
    }

    #[test]
    fn train_pass_returns_mean_loss() {
        let f = fixture();
        let mut m = model(&f, SupaVariant::full());
        let edges = vec![
            TemporalEdge::new(f.u0, f.i2, f.r0, 10.0),
            TemporalEdge::new(f.u0, f.i2, f.r0, 11.0),
        ];
        let mean = m.train_pass(&f.g, &edges);
        assert!(mean > 0.0);
        assert_eq!(m.train_pass(&f.g, &[]), 0.0);
    }

    #[test]
    fn touch_tracking_logs_updated_rows() {
        let f = fixture();
        let e = TemporalEdge::new(f.u0, f.i2, f.r0, 10.0);
        let mut m = model(&f, SupaVariant::full());
        // Disabled by default: training logs nothing.
        m.train_edge(&f.g, &e);
        assert!(m.take_touched().is_empty());
        m.enable_touch_tracking();
        m.train_edge(&f.g, &e);
        let touched = m.take_touched();
        // Both endpoints receive gradients; the log is sorted and deduped.
        assert!(touched.contains(&f.u0.0));
        assert!(touched.contains(&f.i2.0));
        assert!(touched.windows(2).all(|w| w[0] < w[1]));
        // Drained: a second take is empty until more training happens.
        assert!(m.take_touched().is_empty());
        m.train_edge(&f.g, &e);
        assert!(!m.take_touched().is_empty());
    }

    #[test]
    fn grad_accumulator_merges_duplicate_rows_and_pools_buffers() {
        let mut g = EventGrads::default();
        g.add(Kind::Long, 3, 1.0, &[1.0, 2.0]);
        g.add(Kind::Long, 3, 0.5, &[2.0, 2.0]);
        g.add(Kind::Short, 3, 1.0, &[1.0, 1.0]);
        {
            let rows: Vec<_> = g.iter_rows().collect();
            assert_eq!(rows.len(), 2);
            assert_eq!(rows[0].2, [2.0, 3.0].as_slice());
        }
        g.add_alpha(0, 1.0);
        g.add_alpha(0, 0.25);
        g.add_alpha(1, 3.0);
        assert_eq!(g.alpha(), &[(0, 1.25), (1, 3.0)]);
        // clear() retires the rows but keeps their buffers pooled.
        g.clear();
        assert_eq!(g.iter_rows().count(), 0);
        assert!(g.alpha().is_empty());
        g.add(Kind::Long, 9, 2.0, &[4.0, 5.0, 6.0]);
        let rows: Vec<_> = g.iter_rows().collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1, 9);
        assert_eq!(rows[0].2, [8.0, 10.0, 12.0].as_slice());
    }

    /// After `prepare`, a worst-case event's worth of `add` calls performs
    /// no row pushes beyond the pool.
    #[test]
    fn prepared_grads_never_grow_the_row_pool() {
        let mut g = EventGrads::default();
        g.prepare(8, 4);
        let pooled = g.rows.len();
        assert_eq!(pooled, 8);
        for node in 0..8u32 {
            g.add(Kind::Ctx(0), node, 1.0, &[1.0, 2.0, 3.0, 4.0]);
        }
        assert_eq!(g.rows.len(), pooled, "adds within bound reuse the pool");
        g.clear();
        g.add(Kind::Long, 0, 1.0, &[1.0]);
        assert_eq!(g.rows.len(), pooled);
        assert_eq!(g.iter_rows().count(), 1);
    }
}
