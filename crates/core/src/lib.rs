//! # supa — Sample-Update-Propagate representation learning for DMHGs
//!
//! A from-scratch Rust implementation of **SUPA** and the **InsLearn**
//! training workflow from *"Instant Representation Learning for
//! Recommendation over Large Dynamic Graphs"* (ICDE 2023).
//!
//! SUPA learns relation-specific node embeddings over a dynamic multiplex
//! heterogeneous graph, one edge event at a time:
//!
//! 1. **Sample** (§III-B): for a new edge `(u, v, r, t)`, sample `k`
//!    metapath-constrained walks of length `l` from each endpoint — the
//!    *influenced graph* `G_{s,e}`.
//! 2. **Update** (§III-C): read the endpoints' target embeddings
//!    `h* = h^L + h^S · g(σ(α_φ)·Δ_V)` — long-term memory plus a short-term
//!    memory *forgotten* by inactive time — combine them with
//!    relation-specific context embeddings, and minimise the interaction
//!    loss `−log σ(h_u^r · h_v^r)` (Eq. 5–7).
//! 3. **Propagate** (§III-D): push the interaction information along the
//!    sampled walks, attenuated by `g(Δ_E)` per hop and *terminated* at
//!    edges older than τ, training the influenced nodes' context embeddings
//!    through a skip-gram style loss (Eq. 8–10), plus negative sampling
//!    (Eq. 12).
//!
//! Gradients are analytic (verified against finite differences in the test
//! suite) and applied with per-row lazy Adam, so one event costs
//! `O((k·l + N_neg) · d)` — the paper's complexity claim.
//!
//! **InsLearn** ([`inslearn`]) trains SUPA in a *single pass* over the edge
//! stream: sequential batches, per-batch iteration with validation every
//! `I_valid` iterations, early stopping with patience μ, and rollback to the
//! best snapshot before moving to the next batch (Algorithm 1).
//!
//! ```
//! use supa::{Supa, SupaConfig};
//! use supa_datasets::taobao;
//! use supa_eval::{link_prediction, RankingEvaluator, SplitRatios, EvalContext};
//!
//! let data = taobao(0.02, 7);
//! let mut model = Supa::from_dataset(&data, SupaConfig::small(), 7).unwrap();
//! let ctx = EvalContext::new(data.prototype.clone(), data.edges.clone());
//! let result = link_prediction(
//!     &ctx, &mut model, &RankingEvaluator::sampled(50, 1), SplitRatios::default());
//! assert!(result.metrics.mrr() > 0.0);
//! ```

pub mod checkpoint;
pub mod config;
pub mod decay;
pub mod delta;
pub mod event;
pub mod framing;
pub mod inslearn;
pub mod model;
pub mod recommend;
pub(crate) mod scratch;
pub mod serving;
pub mod variants;

pub use checkpoint::{CheckpointManager, CheckpointMeta, ResumeOutcome};
pub use config::SupaConfig;
pub use delta::{BaselineFrame, DeltaFrame, Frame, GuardState, WireError};
pub use event::EventLoss;
pub use inslearn::{GuardConfig, InsLearnConfig, InsLearnReport, TrainOptions};
pub use model::{Supa, SupaState};
pub use serving::ServingSnapshot;
pub use variants::SupaVariant;
