//! Serving-side export: an immutable, values-only view of the model.
//!
//! The online serving layer (the `supa-serve` crate) publishes model state
//! to reader threads as epoch-versioned snapshots. A [`ServingSnapshot`] is
//! what gets published: the embedding *values* a query needs to evaluate
//! Eq. 15 — long/short-term memories and context tables — and none of the
//! trainer-only state (Adam moments, RNG, walker, samplers). That keeps the
//! per-snapshot copy cost at roughly a quarter of a full model clone and
//! makes the snapshot `Send + Sync` by construction.
//!
//! Scoring here is **bit-identical** to [`Supa::gamma`]: the same rows, the
//! same accumulation order, the same final scale. The online/offline
//! equivalence tests in `supa-serve` rely on this — a snapshot exported
//! after N events must score exactly like the live model that produced it.

use supa_embed::EmbeddingValues;
use supa_eval::Scorer;
use supa_graph::{NodeId, RelationId};

use crate::model::Supa;

/// An immutable, query-only copy of a [`Supa`] model's embeddings.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingSnapshot {
    pub(crate) dim: usize,
    pub(crate) no_forget: bool,
    pub(crate) shared_context: bool,
    pub(crate) h_long: EmbeddingValues,
    /// Absent under the `no_forget` variant, whose readout never touches
    /// the short-term memory.
    pub(crate) h_short: Option<EmbeddingValues>,
    pub(crate) ctx: Vec<EmbeddingValues>,
}

impl ServingSnapshot {
    /// Number of node rows covered by the snapshot.
    pub fn num_nodes(&self) -> usize {
        self.h_long.len()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Index into the context tables for relation `r` (mirrors the model's
    /// shared-context collapsing).
    #[inline]
    fn ctx_idx(&self, r: RelationId) -> usize {
        if self.shared_context {
            0
        } else {
            r.index()
        }
    }

    /// Writes node `n`'s *composite* vector under relation `r` into `out`:
    /// the per-element sum `h_long + h_short + ctx_r` (or `h_long + ctx_r`
    /// under `no_forget`), associated exactly as [`ServingSnapshot::gamma`]
    /// associates it. Eq. 15 is then a pure inner product of composites,
    ///
    /// ```text
    /// γ(u, v, r) = 0.25 · ⟨composite(u, r), composite(v, r)⟩
    /// ```
    ///
    /// bit-for-bit — the ANN retrieval layer indexes item composites and
    /// queries with user composites, so its candidate ranking is monotone in
    /// the exact γ the brute-force path scores.
    pub fn composite_into(&self, n: NodeId, r: RelationId, out: &mut Vec<f32>) {
        let i = n.index();
        let cidx = self.ctx_idx(r);
        let (hl, c) = (self.h_long.row(i), self.ctx[cidx].row(i));
        out.clear();
        out.reserve(hl.len());
        if self.no_forget {
            for k in 0..hl.len() {
                out.push(hl[k] + c[k]);
            }
        } else {
            let hs = self.h_short.as_ref().expect("short-term memory exported");
            let hs = hs.row(i);
            for k in 0..hl.len() {
                out.push(hl[k] + hs[k] + c[k]);
            }
        }
    }

    /// Writes node `n`'s relation-independent *base* vector into `out`:
    /// `h_long + h_short` (or `h_long` alone under `no_forget`) — the
    /// composite minus the per-relation context contribution. The
    /// shared-base ANN layout indexes one base vector per item instead of R
    /// composites; because `⟨comp_u, comp_v⟩ = ⟨comp_u, base_v⟩ +
    /// ⟨comp_u, ctx_v(r)⟩` and the context tables move slowly relative to
    /// the memories, ranking by `⟨comp_u, base_v⟩` recovers the exact
    /// top-K after an `ef_margin`-widened exact rerank (audited online by
    /// the recall guard).
    pub fn base_into(&self, n: NodeId, out: &mut Vec<f32>) {
        let i = n.index();
        let hl = self.h_long.row(i);
        out.clear();
        out.reserve(hl.len());
        if self.no_forget {
            out.extend_from_slice(hl);
        } else {
            let hs = self.h_short.as_ref().expect("short-term memory exported");
            let hs = hs.row(i);
            for k in 0..hl.len() {
                out.push(hl[k] + hs[k]);
            }
        }
    }

    /// Eq. 15 readout, identical op-for-op to [`Supa::gamma`].
    pub fn gamma(&self, u: NodeId, v: NodeId, r: RelationId) -> f32 {
        let (ui, vi) = (u.index(), v.index());
        let cidx = self.ctx_idx(r);
        let (hl_u, hl_v) = (self.h_long.row(ui), self.h_long.row(vi));
        let (c_u, c_v) = (self.ctx[cidx].row(ui), self.ctx[cidx].row(vi));
        let mut s = 0.0f32;
        if self.no_forget {
            for k in 0..hl_u.len() {
                s += (hl_u[k] + c_u[k]) * (hl_v[k] + c_v[k]);
            }
        } else {
            let hs = self.h_short.as_ref().expect("short-term memory exported");
            let (hs_u, hs_v) = (hs.row(ui), hs.row(vi));
            for k in 0..hl_u.len() {
                s += (hl_u[k] + hs_u[k] + c_u[k]) * (hl_v[k] + hs_v[k] + c_v[k]);
            }
        }
        0.25 * s
    }
}

impl Scorer for ServingSnapshot {
    fn score(&self, u: NodeId, v: NodeId, r: RelationId) -> f32 {
        self.gamma(u, v, r)
    }
}

impl Supa {
    /// Exports the current embedding values as a [`ServingSnapshot`].
    pub fn export_serving_snapshot(&self) -> ServingSnapshot {
        ServingSnapshot {
            dim: self.cfg.dim,
            no_forget: self.variant.no_forget,
            shared_context: self.variant.shared_context,
            h_long: self.state.h_long.values_snapshot(),
            h_short: if self.variant.no_forget {
                None
            } else {
                Some(self.state.h_short.values_snapshot())
            },
            ctx: self.state.ctx.iter().map(|t| t.values_snapshot()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SupaConfig;
    use crate::variants::SupaVariant;
    use supa_datasets::taobao;

    #[test]
    fn snapshot_gamma_is_bit_identical_to_model_gamma() {
        let d = taobao(0.02, 11);
        let mut m = Supa::from_dataset(&d, SupaConfig::small(), 11).unwrap();
        let g = d.full_graph();
        m.resolve_time_scale(&g);
        m.rebuild_negative_samplers(&g);
        m.train_pass(&g, &d.edges[..100]);
        let snap = m.export_serving_snapshot();
        assert_eq!(snap.num_nodes(), m.state().h_long.len());
        for e in &d.edges[..50] {
            let live = m.gamma(e.src, e.dst, e.relation);
            let served = snap.gamma(e.src, e.dst, e.relation);
            assert_eq!(live.to_bits(), served.to_bits());
            assert_eq!(
                snap.score(e.src, e.dst, e.relation).to_bits(),
                live.to_bits()
            );
        }
    }

    #[test]
    fn snapshot_is_detached_from_further_training() {
        let d = taobao(0.02, 12);
        let mut m = Supa::from_dataset(&d, SupaConfig::small(), 12).unwrap();
        let g = d.full_graph();
        m.resolve_time_scale(&g);
        m.rebuild_negative_samplers(&g);
        let snap = m.export_serving_snapshot();
        let e = &d.edges[0];
        let before = snap.gamma(e.src, e.dst, e.relation);
        m.train_pass(&g, &d.edges[..100]);
        assert_ne!(
            m.gamma(e.src, e.dst, e.relation),
            before,
            "training should move the live score"
        );
        assert_eq!(snap.gamma(e.src, e.dst, e.relation), before);
    }

    #[test]
    fn gamma_is_a_dot_product_of_composites() {
        // The ANN layer's contract: γ(u, v, r) == 0.25 · ⟨comp_u, comp_v⟩,
        // bit-for-bit, for both the full and no_forget variants.
        let d = taobao(0.02, 14);
        let g = d.full_graph();
        for variant in [SupaVariant::full(), SupaVariant::nf()] {
            let mut m = Supa::from_dataset_variant(&d, SupaConfig::small(), variant, 14).unwrap();
            m.resolve_time_scale(&g);
            m.rebuild_negative_samplers(&g);
            m.train_pass(&g, &d.edges[..100]);
            let snap = m.export_serving_snapshot();
            let (mut cu, mut cv) = (Vec::new(), Vec::new());
            for e in &d.edges[..50] {
                snap.composite_into(e.src, e.relation, &mut cu);
                snap.composite_into(e.dst, e.relation, &mut cv);
                let mut s = 0.0f32;
                for k in 0..cu.len() {
                    s += cu[k] * cv[k];
                }
                assert_eq!(
                    (0.25 * s).to_bits(),
                    snap.gamma(e.src, e.dst, e.relation).to_bits()
                );
            }
        }
    }

    #[test]
    fn base_plus_context_row_equals_the_composite() {
        // The shared-base ANN contract: composite(v, r) == base(v) + ctx_r(v)
        // element-wise (same association order), for both variants.
        let d = taobao(0.02, 15);
        let g = d.full_graph();
        for variant in [SupaVariant::full(), SupaVariant::nf()] {
            let mut m = Supa::from_dataset_variant(&d, SupaConfig::small(), variant, 15).unwrap();
            m.resolve_time_scale(&g);
            m.rebuild_negative_samplers(&g);
            m.train_pass(&g, &d.edges[..100]);
            let snap = m.export_serving_snapshot();
            let (mut comp, mut base) = (Vec::new(), Vec::new());
            for e in &d.edges[..50] {
                snap.composite_into(e.dst, e.relation, &mut comp);
                snap.base_into(e.dst, &mut base);
                let c = snap.ctx[snap.ctx_idx(e.relation)].row(e.dst.index());
                assert_eq!(comp.len(), base.len());
                for k in 0..comp.len() {
                    assert_eq!(
                        comp[k].to_bits(),
                        (base[k] + c[k]).to_bits(),
                        "composite != base + ctx at element {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn no_forget_snapshot_skips_short_term_memory() {
        let d = taobao(0.02, 13);
        let m = Supa::from_dataset_variant(&d, SupaConfig::small(), SupaVariant::nf(), 13).unwrap();
        let snap = m.export_serving_snapshot();
        assert!(snap.h_short.is_none());
        let e = &d.edges[0];
        assert_eq!(
            snap.gamma(e.src, e.dst, e.relation).to_bits(),
            m.gamma(e.src, e.dst, e.relation).to_bits()
        );
    }
}
