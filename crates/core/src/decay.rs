//! The paper's time-decay functions.
//!
//! - `g(x) = 1 / ln(e + x)` — the monotone decreasing *forget* /
//!   *attenuation* function (§III-C, §III-D). `g(0) = 1`, `g(∞) = 0`.
//! - `D(x) = 1[x ≤ τ]` — the *termination* filter detecting out-of-date
//!   edges (Eq. 9).
//! - The experimental default τ solves `g(τ) = 0.3` (§IV-C), i.e.
//!   `τ = e^{1/0.3} − e`.

/// `g(x) = 1/ln(e + x)` for `x ≥ 0`. NaN propagates (the divergence guard
/// detects poisoned state at the loss, so mid-iteration NaN must flow
/// through rather than abort the process).
#[inline]
pub fn g_decay(x: f64) -> f64 {
    debug_assert!(
        x >= 0.0 || x.is_nan(),
        "decay input must be non-negative, got {x}"
    );
    1.0 / (std::f64::consts::E + x).ln()
}

/// `g'(x) = −1 / ((e + x) · ln²(e + x))`.
#[inline]
pub fn g_decay_prime(x: f64) -> f64 {
    let l = (std::f64::consts::E + x).ln();
    -1.0 / ((std::f64::consts::E + x) * l * l)
}

/// The termination filter `D(x)` (Eq. 9).
#[inline]
pub fn filter(x: f64, tau: f64) -> f64 {
    if x <= tau {
        1.0
    } else {
        0.0
    }
}

/// The τ that solves `g(τ) = target` (the paper uses `target = 0.3`).
#[inline]
pub fn tau_for_g(target: f64) -> f64 {
    assert!(target > 0.0 && target < 1.0, "target must be in (0,1)");
    (1.0 / target).exp() - std::f64::consts::E
}

/// Numerically stable sigmoid (f64).
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// `σ'(x) = σ(x)(1 − σ(x))`.
#[inline]
pub fn sigmoid_prime(x: f64) -> f64 {
    let s = sigmoid(x);
    s * (1.0 - s)
}

/// Numerically stable `ln σ(x)`.
#[inline]
pub fn log_sigmoid(x: f64) -> f64 {
    if x > 30.0 {
        0.0
    } else if x < -30.0 {
        x
    } else {
        -(1.0 + (-x).exp()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g_is_one_at_zero_and_decreasing() {
        assert!((g_decay(0.0) - 1.0).abs() < 1e-12);
        let mut prev = g_decay(0.0);
        for &x in &[0.1, 1.0, 10.0, 100.0, 1e6] {
            let cur = g_decay(x);
            assert!(cur < prev, "g not decreasing at {x}");
            assert!(cur > 0.0);
            prev = cur;
        }
    }

    #[test]
    fn g_prime_matches_finite_difference() {
        for &x in &[0.0, 0.5, 3.0, 50.0] {
            let eps = 1e-5;
            let num = (g_decay(x + eps) - g_decay(x.max(eps) - eps).max(0.0)) / (2.0 * eps);
            // Use symmetric difference only where valid.
            let num = if x < eps {
                (g_decay(x + eps) - g_decay(x)) / eps
            } else {
                num
            };
            let ana = g_decay_prime(x);
            assert!(
                (num - ana).abs() < 1e-4,
                "x={x}: numeric {num} vs analytic {ana}"
            );
            assert!(ana < 0.0);
        }
    }

    #[test]
    fn tau_solves_the_paper_equation() {
        let tau = tau_for_g(0.3);
        assert!((g_decay(tau) - 0.3).abs() < 1e-9, "g(τ) = {}", g_decay(tau));
        // Sanity: e^{10/3} − e ≈ 25.3
        assert!((tau - 25.31).abs() < 0.1, "τ = {tau}");
    }

    #[test]
    fn filter_is_a_step() {
        assert_eq!(filter(1.0, 2.0), 1.0);
        assert_eq!(filter(2.0, 2.0), 1.0);
        assert_eq!(filter(2.0001, 2.0), 0.0);
    }

    #[test]
    fn sigmoid_identities() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid_prime(0.0) - 0.25).abs() < 1e-12);
        for &x in &[-2.0, 0.3, 1.7] {
            let eps = 1e-6;
            let num = (sigmoid(x + eps) - sigmoid(x - eps)) / (2.0 * eps);
            assert!((num - sigmoid_prime(x)).abs() < 1e-5);
        }
        assert!((log_sigmoid(2.0) - sigmoid(2.0).ln()).abs() < 1e-10);
        assert_eq!(log_sigmoid(-100.0), -100.0);
    }
}
