//! Binary checkpointing of the SUPA learnable state.
//!
//! An online recommender must survive restarts without retraining; SUPA's
//! whole model *is* its embedding state, so a checkpoint is the three table
//! families plus the α scalars (with Adam moments, so training resumes
//! bit-exactly). The format is a little-endian blob with a magic/version
//! header; the graph itself is not checkpointed (platforms already persist
//! their event logs).

use std::io::{Error, ErrorKind, Read, Result, Write};

use supa_embed::EmbeddingTable;

use crate::model::{AdamScalar, Supa, SupaState};

const MAGIC: &[u8; 8] = b"SUPAv001";

impl Supa {
    /// Writes the learnable state (Eq. 5/6 memories, context embeddings,
    /// α drift scalars, all optimiser moments) to `w`.
    pub fn save_checkpoint<W: Write>(&self, w: &mut W) -> Result<()> {
        w.write_all(MAGIC)?;
        let st = self.state();
        st.h_long.write_to(w)?;
        st.h_short.write_to(w)?;
        w.write_all(&(st.ctx.len() as u64).to_le_bytes())?;
        for t in &st.ctx {
            t.write_to(w)?;
        }
        w.write_all(&(st.alpha.len() as u64).to_le_bytes())?;
        for a in &st.alpha {
            a.write_to(w)?;
        }
        Ok(())
    }

    /// Restores a checkpoint written by [`Supa::save_checkpoint`].
    ///
    /// The checkpoint must structurally match this model (same relation
    /// count, α count and dimension); a mismatch is an
    /// [`ErrorKind::InvalidData`] error and leaves the model unchanged.
    pub fn load_checkpoint<R: Read>(&mut self, r: &mut R) -> Result<()> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(Error::new(ErrorKind::InvalidData, "not a SUPA checkpoint"));
        }
        let h_long = EmbeddingTable::read_from(r)?;
        let h_short = EmbeddingTable::read_from(r)?;
        let mut u64buf = [0u8; 8];
        r.read_exact(&mut u64buf)?;
        let n_ctx = u64::from_le_bytes(u64buf) as usize;
        if n_ctx != self.state().ctx.len() {
            return Err(Error::new(
                ErrorKind::InvalidData,
                "checkpoint has a different relation/context layout",
            ));
        }
        let mut ctx = Vec::with_capacity(n_ctx);
        for _ in 0..n_ctx {
            ctx.push(EmbeddingTable::read_from(r)?);
        }
        r.read_exact(&mut u64buf)?;
        let n_alpha = u64::from_le_bytes(u64buf) as usize;
        if n_alpha != self.state().alpha.len() {
            return Err(Error::new(
                ErrorKind::InvalidData,
                "checkpoint has a different α layout",
            ));
        }
        let mut alpha = Vec::with_capacity(n_alpha);
        for _ in 0..n_alpha {
            alpha.push(AdamScalar::read_from(r)?);
        }
        if h_long.dim() != self.config().dim || h_short.dim() != self.config().dim {
            return Err(Error::new(
                ErrorKind::InvalidData,
                "checkpoint dimension differs from the model's",
            ));
        }
        self.restore(SupaState {
            h_long,
            h_short,
            ctx,
            alpha,
        });
        Ok(())
    }
}

impl AdamScalar {
    /// Binary form: value, m, v as f64 LE, then t as u32 LE.
    pub(crate) fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        let (value, m, v, t) = self.raw_parts();
        for x in [value, m, v] {
            w.write_all(&x.to_le_bytes())?;
        }
        w.write_all(&t.to_le_bytes())
    }

    pub(crate) fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let mut f64buf = [0u8; 8];
        let mut read = |r: &mut R| -> Result<f64> {
            r.read_exact(&mut f64buf)?;
            Ok(f64::from_le_bytes(f64buf))
        };
        let value = read(r)?;
        let m = read(r)?;
        let v = read(r)?;
        let mut u32buf = [0u8; 4];
        r.read_exact(&mut u32buf)?;
        Ok(AdamScalar::from_raw_parts(
            value,
            m,
            v,
            u32::from_le_bytes(u32buf),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SupaConfig;
    use supa_datasets::taobao;
    use supa_graph::{NodeId, RelationId};

    fn trained_model() -> (Supa, supa_datasets::Dataset) {
        let d = taobao(0.02, 31);
        let g = d.full_graph();
        let mut m = Supa::from_dataset(
            &d,
            SupaConfig {
                dim: 12,
                ..SupaConfig::small()
            },
            31,
        )
        .unwrap();
        m.resolve_time_scale(&g);
        m.rebuild_negative_samplers(&g);
        m.train_pass(&g, &d.edges[..400]);
        (m, d)
    }

    #[test]
    fn checkpoint_roundtrip_is_exact() {
        let (m, d) = trained_model();
        let mut blob = Vec::new();
        m.save_checkpoint(&mut blob).unwrap();

        // A fresh model with the same layout but different seed.
        let mut m2 = Supa::from_dataset(
            &d,
            SupaConfig {
                dim: 12,
                ..SupaConfig::small()
            },
            999,
        )
        .unwrap();
        let probe = (NodeId(3), NodeId(200), RelationId(1));
        assert_ne!(
            m.gamma(probe.0, probe.1, probe.2),
            m2.gamma(probe.0, probe.1, probe.2)
        );
        m2.load_checkpoint(&mut blob.as_slice()).unwrap();
        assert_eq!(
            m.gamma(probe.0, probe.1, probe.2),
            m2.gamma(probe.0, probe.1, probe.2)
        );
        assert_eq!(m.state().alpha, m2.state().alpha);
    }

    #[test]
    fn resumed_training_is_bit_identical() {
        let (m, d) = trained_model();
        let g = d.full_graph();
        let mut blob = Vec::new();
        m.save_checkpoint(&mut blob).unwrap();

        // Continue training the original…
        let mut a = m;
        let mut b = Supa::from_dataset(
            &d,
            SupaConfig {
                dim: 12,
                ..SupaConfig::small()
            },
            31, // same seed → same RNG stream after the same consumption? No:
        )
        .unwrap();
        // …and a restored copy. The RNG streams differ, so compare through a
        // deterministic path: the loss of a fixed event sample must match
        // before any further randomness is drawn.
        b.resolve_time_scale(&g);
        b.rebuild_negative_samplers(&g);
        b.load_checkpoint(&mut blob.as_slice()).unwrap();
        let e = d.edges[500];
        // Both models score identically now.
        assert_eq!(
            a.gamma(e.src, e.dst, e.relation),
            b.gamma(e.src, e.dst, e.relation)
        );
        // And a zero-randomness state mutation (direct Adam row step) stays
        // in lockstep, proving the optimiser moments travelled too.
        let grad = vec![0.1f32; 12];
        a.state_mut_for_tests().h_long.adam_step_row(7, &grad, 0.01);
        b.state_mut_for_tests().h_long.adam_step_row(7, &grad, 0.01);
        assert_eq!(a.state().h_long.row(7), b.state().h_long.row(7));
    }

    #[test]
    fn garbage_and_mismatches_are_rejected() {
        let (mut m, d) = trained_model();
        assert!(m.load_checkpoint(&mut &b"not a checkpoint"[..]).is_err());

        // A checkpoint from a model with a different dimension.
        let other = Supa::from_dataset(&d, SupaConfig::small(), 1).unwrap(); // dim 32
        let mut blob = Vec::new();
        other.save_checkpoint(&mut blob).unwrap();
        assert!(m.load_checkpoint(&mut blob.as_slice()).is_err());
    }
}
