//! Crash-safe binary checkpointing of the SUPA learnable state.
//!
//! An online recommender must survive restarts without retraining; SUPA's
//! whole model *is* its embedding state, so a checkpoint is the three table
//! families plus the α scalars (with Adam moments, so training resumes
//! bit-exactly). The graph itself is not checkpointed (platforms already
//! persist their event logs).
//!
//! # Format (v2 / v3)
//!
//! Little-endian throughout:
//!
//! ```text
//! magic            8 bytes  b"SUPAv002" | b"SUPAv003"
//! events_consumed  u64      stream position the state corresponds to
//! payload_len      u64      byte length of the payload that follows
//! payload          ...      h_long, h_short, ctx count + tables, α count + αs
//! index_len        u64      (v3 only) byte length of the index section
//! index            ...      (v3 only) opaque serving-index bytes
//! crc32            u32      IEEE CRC-32 over everything after the magic
//!                           (header fields + payload + index section)
//! ```
//!
//! The v3 index section carries the serving layer's ANN index state as
//! *opaque bytes* — this crate does not depend on `supa-ann`; the serving
//! engine serializes/deserializes the section itself, and its own
//! per-index fingerprints catch corruption inside it independently of the
//! whole-file CRC. A v2 (or index-less v3) checkpoint simply yields no
//! index bytes, and the engine rebuilds — a named fallback, never silent
//! corruption.
//!
//! The CRC footer turns silent bit-rot and torn writes into clean load
//! errors. v1 checkpoints (`SUPAv001`, no header fields, no CRC) are still
//! readable. Loading stages every read into locals and only touches the
//! model after the whole blob has validated, so a failed load provably
//! leaves the model unchanged.
//!
//! [`CheckpointManager`] layers crash-safety on top: checkpoints are
//! written to a temp file, fsynced, then atomically renamed into place, and
//! [`CheckpointManager::resume`] walks existing checkpoints newest-first,
//! skipping truncated or corrupt ones with a reported reason.

use std::fs;
use std::io::{Error, ErrorKind, Read, Result, Write};
use std::path::{Path, PathBuf};

use supa_embed::EmbeddingTable;

use crate::framing::{crc32_finish, crc32_update, CRC_INIT};
use crate::model::{AdamScalar, Supa, SupaState};

const MAGIC_V1: &[u8; 8] = b"SUPAv001";
const MAGIC_V2: &[u8; 8] = b"SUPAv002";
const MAGIC_V3: &[u8; 8] = b"SUPAv003";

/// Metadata recovered from a checkpoint header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Number of stream events the checkpointed state had consumed (0 for
    /// v1 checkpoints, which predate the field).
    pub events_consumed: u64,
    /// Format version (1, 2 or 3).
    pub version: u8,
}

fn write_state_body<W: Write>(st: &SupaState, w: &mut W) -> Result<()> {
    st.h_long.write_to(w)?;
    st.h_short.write_to(w)?;
    w.write_all(&(st.ctx.len() as u64).to_le_bytes())?;
    for t in &st.ctx {
        t.write_to(w)?;
    }
    w.write_all(&(st.alpha.len() as u64).to_le_bytes())?;
    for a in &st.alpha {
        a.write_to(w)?;
    }
    Ok(())
}

fn read_state_body<R: Read>(r: &mut R) -> Result<SupaState> {
    let h_long = EmbeddingTable::read_from(r)?;
    let h_short = EmbeddingTable::read_from(r)?;
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf)?;
    let n_ctx = u64::from_le_bytes(u64buf) as usize;
    // An absurd table count means a corrupt length field; bail before
    // looping on it.
    if n_ctx > u16::MAX as usize {
        return Err(Error::new(
            ErrorKind::InvalidData,
            "corrupt checkpoint: implausible context table count",
        ));
    }
    let mut ctx = Vec::with_capacity(n_ctx);
    for _ in 0..n_ctx {
        ctx.push(EmbeddingTable::read_from(r)?);
    }
    r.read_exact(&mut u64buf)?;
    let n_alpha = u64::from_le_bytes(u64buf) as usize;
    if n_alpha > u16::MAX as usize {
        return Err(Error::new(
            ErrorKind::InvalidData,
            "corrupt checkpoint: implausible α count",
        ));
    }
    let mut alpha = Vec::with_capacity(n_alpha);
    for _ in 0..n_alpha {
        alpha.push(AdamScalar::read_from(r)?);
    }
    Ok(SupaState {
        h_long,
        h_short,
        ctx,
        alpha,
    })
}

impl Supa {
    /// Checks that a deserialised state structurally matches this model
    /// (same relation count, α count and dimension).
    fn validate_state_layout(&self, st: &SupaState) -> Result<()> {
        if st.ctx.len() != self.state().ctx.len() {
            return Err(Error::new(
                ErrorKind::InvalidData,
                "checkpoint has a different relation/context layout",
            ));
        }
        if st.alpha.len() != self.state().alpha.len() {
            return Err(Error::new(
                ErrorKind::InvalidData,
                "checkpoint has a different α layout",
            ));
        }
        if st.h_long.dim() != self.config().dim || st.h_short.dim() != self.config().dim {
            return Err(Error::new(
                ErrorKind::InvalidData,
                "checkpoint dimension differs from the model's",
            ));
        }
        Ok(())
    }

    /// Writes the learnable state (Eq. 5/6 memories, context embeddings,
    /// α drift scalars, all optimiser moments) to `w` in the v2 format with
    /// `events_consumed = 0`.
    pub fn save_checkpoint<W: Write>(&self, w: &mut W) -> Result<()> {
        self.save_checkpoint_at(w, 0)
    }

    /// Like [`Supa::save_checkpoint`], recording the stream position
    /// (`events_consumed`) the state corresponds to, so a restart can skip
    /// already-trained events.
    pub fn save_checkpoint_at<W: Write>(&self, w: &mut W, events_consumed: u64) -> Result<()> {
        let mut payload = Vec::new();
        write_state_body(self.state(), &mut payload)?;
        let events = events_consumed.to_le_bytes();
        let len = (payload.len() as u64).to_le_bytes();
        let mut crc = CRC_INIT;
        crc = crc32_update(crc, &events);
        crc = crc32_update(crc, &len);
        crc = crc32_update(crc, &payload);
        w.write_all(MAGIC_V2)?;
        w.write_all(&events)?;
        w.write_all(&len)?;
        w.write_all(&payload)?;
        w.write_all(&crc32_finish(crc).to_le_bytes())?;
        Ok(())
    }

    /// Writes a v3 checkpoint: the learnable state plus an opaque serving
    /// `index` section (the serving engine's serialized ANN indexes), all
    /// under one CRC. Restoring with
    /// [`Supa::load_checkpoint_meta_with_index`] hands the bytes back so a
    /// resume can skip the index rebuild.
    pub fn save_checkpoint_with_index<W: Write>(
        &self,
        w: &mut W,
        events_consumed: u64,
        index: &[u8],
    ) -> Result<()> {
        let mut payload = Vec::new();
        write_state_body(self.state(), &mut payload)?;
        let events = events_consumed.to_le_bytes();
        let len = (payload.len() as u64).to_le_bytes();
        let index_len = (index.len() as u64).to_le_bytes();
        let mut crc = CRC_INIT;
        crc = crc32_update(crc, &events);
        crc = crc32_update(crc, &len);
        crc = crc32_update(crc, &payload);
        crc = crc32_update(crc, &index_len);
        crc = crc32_update(crc, index);
        w.write_all(MAGIC_V3)?;
        w.write_all(&events)?;
        w.write_all(&len)?;
        w.write_all(&payload)?;
        w.write_all(&index_len)?;
        w.write_all(index)?;
        w.write_all(&crc32_finish(crc).to_le_bytes())?;
        Ok(())
    }

    /// Restores a checkpoint written by [`Supa::save_checkpoint`] (either
    /// format version).
    ///
    /// The checkpoint must pass its CRC (v2) and structurally match this
    /// model (same relation count, α count and dimension); any failure is
    /// an [`ErrorKind::InvalidData`] error and leaves the model unchanged.
    pub fn load_checkpoint<R: Read>(&mut self, r: &mut R) -> Result<()> {
        self.load_checkpoint_meta(r).map(|_| ())
    }

    /// Like [`Supa::load_checkpoint`], additionally returning the header
    /// metadata (stream position, format version).
    pub fn load_checkpoint_meta<R: Read>(&mut self, r: &mut R) -> Result<CheckpointMeta> {
        self.load_checkpoint_meta_with_index(r)
            .map(|(meta, _)| meta)
    }

    /// Like [`Supa::load_checkpoint_meta`], additionally returning the v3
    /// opaque index section. `None` for v1/v2 checkpoints and for v3
    /// checkpoints saved without an index — the caller's rebuild fallback,
    /// reported by version, never silently wrong (the whole file is CRC'd).
    pub fn load_checkpoint_meta_with_index<R: Read>(
        &mut self,
        r: &mut R,
    ) -> Result<(CheckpointMeta, Option<Vec<u8>>)> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        let version: u8 = if &magic == MAGIC_V3 {
            3
        } else if &magic == MAGIC_V2 {
            2
        } else if &magic == MAGIC_V1 {
            1
        } else {
            return Err(Error::new(ErrorKind::InvalidData, "not a SUPA checkpoint"));
        };
        if version == 1 {
            // Legacy format: bare body, no stream position, no CRC.
            let staged = read_state_body(r)?;
            self.validate_state_layout(&staged)?;
            self.restore(staged);
            return Ok((
                CheckpointMeta {
                    events_consumed: 0,
                    version: 1,
                },
                None,
            ));
        }
        let mut events_buf = [0u8; 8];
        r.read_exact(&mut events_buf)?;
        let mut len_buf = [0u8; 8];
        r.read_exact(&mut len_buf)?;
        let payload_len = u64::from_le_bytes(len_buf);
        // `take` + `read_to_end` instead of a `with_capacity` prealloc:
        // a corrupt length field must not OOM us before the CRC check.
        let mut payload = Vec::new();
        let n = r.take(payload_len).read_to_end(&mut payload)?;
        if n as u64 != payload_len {
            return Err(Error::new(
                ErrorKind::UnexpectedEof,
                "truncated checkpoint: payload shorter than header claims",
            ));
        }
        // v3 appends the opaque index section before the CRC.
        let mut index_len_buf = [0u8; 8];
        let mut index = Vec::new();
        if version == 3 {
            r.read_exact(&mut index_len_buf).map_err(|_| {
                Error::new(
                    ErrorKind::UnexpectedEof,
                    "truncated checkpoint: missing index length",
                )
            })?;
            let index_len = u64::from_le_bytes(index_len_buf);
            let n = r.take(index_len).read_to_end(&mut index)?;
            if n as u64 != index_len {
                return Err(Error::new(
                    ErrorKind::UnexpectedEof,
                    "truncated checkpoint: index shorter than header claims",
                ));
            }
        }
        let mut crc_buf = [0u8; 4];
        r.read_exact(&mut crc_buf).map_err(|_| {
            Error::new(
                ErrorKind::UnexpectedEof,
                "truncated checkpoint: missing CRC",
            )
        })?;
        let mut crc = CRC_INIT;
        crc = crc32_update(crc, &events_buf);
        crc = crc32_update(crc, &len_buf);
        crc = crc32_update(crc, &payload);
        if version == 3 {
            crc = crc32_update(crc, &index_len_buf);
            crc = crc32_update(crc, &index);
        }
        if crc32_finish(crc) != u32::from_le_bytes(crc_buf) {
            return Err(Error::new(
                ErrorKind::InvalidData,
                "corrupt checkpoint: CRC mismatch",
            ));
        }
        let mut cursor = payload.as_slice();
        let staged = read_state_body(&mut cursor)?;
        if !cursor.is_empty() {
            return Err(Error::new(
                ErrorKind::InvalidData,
                "corrupt checkpoint: trailing bytes after state",
            ));
        }
        self.validate_state_layout(&staged)?;
        self.restore(staged);
        Ok((
            CheckpointMeta {
                events_consumed: u64::from_le_bytes(events_buf),
                version,
            },
            if version == 3 && !index.is_empty() {
                Some(index)
            } else {
                None
            },
        ))
    }
}

impl AdamScalar {
    /// Binary form: value, m, v as f64 LE, then t as u32 LE.
    pub(crate) fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        let (value, m, v, t) = self.raw_parts();
        for x in [value, m, v] {
            w.write_all(&x.to_le_bytes())?;
        }
        w.write_all(&t.to_le_bytes())
    }

    pub(crate) fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let mut f64buf = [0u8; 8];
        let mut read = |r: &mut R| -> Result<f64> {
            r.read_exact(&mut f64buf)?;
            Ok(f64::from_le_bytes(f64buf))
        };
        let value = read(r)?;
        let m = read(r)?;
        let v = read(r)?;
        let mut u32buf = [0u8; 4];
        r.read_exact(&mut u32buf)?;
        Ok(AdamScalar::from_raw_parts(
            value,
            m,
            v,
            u32::from_le_bytes(u32buf),
        ))
    }
}

/// What [`CheckpointManager::resume`] found on disk.
#[derive(Debug)]
pub struct ResumeOutcome {
    /// The checkpoint that loaded, with its stream position — `None` if no
    /// valid checkpoint existed.
    pub loaded: Option<(PathBuf, u64)>,
    /// Checkpoints that were skipped, newest-first, with the reason each
    /// failed to load.
    pub skipped: Vec<(PathBuf, String)>,
}

/// Rotating on-disk checkpoint store with atomic writes.
///
/// Each save goes to `ckpt-<seq>.supa` via write-temp + fsync + rename, so
/// a crash mid-write can never clobber an existing good checkpoint — at
/// worst it leaves a stale `.tmp` file, which is ignored (and cleaned up on
/// the next save). The newest `keep` checkpoints are retained.
pub struct CheckpointManager {
    dir: PathBuf,
    keep: usize,
    next_seq: u64,
}

const CKPT_PREFIX: &str = "ckpt-";
const CKPT_SUFFIX: &str = ".supa";

fn parse_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix(CKPT_PREFIX)?.strip_suffix(CKPT_SUFFIX)?;
    digits.parse().ok()
}

impl CheckpointManager {
    /// Opens (creating if needed) a checkpoint directory, keeping the
    /// newest `keep` checkpoints. `keep` is clamped to at least 1.
    pub fn new(dir: impl Into<PathBuf>, keep: usize) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let next_seq = Self::scan(&dir)?
            .last()
            .map(|&(seq, _)| seq + 1)
            .unwrap_or(0);
        Ok(CheckpointManager {
            dir,
            keep: keep.max(1),
            next_seq,
        })
    }

    /// The directory checkpoints live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Existing checkpoints, oldest-first, as `(sequence, path)`.
    pub fn list(&self) -> Result<Vec<(u64, PathBuf)>> {
        Self::scan(&self.dir)
    }

    fn scan(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
        let mut found = Vec::new();
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            if let Some(seq) = parse_seq(&path) {
                found.push((seq, path));
            }
        }
        found.sort_unstable_by_key(|&(seq, _)| seq);
        Ok(found)
    }

    /// Atomically writes a new checkpoint of `model` at stream position
    /// `events_consumed`, then prunes beyond the retention limit. Returns
    /// the final path.
    pub fn save(&mut self, model: &Supa, events_consumed: u64) -> Result<PathBuf> {
        self.save_inner(model, events_consumed, None)
    }

    /// Like [`CheckpointManager::save`], writing the v3 format with the
    /// given opaque serving-index section (the serving engine's serialized
    /// ANN indexes), so a resume can skip the index rebuild.
    pub fn save_with_index(
        &mut self,
        model: &Supa,
        events_consumed: u64,
        index: &[u8],
    ) -> Result<PathBuf> {
        self.save_inner(model, events_consumed, Some(index))
    }

    fn save_inner(
        &mut self,
        model: &Supa,
        events_consumed: u64,
        index: Option<&[u8]>,
    ) -> Result<PathBuf> {
        let seq = self.next_seq;
        let final_path = self
            .dir
            .join(format!("{CKPT_PREFIX}{seq:010}{CKPT_SUFFIX}"));
        let tmp_path = self.dir.join(format!(".tmp-{seq:010}"));
        {
            let mut f = fs::File::create(&tmp_path)?;
            let mut w = std::io::BufWriter::new(&mut f);
            match index {
                Some(index) => model.save_checkpoint_with_index(&mut w, events_consumed, index)?,
                None => model.save_checkpoint_at(&mut w, events_consumed)?,
            }
            w.flush()?;
            drop(w);
            // Durability point: the bytes must be on disk *before* the
            // rename publishes the file, or a crash could publish garbage.
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        #[cfg(unix)]
        {
            // Persist the rename itself (directory entry).
            if let Ok(d) = fs::File::open(&self.dir) {
                let _ = d.sync_all();
            }
        }
        self.next_seq = seq + 1;
        self.prune()?;
        Ok(final_path)
    }

    fn prune(&self) -> Result<()> {
        let found = Self::scan(&self.dir)?;
        if found.len() > self.keep {
            for (_, path) in &found[..found.len() - self.keep] {
                let _ = fs::remove_file(path);
            }
        }
        // Stale temp files from interrupted saves are dead weight.
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let is_tmp = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(".tmp-"));
            if is_tmp {
                let _ = fs::remove_file(&path);
            }
        }
        Ok(())
    }

    /// Loads the newest valid checkpoint into `model`, skipping (and
    /// reporting) any that are truncated, corrupt, or structurally
    /// incompatible. The model is untouched unless a checkpoint loads.
    pub fn resume(&self, model: &mut Supa) -> Result<ResumeOutcome> {
        self.resume_with_index(model).map(|(outcome, _)| outcome)
    }

    /// Like [`CheckpointManager::resume`], additionally returning the
    /// loaded checkpoint's opaque index section (`None` when the loaded
    /// checkpoint is v1/v2 or carries no index — the caller rebuilds).
    pub fn resume_with_index(&self, model: &mut Supa) -> Result<(ResumeOutcome, Option<Vec<u8>>)> {
        let mut outcome = ResumeOutcome {
            loaded: None,
            skipped: Vec::new(),
        };
        let mut index = None;
        for (_, path) in Self::scan(&self.dir)?.into_iter().rev() {
            let attempt = fs::File::open(&path).and_then(|f| {
                model.load_checkpoint_meta_with_index(&mut std::io::BufReader::new(f))
            });
            match attempt {
                Ok((meta, idx)) => {
                    outcome.loaded = Some((path, meta.events_consumed));
                    index = idx;
                    break;
                }
                Err(e) => outcome.skipped.push((path, e.to_string())),
            }
        }
        Ok((outcome, index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SupaConfig;
    use supa_datasets::taobao;
    use supa_graph::{NodeId, RelationId};

    fn trained_model() -> (Supa, supa_datasets::Dataset) {
        let d = taobao(0.02, 31);
        let g = d.full_graph();
        let mut m = Supa::from_dataset(
            &d,
            SupaConfig {
                dim: 12,
                ..SupaConfig::small()
            },
            31,
        )
        .unwrap();
        m.resolve_time_scale(&g);
        m.rebuild_negative_samplers(&g);
        m.train_pass(&g, &d.edges[..400]);
        (m, d)
    }

    fn fresh_model(d: &supa_datasets::Dataset, seed: u64) -> Supa {
        Supa::from_dataset(
            d,
            SupaConfig {
                dim: 12,
                ..SupaConfig::small()
            },
            seed,
        )
        .unwrap()
    }

    #[test]
    fn checkpoint_roundtrip_is_exact() {
        let (m, d) = trained_model();
        let mut blob = Vec::new();
        m.save_checkpoint(&mut blob).unwrap();

        // A fresh model with the same layout but different seed.
        let mut m2 = fresh_model(&d, 999);
        let probe = (NodeId(3), NodeId(200), RelationId(1));
        assert_ne!(
            m.gamma(probe.0, probe.1, probe.2),
            m2.gamma(probe.0, probe.1, probe.2)
        );
        m2.load_checkpoint(&mut blob.as_slice()).unwrap();
        assert_eq!(
            m.gamma(probe.0, probe.1, probe.2),
            m2.gamma(probe.0, probe.1, probe.2)
        );
        assert_eq!(m.state().alpha, m2.state().alpha);
    }

    #[test]
    fn resumed_training_is_bit_identical() {
        let (m, d) = trained_model();
        let g = d.full_graph();
        let mut blob = Vec::new();
        m.save_checkpoint(&mut blob).unwrap();

        // Continue training the original…
        let mut a = m;
        let mut b = fresh_model(&d, 31);
        // …and a restored copy. The RNG streams differ, so compare through a
        // deterministic path: the loss of a fixed event sample must match
        // before any further randomness is drawn.
        b.resolve_time_scale(&g);
        b.rebuild_negative_samplers(&g);
        b.load_checkpoint(&mut blob.as_slice()).unwrap();
        let e = d.edges[500];
        // Both models score identically now.
        assert_eq!(
            a.gamma(e.src, e.dst, e.relation),
            b.gamma(e.src, e.dst, e.relation)
        );
        // And a zero-randomness state mutation (direct Adam row step) stays
        // in lockstep, proving the optimiser moments travelled too.
        let grad = vec![0.1f32; 12];
        a.state_mut_for_tests().h_long.adam_step_row(7, &grad, 0.01);
        b.state_mut_for_tests().h_long.adam_step_row(7, &grad, 0.01);
        assert_eq!(a.state().h_long.row(7), b.state().h_long.row(7));
    }

    #[test]
    fn garbage_and_mismatches_are_rejected() {
        let (mut m, d) = trained_model();
        assert!(m.load_checkpoint(&mut &b"not a checkpoint"[..]).is_err());

        // A checkpoint from a model with a different dimension.
        let other = Supa::from_dataset(&d, SupaConfig::small(), 1).unwrap(); // dim 32
        let mut blob = Vec::new();
        other.save_checkpoint(&mut blob).unwrap();
        assert!(m.load_checkpoint(&mut blob.as_slice()).is_err());
    }

    #[test]
    fn header_carries_stream_position() {
        let (m, d) = trained_model();
        let mut blob = Vec::new();
        m.save_checkpoint_at(&mut blob, 12345).unwrap();
        let mut m2 = fresh_model(&d, 7);
        let meta = m2.load_checkpoint_meta(&mut blob.as_slice()).unwrap();
        assert_eq!(meta.events_consumed, 12345);
        assert_eq!(meta.version, 2);
    }

    #[test]
    fn every_flipped_byte_region_is_detected_and_model_unchanged() {
        let (m, d) = trained_model();
        let mut blob = Vec::new();
        m.save_checkpoint_at(&mut blob, 777).unwrap();

        let mut m2 = fresh_model(&d, 55);
        let before = m2.snapshot();
        // Flip one byte in the header, middle of the payload, and the CRC.
        for &pos in &[10usize, blob.len() / 2, blob.len() - 2] {
            let mut bad = blob.clone();
            bad[pos] ^= 0x40;
            let err = m2.load_checkpoint(&mut bad.as_slice()).unwrap_err();
            assert!(
                err.to_string().contains("CRC")
                    || err.kind() == ErrorKind::UnexpectedEof
                    || err.kind() == ErrorKind::InvalidData,
                "unexpected error: {err}"
            );
        }
        // Provably untouched after all the failed loads.
        assert_eq!(m2.state().h_long.data(), before.h_long.data());
        assert_eq!(m2.state().alpha, before.alpha);
    }

    #[test]
    fn truncation_is_a_clean_error() {
        let (m, d) = trained_model();
        let mut blob = Vec::new();
        m.save_checkpoint(&mut blob).unwrap();
        let mut m2 = fresh_model(&d, 55);
        for cut in [blob.len() - 1, blob.len() / 2, 9, 20] {
            let mut bad = blob.clone();
            bad.truncate(cut);
            assert!(
                m2.load_checkpoint(&mut bad.as_slice()).is_err(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn v3_roundtrip_carries_the_index_section() {
        let (m, d) = trained_model();
        let index: Vec<u8> = (0..1000u32).flat_map(|x| x.to_le_bytes()).collect();
        let mut blob = Vec::new();
        m.save_checkpoint_with_index(&mut blob, 4242, &index)
            .unwrap();

        let mut m2 = fresh_model(&d, 9);
        let (meta, got) = m2
            .load_checkpoint_meta_with_index(&mut blob.as_slice())
            .unwrap();
        assert_eq!(meta.version, 3);
        assert_eq!(meta.events_consumed, 4242);
        assert_eq!(got.as_deref(), Some(index.as_slice()));
        assert_eq!(m.state().h_long.data(), m2.state().h_long.data());

        // The plain meta loader accepts v3 too (drops the index).
        let mut m3 = fresh_model(&d, 10);
        let meta = m3.load_checkpoint_meta(&mut blob.as_slice()).unwrap();
        assert_eq!(meta.version, 3);

        // An empty index section reads back as None (rebuild fallback).
        let mut empty = Vec::new();
        m.save_checkpoint_with_index(&mut empty, 1, &[]).unwrap();
        let (_, got) = m2
            .load_checkpoint_meta_with_index(&mut empty.as_slice())
            .unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn v2_checkpoints_yield_no_index_bytes() {
        let (m, d) = trained_model();
        let mut blob = Vec::new();
        m.save_checkpoint_at(&mut blob, 77).unwrap();
        let mut m2 = fresh_model(&d, 9);
        let (meta, idx) = m2
            .load_checkpoint_meta_with_index(&mut blob.as_slice())
            .unwrap();
        assert_eq!(meta.version, 2);
        assert!(
            idx.is_none(),
            "v2 must fall back to rebuild, not invent bytes"
        );
    }

    #[test]
    fn v3_index_corruption_fails_the_crc_and_leaves_the_model_unchanged() {
        let (m, d) = trained_model();
        let index = vec![0xABu8; 512];
        let mut blob = Vec::new();
        m.save_checkpoint_with_index(&mut blob, 5, &index).unwrap();
        let mut m2 = fresh_model(&d, 9);
        let before = m2.snapshot();
        // Flip a byte inside the index section (it sits just before the CRC).
        let mut bad = blob.clone();
        let pos = blob.len() - 100;
        bad[pos] ^= 0x10;
        let err = m2
            .load_checkpoint_meta_with_index(&mut bad.as_slice())
            .unwrap_err();
        assert!(err.to_string().contains("CRC"), "{err}");
        // Truncating the index mid-section is a clean EOF error.
        let mut cut = blob.clone();
        cut.truncate(blob.len() - 50);
        assert!(m2
            .load_checkpoint_meta_with_index(&mut cut.as_slice())
            .is_err());
        assert_eq!(m2.state().h_long.data(), before.h_long.data());
    }

    #[test]
    fn manager_save_with_index_resumes_with_the_bytes() {
        let dir = tempdir("with-index");
        let (m, d) = trained_model();
        let mut mgr = CheckpointManager::new(&dir, 3).unwrap();
        // Mixed history: a v2 save, then a v3 save with index bytes.
        mgr.save(&m, 100).unwrap();
        let index = b"opaque serving index bytes".to_vec();
        mgr.save_with_index(&m, 200, &index).unwrap();

        let mut m2 = fresh_model(&d, 5);
        let (out, got) = mgr.resume_with_index(&mut m2).unwrap();
        assert_eq!(out.loaded.as_ref().unwrap().1, 200);
        assert_eq!(got.as_deref(), Some(index.as_slice()));

        // Corrupt the newest: resume falls back to the v2 save, no index.
        let newest = mgr.list().unwrap().last().unwrap().1.clone();
        let blob = fs::read(&newest).unwrap();
        fs::write(&newest, &blob[..blob.len() - 8]).unwrap();
        let mut m3 = fresh_model(&d, 5);
        let (out, got) = mgr.resume_with_index(&mut m3).unwrap();
        assert_eq!(out.loaded.as_ref().unwrap().1, 100);
        assert!(got.is_none());
        assert_eq!(out.skipped.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_v1_checkpoints_still_load() {
        let (m, d) = trained_model();
        let mut blob = Vec::new();
        blob.extend_from_slice(MAGIC_V1);
        write_state_body(m.state(), &mut blob).unwrap();
        let mut m2 = fresh_model(&d, 999);
        let meta = m2.load_checkpoint_meta(&mut blob.as_slice()).unwrap();
        assert_eq!(meta.version, 1);
        assert_eq!(meta.events_consumed, 0);
        assert_eq!(m.state().h_long.data(), m2.state().h_long.data());
    }

    #[test]
    fn manager_rotates_and_resumes_newest() {
        let dir = tempdir("rotate");
        let (mut m, d) = trained_model();
        let mut mgr = CheckpointManager::new(&dir, 2).unwrap();
        mgr.save(&m, 100).unwrap();
        // Change the state between saves so the checkpoints differ.
        m.state_mut_for_tests().h_long.row_mut(0)[0] = 42.0;
        mgr.save(&m, 200).unwrap();
        m.state_mut_for_tests().h_long.row_mut(0)[0] = 43.0;
        mgr.save(&m, 300).unwrap();
        let listed = mgr.list().unwrap();
        assert_eq!(listed.len(), 2, "retention limit");
        assert_eq!(listed[0].0, 1);
        assert_eq!(listed[1].0, 2);

        let mut m2 = fresh_model(&d, 5);
        let out = mgr.resume(&mut m2).unwrap();
        let (path, events) = out.loaded.expect("should resume");
        assert_eq!(events, 300);
        assert!(path.to_string_lossy().contains("ckpt-0000000002"));
        assert!(out.skipped.is_empty());
        assert_eq!(m2.state().h_long.row(0)[0], 43.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_skips_corrupt_newest_with_reason() {
        let dir = tempdir("skip-corrupt");
        let (mut m, d) = trained_model();
        let mut mgr = CheckpointManager::new(&dir, 3).unwrap();
        mgr.save(&m, 100).unwrap();
        m.state_mut_for_tests().h_long.row_mut(0)[0] = 7.0;
        let newest = mgr.save(&m, 200).unwrap();
        // Truncate the newest checkpoint, as a crash mid-write would have
        // (had the write not been atomic — simulates torn storage).
        let blob = fs::read(&newest).unwrap();
        fs::write(&newest, &blob[..blob.len() / 2]).unwrap();

        let mut m2 = fresh_model(&d, 5);
        let out = mgr.resume(&mut m2).unwrap();
        let (_, events) = out.loaded.expect("older checkpoint should load");
        assert_eq!(events, 100, "must fall back to the previous checkpoint");
        assert_eq!(out.skipped.len(), 1);
        assert!(out.skipped[0].0.ends_with("ckpt-0000000001.supa"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_on_empty_dir_is_a_noop() {
        let dir = tempdir("empty");
        let (_, d) = trained_model();
        let mgr = CheckpointManager::new(&dir, 2).unwrap();
        let mut m = fresh_model(&d, 5);
        let before = m.snapshot();
        let out = mgr.resume(&mut m).unwrap();
        assert!(out.loaded.is_none());
        assert!(out.skipped.is_empty());
        assert_eq!(m.state().h_long.data(), before.h_long.data());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manager_continues_sequence_after_reopen() {
        let dir = tempdir("reopen");
        let (m, _) = trained_model();
        let mut mgr = CheckpointManager::new(&dir, 5).unwrap();
        mgr.save(&m, 1).unwrap();
        drop(mgr);
        let mut mgr2 = CheckpointManager::new(&dir, 5).unwrap();
        let p = mgr2.save(&m, 2).unwrap();
        assert!(p.to_string_lossy().contains("ckpt-0000000001"));
        std::fs::remove_dir_all(&dir).ok();
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("supa-ckpt-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }
}
