//! SUPA hyper-parameters (paper §IV-C).

use crate::decay::tau_for_g;

/// Hyper-parameters of the SUPA model.
#[derive(Debug, Clone, PartialEq)]
pub struct SupaConfig {
    /// Embedding dimension `d` (paper: 128; scaled experiments use 32).
    pub dim: usize,
    /// Number of walks `k` per interactive node.
    pub num_walks: usize,
    /// Walk length `l`.
    pub walk_length: usize,
    /// Negatives per flow `N_neg` (paper default 5).
    pub n_neg: usize,
    /// Termination threshold τ in *scaled* time units (see `time_scale`);
    /// the paper sets it from `g(τ) = 0.3`.
    pub tau: f64,
    /// Adam learning rate (paper: 3e-3).
    pub learning_rate: f32,
    /// Decoupled weight decay (paper: 1e-4).
    pub weight_decay: f32,
    /// Initial value of every node-type drift parameter `α_o`.
    pub alpha_init: f64,
    /// Embedding init scale (`U(-s, s)`).
    pub init_scale: f32,
    /// Divisor applied to raw time differences before they enter `g(·)` and
    /// the τ filter. `0.0` means *auto*: pick `max_time / 100` at fit time so
    /// typical intervals land where `g` is responsive regardless of whether
    /// timestamps are seconds or epochs.
    pub time_scale: f64,
    /// Exponent of the negative-sampling distribution (skip-gram's 0.75).
    pub neg_power: f64,
}

impl Default for SupaConfig {
    fn default() -> Self {
        SupaConfig {
            dim: 128,
            num_walks: 5,
            walk_length: 3,
            n_neg: 5,
            tau: tau_for_g(0.3),
            learning_rate: 3e-3,
            weight_decay: 1e-4,
            alpha_init: 0.0,
            init_scale: 0.1,
            time_scale: 0.0,
            neg_power: 0.75,
        }
    }
}

impl SupaConfig {
    /// The scaled-experiment configuration used throughout this repo's
    /// benches: `d = 32`, paper defaults elsewhere.
    pub fn small() -> Self {
        SupaConfig {
            dim: 32,
            learning_rate: 1e-2,
            ..Default::default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics on zero dimensions/walks or a non-positive τ.
    pub fn validate(&self) {
        assert!(self.dim > 0, "dim must be positive");
        assert!(self.num_walks > 0, "num_walks must be positive");
        assert!(self.walk_length > 0, "walk_length must be positive");
        assert!(self.tau > 0.0, "tau must be positive");
        assert!(self.time_scale >= 0.0, "time_scale must be non-negative");
        assert!(self.learning_rate > 0.0, "learning rate must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SupaConfig::default();
        assert_eq!(c.dim, 128);
        assert_eq!(c.n_neg, 5);
        assert!((c.learning_rate - 3e-3).abs() < 1e-9);
        assert!((c.weight_decay - 1e-4).abs() < 1e-9);
        assert!((crate::decay::g_decay(c.tau) - 0.3).abs() < 1e-9);
        c.validate();
    }

    #[test]
    fn small_profile_shrinks_dim_only_structurally() {
        let c = SupaConfig::small();
        assert_eq!(c.dim, 32);
        assert_eq!(c.n_neg, SupaConfig::default().n_neg);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "dim must be positive")]
    fn zero_dim_rejected() {
        SupaConfig {
            dim: 0,
            ..Default::default()
        }
        .validate();
    }
}
