//! The SUPA model state and construction.
//!
//! State per node (paper §III-C): a long-term memory `h^L`, a short-term
//! memory `h^S`, and one context embedding `c^r` per relation — all
//! learnable rows in [`EmbeddingTable`]s. Per node *type* there is one
//! scalar drift parameter `α_o` (through a sigmoid it scales how fast the
//! short-term memory is forgotten). Everything trains with per-row lazy
//! Adam.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use supa_datasets::Dataset;
use supa_embed::{EmbeddingTable, NegativeSampler};
use supa_graph::{
    Dmhg, GraphError, GraphSchema, MetapathSchema, MetapathWalker, NodeId, RelationId, Timestamp,
};

use crate::config::SupaConfig;
use crate::decay::{g_decay, sigmoid};
use crate::variants::SupaVariant;

/// A scalar parameter with its own Adam state (used for the `α_o`s).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdamScalar {
    /// Current value.
    pub value: f64,
    m: f64,
    v: f64,
    t: u32,
}

impl AdamScalar {
    /// A fresh scalar.
    pub fn new(value: f64) -> Self {
        AdamScalar {
            value,
            m: 0.0,
            v: 0.0,
            t: 0,
        }
    }

    /// Decomposes into `(value, m, v, t)` for checkpointing.
    pub(crate) fn raw_parts(&self) -> (f64, f64, f64, u32) {
        (self.value, self.m, self.v, self.t)
    }

    /// Rebuilds from checkpointed parts.
    pub(crate) fn from_raw_parts(value: f64, m: f64, v: f64, t: u32) -> Self {
        AdamScalar { value, m, v, t }
    }

    /// One Adam step.
    pub fn step(&mut self, grad: f64, lr: f64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.t += 1;
        self.m = B1 * self.m + (1.0 - B1) * grad;
        self.v = B2 * self.v + (1.0 - B2) * grad * grad;
        let mhat = self.m / (1.0 - B1.powi(self.t as i32));
        let vhat = self.v / (1.0 - B2.powi(self.t as i32));
        self.value -= lr * mhat / (vhat.sqrt() + EPS);
    }
}

/// The complete learnable state of a SUPA model — snapshot/restore this for
/// InsLearn's best-model rollback.
#[derive(Debug, Clone)]
pub struct SupaState {
    /// Long-term memories `h^L` (n × d).
    pub h_long: EmbeddingTable,
    /// Short-term memories `h^S` (n × d).
    pub h_short: EmbeddingTable,
    /// Context embeddings `c^r`, one table per relation (or a single shared
    /// table under `SUPA_se`).
    pub ctx: Vec<EmbeddingTable>,
    /// Node-type drift parameters `α_o` (a single entry under `SUPA_sn`).
    pub alpha: Vec<AdamScalar>,
}

impl SupaState {
    /// Whether every parameter is finite and every embedding magnitude is
    /// at most `max_abs` — the divergence guard's health probe (`max_abs`
    /// should be finite; NaN/±∞ entries always fail the check through
    /// [`EmbeddingTable::max_abs_value`] reporting ∞).
    pub fn is_healthy(&self, max_abs: f32) -> bool {
        if !self.alpha.iter().all(|a| a.value.is_finite()) {
            return false;
        }
        [&self.h_long, &self.h_short]
            .into_iter()
            .chain(self.ctx.iter())
            .all(|t| t.max_abs_value() <= max_abs)
    }
}

/// The scalar pieces of a node's target embedding (Eq. 5) — everything the
/// analytic gradients need besides the `h*` vector itself, which the hot
/// path writes into a reusable scratch buffer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TargetMeta {
    /// The forget factor `g(σ(α)·Δ)`.
    pub forget: f64,
    /// The decay input `x = σ(α)·Δ`.
    pub x: f64,
    /// The scaled inactive interval `Δ_V`.
    pub delta: f64,
    /// Index into `state.alpha`.
    pub alpha_idx: usize,
}

/// [`TargetMeta`] plus an owned `h*` vector — the allocating convenience
/// form, used by the white-box tests.
#[cfg(test)]
#[derive(Debug, Clone)]
pub(crate) struct TargetParts {
    /// `h* = h^L + h^S · g(σ(α)·Δ)` (or `h^L` under `no_forget`).
    pub hstar: Vec<f32>,
    /// The forget factor `g(σ(α)·Δ)`.
    pub forget: f64,
    /// The scaled inactive interval `Δ_V`.
    pub delta: f64,
}

/// The SUPA model (see the crate docs for the architecture overview).
pub struct Supa {
    pub(crate) cfg: SupaConfig,
    pub(crate) variant: SupaVariant,
    pub(crate) state: SupaState,
    pub(crate) walker: MetapathWalker,
    /// Per node type: a `deg^{0.75}` negative sampler (rebuilt per batch).
    pub(crate) neg_samplers: Vec<Option<NegativeSampler>>,
    pub(crate) rng: SmallRng,
    pub(crate) time_scale: f64,
    pub(crate) seed: u64,
    pub(crate) num_node_types: usize,
    pub(crate) inslearn_cfg: crate::inslearn::InsLearnConfig,
    /// When `Some`, every node id whose embedding row receives a gradient is
    /// appended here (the serving layer's cache-invalidation feed). `None`
    /// costs nothing on the training path.
    pub(crate) touch_log: Option<Vec<u32>>,
    /// Worker threads used by `train_pass` for conflict-aware event
    /// micro-batching. `1` (the default) is the exact serial path.
    pub(crate) workers: usize,
    /// User-partition shard count for `train_pass`. `1` (the default) leaves
    /// dispatch to `workers`; `>= 2` routes gradient work by the owning
    /// shard of each event's source user (`supa_par::shard_of`), producing a
    /// pinned result that is identical for every shard count `>= 2` and
    /// independent of the host's core count.
    pub(crate) shards: usize,
    /// Importance weight applied to the *next* event's parameter update.
    /// Scales the Adam step (the learning rate), not the raw gradient:
    /// Adam's `m̂/√v̂` normalisation is scale-invariant in the gradient, so
    /// only an lr scale actually moves `w×` the update mass. `1.0` outside
    /// weighted passes; see `Supa::train_pass_weighted`.
    pub(crate) event_weight: f32,
    /// Per node type: `(node count, total degree)` observed at the last
    /// negative-sampler rebuild, for the degree-delta refresh gate.
    pub(crate) sampler_stats: Vec<(usize, f64)>,
    /// Reusable hot-path buffers: sample arena, gradient pools, wave marks.
    /// Taken by value (`std::mem::take`) around each training step so the
    /// steady-state path allocates nothing; never serialized.
    pub(crate) scratch: crate::scratch::SupaScratch,
    name: String,
}

impl Supa {
    /// Builds an untrained model over a graph schema.
    ///
    /// `n_nodes` is the initial node-universe size (tables grow on demand);
    /// `metapaths` is the predefined schema set `P⃗`.
    pub fn new(
        schema: &GraphSchema,
        n_nodes: usize,
        metapaths: Vec<MetapathSchema>,
        cfg: SupaConfig,
        variant: SupaVariant,
        seed: u64,
    ) -> Result<Self, GraphError> {
        cfg.validate();
        let walker = MetapathWalker::new(metapaths, schema)?;
        let mut rng = SmallRng::seed_from_u64(seed);
        let n_ctx = if variant.shared_context {
            1
        } else {
            schema.num_relations().max(1)
        };
        let n_alpha = if variant.shared_alpha {
            1
        } else {
            schema.num_node_types().max(1)
        };
        let mk = |rng: &mut SmallRng| {
            EmbeddingTable::new(n_nodes, cfg.dim, cfg.init_scale, rng)
                .with_weight_decay(cfg.weight_decay)
        };
        let state = SupaState {
            h_long: mk(&mut rng),
            h_short: mk(&mut rng),
            ctx: (0..n_ctx).map(|_| mk(&mut rng)).collect(),
            alpha: (0..n_alpha)
                .map(|_| AdamScalar::new(cfg.alpha_init))
                .collect(),
        };
        let initial_time_scale = if cfg.time_scale > 0.0 {
            cfg.time_scale
        } else {
            1.0
        };
        Ok(Supa {
            cfg,
            variant,
            state,
            walker,
            neg_samplers: vec![None; schema.num_node_types()],
            rng,
            // An explicit config scale applies immediately; auto mode stays
            // at 1.0 until `resolve_time_scale` sees a graph.
            time_scale: initial_time_scale,
            seed,
            num_node_types: schema.num_node_types(),
            inslearn_cfg: crate::inslearn::InsLearnConfig::default(),
            touch_log: None,
            workers: 1,
            shards: 1,
            event_weight: 1.0,
            sampler_stats: vec![(0, 0.0); schema.num_node_types()],
            scratch: crate::scratch::SupaScratch::default(),
            name: "SUPA".to_string(),
        })
    }

    /// Convenience constructor from a packaged [`Dataset`].
    pub fn from_dataset(d: &Dataset, cfg: SupaConfig, seed: u64) -> Result<Self, GraphError> {
        Self::new(
            d.prototype.schema(),
            d.prototype.num_nodes(),
            d.metapaths.clone(),
            cfg,
            SupaVariant::full(),
            seed,
        )
    }

    /// Same, with an explicit ablation variant.
    pub fn from_dataset_variant(
        d: &Dataset,
        cfg: SupaConfig,
        variant: SupaVariant,
        seed: u64,
    ) -> Result<Self, GraphError> {
        Self::new(
            d.prototype.schema(),
            d.prototype.num_nodes(),
            d.metapaths.clone(),
            cfg,
            variant,
            seed,
        )
    }

    /// Overrides the display name (used for ablation variants in tables).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The model's display name.
    pub fn display_name(&self) -> &str {
        &self.name
    }

    /// The hyper-parameters.
    pub fn config(&self) -> &SupaConfig {
        &self.cfg
    }

    /// The ablation variant.
    pub fn variant(&self) -> &SupaVariant {
        &self.variant
    }

    /// Immutable access to the learnable state.
    pub fn state(&self) -> &SupaState {
        &self.state
    }

    /// Mutable state access for white-box tests.
    #[doc(hidden)]
    pub fn state_mut_for_tests(&mut self) -> &mut SupaState {
        &mut self.state
    }

    /// Snapshot the full learnable state (InsLearn `Φ_best ← Φ`).
    pub fn snapshot(&self) -> SupaState {
        self.state.clone()
    }

    /// Restore a snapshot (InsLearn `Φ ← Φ_best`).
    pub fn restore(&mut self, s: SupaState) {
        self.state = s;
    }

    /// Starts recording the node ids touched by training updates (see
    /// [`Supa::take_touched`]). Idempotent; keeps an existing log.
    pub fn enable_touch_tracking(&mut self) {
        if self.touch_log.is_none() {
            self.touch_log = Some(Vec::new());
        }
    }

    /// Drains the touch log: the sorted, deduplicated node ids whose
    /// embedding rows received a gradient since the last drain.
    ///
    /// The log is a *superset* of the rows that ended up changed: InsLearn's
    /// best-model rollback can revert an update, but only of rows that were
    /// themselves logged, so invalidating every logged row is always sound
    /// for a serving cache. Empty (and free) unless
    /// [`Supa::enable_touch_tracking`] was called.
    pub fn take_touched(&mut self) -> Vec<u32> {
        match &mut self.touch_log {
            Some(log) => {
                let mut t = std::mem::take(log);
                t.sort_unstable();
                t.dedup();
                t
            }
            None => Vec::new(),
        }
    }

    /// The active time scale divisor.
    pub fn time_scale(&self) -> f64 {
        self.time_scale
    }

    /// Resolves the time scale: explicit config wins, otherwise
    /// `max_time/100` so typical intervals land where `g(·)` has slope.
    pub fn resolve_time_scale(&mut self, g: &Dmhg) {
        self.time_scale = if self.cfg.time_scale > 0.0 {
            self.cfg.time_scale
        } else {
            (g.max_time() / 100.0).max(1e-9)
        };
    }

    /// Grows the embedding tables to cover `n_nodes` (streaming growth).
    pub fn ensure_capacity(&mut self, n_nodes: usize) {
        self.state.h_long.ensure_len(n_nodes, &mut self.rng);
        self.state.h_short.ensure_len(n_nodes, &mut self.rng);
        for t in &mut self.state.ctx {
            t.ensure_len(n_nodes, &mut self.rng);
        }
    }

    /// Sets the worker-thread count used by [`Supa::train_pass`] (and hence
    /// InsLearn and the serving writer) for conflict-aware event
    /// micro-batching. `1` is the exact serial path; `0` resolves to the
    /// machine's available parallelism. Results with `workers = 1` are
    /// bit-identical to the serial implementation; any `workers ≥ 2` gives a
    /// single deterministic batched result (see `train_pass_batched`).
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = supa_par::effective_workers(workers).max(1);
    }

    /// Builder-style [`Supa::set_workers`].
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.set_workers(workers);
        self
    }

    /// The configured training worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Sets the user-partition shard count used by [`Supa::train_pass`].
    ///
    /// `0` or `1` disables sharded dispatch (the `workers` setting then
    /// decides between the exact serial path and conflict-aware
    /// micro-batching). Any `shards >= 2` routes each wave's gradient work
    /// by the shard owning the event's source user and yields one pinned
    /// deterministic result: identical for every shard count `>= 2`,
    /// identical on every host (the shard partition, unlike the worker
    /// fan-out, is never clamped by the machine's core count), and equal to
    /// the `workers >= 2` micro-batched result because both freeze the same
    /// pre-wave state (see `train_pass_sharded`).
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
    }

    /// Builder-style [`Supa::set_shards`].
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.set_shards(shards);
        self
    }

    /// The configured training shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Relative total-degree drift above which a per-type negative sampler
    /// is considered stale and rebuilt by `refresh_negative_samplers`. The
    /// sampling weights are `deg^{0.75}`, so a 25 % mass shift bounds the
    /// per-node weight error well inside the noise of negative sampling.
    const SAMPLER_REFRESH_REL_DELTA: f64 = 0.25;

    /// Rebuilds the per-type `deg^{0.75}` negative samplers from the current
    /// graph, unconditionally.
    pub fn rebuild_negative_samplers(&mut self, g: &Dmhg) {
        for ty in 0..self.num_node_types {
            self.rebuild_sampler_for_type(g, ty);
        }
    }

    /// Rebuilds negative samplers *incrementally*: a type's alias table is
    /// reconstructed only when it is missing, its node population changed,
    /// or its total degree drifted by more than
    /// [`Self::SAMPLER_REFRESH_REL_DELTA`] relatively since the last build.
    /// The gate itself is a cheap O(nodes) sum — the saving is skipping the
    /// alias-table construction on the per-chunk hot path of InsLearn.
    pub fn refresh_negative_samplers(&mut self, g: &Dmhg) {
        for ty in 0..self.num_node_types {
            let nodes = g.nodes_of_type(supa_graph::NodeTypeId(ty as u16));
            if nodes.is_empty() {
                self.neg_samplers[ty] = None;
                self.sampler_stats[ty] = (0, 0.0);
                continue;
            }
            let (last_n, last_deg) = self.sampler_stats[ty];
            let stale = self.neg_samplers[ty].is_none() || nodes.len() != last_n || {
                let total_deg: f64 = nodes.iter().map(|&n| g.degree(n) as f64).sum();
                (total_deg - last_deg).abs() > Self::SAMPLER_REFRESH_REL_DELTA * last_deg.max(1.0)
            };
            if stale {
                self.rebuild_sampler_for_type(g, ty);
            }
        }
    }

    /// Rebuilds one type's sampler and records its refresh-gate statistics.
    fn rebuild_sampler_for_type(&mut self, g: &Dmhg, ty: usize) {
        let nodes = g.nodes_of_type(supa_graph::NodeTypeId(ty as u16));
        if nodes.is_empty() {
            self.neg_samplers[ty] = None;
            self.sampler_stats[ty] = (0, 0.0);
            return;
        }
        let ids: Vec<u32> = nodes.iter().map(|n| n.0).collect();
        let degs: Vec<f64> = nodes.iter().map(|&n| g.degree(n) as f64).collect();
        self.sampler_stats[ty] = (nodes.len(), degs.iter().sum());
        self.neg_samplers[ty] = Some(NegativeSampler::new(ids, &degs, self.cfg.neg_power));
    }

    /// Index into the context tables for relation `r` (shared-context aware).
    #[inline]
    pub(crate) fn ctx_idx(&self, r: RelationId) -> usize {
        if self.variant.shared_context {
            0
        } else {
            r.index()
        }
    }

    /// Index into `alpha` for node type `ty` (shared-alpha aware).
    #[inline]
    pub(crate) fn alpha_idx(&self, ty_index: usize) -> usize {
        if self.variant.shared_alpha {
            0
        } else {
            ty_index
        }
    }

    /// Computes Eq. 5 for one node at event time `t` against graph `g`,
    /// writing `h*` into the caller's reusable buffer (no allocation once
    /// the buffer has `dim` capacity).
    ///
    /// `Δ_V` is read from the graph: the time since the node's latest
    /// interaction strictly before `t` (or since stream start for fresh
    /// nodes), divided by the time scale.
    pub(crate) fn target_parts_into(
        &self,
        g: &Dmhg,
        node: NodeId,
        t: Timestamp,
        hstar: &mut Vec<f32>,
    ) -> TargetMeta {
        let ty = g.node_type(node).index();
        let alpha_idx = self.alpha_idx(ty);
        let last = g
            .neighbors_before(node, t)
            .last()
            .map(|n| n.time)
            .unwrap_or(0.0);
        let delta = ((t - last) / self.time_scale).max(0.0);
        let hl = self.state.h_long.row(node.index());
        hstar.clear();
        if self.variant.no_forget {
            hstar.extend_from_slice(hl);
            return TargetMeta {
                forget: 0.0,
                x: 0.0,
                delta,
                alpha_idx,
            };
        }
        let x = sigmoid(self.state.alpha[alpha_idx].value) * delta;
        let forget = g_decay(x);
        let hs = self.state.h_short.row(node.index());
        hstar.extend(hl.iter().zip(hs).map(|(&l, &s)| l + s * forget as f32));
        TargetMeta {
            forget,
            x,
            delta,
            alpha_idx,
        }
    }

    /// Allocating convenience form of [`Supa::target_parts_into`].
    #[cfg(test)]
    pub(crate) fn target_parts(&self, g: &Dmhg, node: NodeId, t: Timestamp) -> TargetParts {
        let mut hstar = Vec::new();
        let meta = self.target_parts_into(g, node, t, &mut hstar);
        TargetParts {
            hstar,
            forget: meta.forget,
            delta: meta.delta,
        }
    }

    /// The readout embedding of Eq. 14: `h_v^r = ½(h^L + h^S + c^r)`
    /// (without the short-term memory under `no_forget`).
    pub fn final_embedding(&self, node: NodeId, r: RelationId) -> Vec<f32> {
        let i = node.index();
        let hl = self.state.h_long.row(i);
        let c = self.state.ctx[self.ctx_idx(r)].row(i);
        if self.variant.no_forget {
            hl.iter().zip(c).map(|(&l, &cc)| 0.5 * (l + cc)).collect()
        } else {
            let hs = self.state.h_short.row(i);
            hl.iter()
                .zip(hs)
                .zip(c)
                .map(|((&l, &s), &cc)| 0.5 * (l + s + cc))
                .collect()
        }
    }

    /// Eq. 15: `γ(u, v, r) = h_u^rᵀ h_v^r`, fused (no allocation).
    pub fn gamma(&self, u: NodeId, v: NodeId, r: RelationId) -> f32 {
        let (ui, vi) = (u.index(), v.index());
        let cidx = self.ctx_idx(r);
        let (hl_u, hl_v) = (self.state.h_long.row(ui), self.state.h_long.row(vi));
        let (c_u, c_v) = (self.state.ctx[cidx].row(ui), self.state.ctx[cidx].row(vi));
        let mut s = 0.0f32;
        if self.variant.no_forget {
            for k in 0..hl_u.len() {
                s += (hl_u[k] + c_u[k]) * (hl_v[k] + c_v[k]);
            }
        } else {
            let (hs_u, hs_v) = (self.state.h_short.row(ui), self.state.h_short.row(vi));
            for k in 0..hl_u.len() {
                s += (hl_u[k] + hs_u[k] + c_u[k]) * (hl_v[k] + hs_v[k] + c_v[k]);
            }
        }
        0.25 * s
    }

    /// Top-K recommendation excluding items the user has already interacted
    /// with (the standard serving filter).
    pub fn top_k_unseen(
        &self,
        g: &Dmhg,
        u: NodeId,
        candidates: &[NodeId],
        r: RelationId,
        k: usize,
    ) -> Vec<(NodeId, f32)> {
        let seen: std::collections::HashSet<NodeId> =
            g.neighbors(u).iter().map(|n| n.node).collect();
        let mut scored: Vec<(NodeId, f32)> = candidates
            .iter()
            .filter(|v| !seen.contains(v))
            .map(|&v| (v, self.gamma(u, v, r)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
    }

    /// Top-K recommendation: the K candidates with the highest `γ(u, ·, r)`.
    pub fn top_k(
        &self,
        u: NodeId,
        candidates: &[NodeId],
        r: RelationId,
        k: usize,
    ) -> Vec<(NodeId, f32)> {
        let mut scored: Vec<(NodeId, f32)> = candidates
            .iter()
            .map(|&v| (v, self.gamma(u, v, r)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supa_datasets::taobao;

    fn model() -> (Supa, Dataset) {
        let d = taobao(0.02, 3);
        let m = Supa::from_dataset(&d, SupaConfig::small(), 3).unwrap();
        (m, d)
    }

    #[test]
    fn construction_sizes_state_correctly() {
        let (m, d) = model();
        assert_eq!(m.state().h_long.len(), d.num_nodes());
        assert_eq!(m.state().ctx.len(), 4, "one context table per relation");
        assert_eq!(m.state().alpha.len(), 2, "one α per node type");
        assert_eq!(m.display_name(), "SUPA");
    }

    #[test]
    fn shared_variants_collapse_tables() {
        let d = taobao(0.02, 3);
        let m = Supa::from_dataset_variant(&d, SupaConfig::small(), SupaVariant::s(), 3).unwrap();
        assert_eq!(m.state().ctx.len(), 1);
        assert_eq!(m.state().alpha.len(), 1);
        assert_eq!(m.ctx_idx(RelationId(3)), 0);
        assert_eq!(m.alpha_idx(1), 0);
    }

    #[test]
    fn adam_scalar_descends() {
        let mut a = AdamScalar::new(2.0);
        for _ in 0..300 {
            a.step(2.0 * a.value, 0.05); // d/dα α² = 2α
        }
        assert!(a.value.abs() < 0.05, "α = {}", a.value);
    }

    #[test]
    fn gamma_matches_final_embedding_dot() {
        let (m, d) = model();
        let schema = d.prototype.schema();
        let user_ty = schema.node_type_by_name("User").unwrap();
        let item_ty = schema.node_type_by_name("Item").unwrap();
        let u = d.prototype.nodes_of_type(user_ty)[0];
        let v = d.prototype.nodes_of_type(item_ty)[0];
        let r = RelationId(0);
        let eu = m.final_embedding(u, r);
        let ev = m.final_embedding(v, r);
        let want: f32 = eu.iter().zip(&ev).map(|(a, b)| a * b).sum();
        assert!((m.gamma(u, v, r) - want).abs() < 1e-5);
    }

    #[test]
    fn target_parts_forget_more_after_longer_gaps() {
        let (mut m, d) = model();
        let g = d.full_graph();
        m.resolve_time_scale(&g);
        let schema = d.prototype.schema();
        let user_ty = schema.node_type_by_name("User").unwrap();
        // Find an active user.
        let u = *g
            .nodes_of_type(user_ty)
            .iter()
            .find(|&&u| g.degree(u) > 2)
            .unwrap();
        let t_last = g.last_interaction_time(u).unwrap();
        let soon = m.target_parts(&g, u, t_last + 1.0);
        let late = m.target_parts(&g, u, t_last + 1e6);
        assert!(soon.forget > late.forget);
        assert!(late.delta > soon.delta);
    }

    #[test]
    fn no_forget_variant_drops_short_term() {
        let d = taobao(0.02, 3);
        let m = Supa::from_dataset_variant(&d, SupaConfig::small(), SupaVariant::nf(), 3).unwrap();
        let g = d.full_graph();
        let u = NodeId(0);
        let parts = m.target_parts(&g, u, g.max_time() + 1.0);
        assert_eq!(parts.hstar, m.state().h_long.row(0));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let (mut m, _) = model();
        let snap = m.snapshot();
        // Mutate state.
        m.state.h_long.row_mut(0)[0] += 1.0;
        m.state.alpha[0].step(1.0, 0.1);
        assert_ne!(m.state.h_long.row(0)[0], snap.h_long.row(0)[0]);
        m.restore(snap.clone());
        assert_eq!(m.state.h_long.row(0)[0], snap.h_long.row(0)[0]);
        assert_eq!(m.state.alpha[0], snap.alpha[0]);
    }

    #[test]
    fn top_k_orders_by_gamma() {
        let (m, d) = model();
        let schema = d.prototype.schema();
        let item_ty = schema.node_type_by_name("Item").unwrap();
        let items = d.prototype.nodes_of_type(item_ty);
        let u = NodeId(0);
        let top = m.top_k(u, items, RelationId(0), 5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Top-1 really is the max.
        let best = items
            .iter()
            .map(|&v| m.gamma(u, v, RelationId(0)))
            .fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(top[0].1, best);
    }

    #[test]
    fn top_k_unseen_filters_history() {
        let (m, d) = model();
        let g = d.full_graph();
        let schema = d.prototype.schema();
        let item_ty = schema.node_type_by_name("Item").unwrap();
        let items = d.prototype.nodes_of_type(item_ty);
        // Pick an active user.
        let user_ty = schema.node_type_by_name("User").unwrap();
        let u = *g
            .nodes_of_type(user_ty)
            .iter()
            .find(|&&u| g.degree(u) > 3)
            .unwrap();
        let seen: std::collections::HashSet<_> = g.neighbors(u).iter().map(|n| n.node).collect();
        let recs = m.top_k_unseen(&g, u, items, RelationId(0), 20);
        assert!(!recs.is_empty());
        for (v, _) in &recs {
            assert!(!seen.contains(v), "recommended an already-seen item");
        }
    }

    #[test]
    fn time_scale_resolution() {
        let (mut m, d) = model();
        let g = d.full_graph();
        m.resolve_time_scale(&g);
        assert!((m.time_scale() - g.max_time() / 100.0).abs() < 1e-9);
        // Explicit scale wins.
        let mut cfg = SupaConfig::small();
        cfg.time_scale = 7.0;
        let mut m2 = Supa::from_dataset(&d, cfg, 3).unwrap();
        m2.resolve_time_scale(&g);
        assert_eq!(m2.time_scale(), 7.0);
    }

    #[test]
    fn sampler_refresh_gates_on_degree_drift_and_matches_full_rebuild() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let d = taobao(0.05, 7);
        let half = d.edges.len() / 2;
        let mut g = d.prototype.clone();
        for e in &d.edges[..half] {
            g.add_edge(e.src, e.dst, e.relation, e.time).unwrap();
        }
        let mut m = Supa::from_dataset(&d, SupaConfig::small(), 3).unwrap();
        m.refresh_negative_samplers(&g); // first call always builds
        assert!(m.neg_samplers.iter().any(Option::is_some));
        let stats_after_build = m.sampler_stats.clone();

        // Tiny drift (one edge ≪ the 25 % gate): the refresh must skip the
        // rebuild, leaving the recorded build statistics untouched.
        let mut g2 = g.clone();
        let e = &d.edges[half];
        g2.add_edge(e.src, e.dst, e.relation, e.time).unwrap();
        m.refresh_negative_samplers(&g2);
        assert_eq!(
            m.sampler_stats, stats_after_build,
            "a one-edge drift must not trigger a rebuild"
        );

        // Large drift (total degree doubles): the refresh rebuilds, and the
        // refreshed samplers draw the exact same negative sequence as an
        // unconditional full rebuild — the distributions match.
        let g_full = d.full_graph();
        m.refresh_negative_samplers(&g_full);
        assert_ne!(m.sampler_stats, stats_after_build);
        let mut fresh = Supa::from_dataset(&d, SupaConfig::small(), 3).unwrap();
        fresh.rebuild_negative_samplers(&g_full);
        for ty in 0..m.num_node_types {
            match (&m.neg_samplers[ty], &fresh.neg_samplers[ty]) {
                (Some(a), Some(b)) => {
                    let mut ra = SmallRng::seed_from_u64(42);
                    let mut rb = SmallRng::seed_from_u64(42);
                    let (mut oa, mut ob) = (Vec::new(), Vec::new());
                    a.sample_many(500, u32::MAX, &mut ra, &mut oa);
                    b.sample_many(500, u32::MAX, &mut rb, &mut ob);
                    assert_eq!(oa, ob, "type {ty}");
                }
                (None, None) => {}
                _ => panic!("sampler presence mismatch for type {ty}"),
            }
        }
    }

    #[test]
    fn ensure_capacity_grows_all_tables() {
        let (mut m, d) = model();
        let n = d.num_nodes();
        m.ensure_capacity(n + 10);
        assert_eq!(m.state().h_long.len(), n + 10);
        assert_eq!(m.state().h_short.len(), n + 10);
        for t in &m.state().ctx {
            assert_eq!(t.len(), n + 10);
        }
    }
}
