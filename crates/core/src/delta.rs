//! Epoch-delta replication codec: `SUPADELTAv001` / `SUPABASEv0001`.
//!
//! The serving layer publishes one [`crate::ServingSnapshot`] per epoch; the
//! instant-update property means each epoch only *changes* the rows touched
//! by that epoch's events. A [`DeltaFrame`] encodes exactly that touched set
//! — embedding rows per table, the raw edge events (so a replica can extend
//! its adjacency and candidate catalogs), the ANN dirty list, and the
//! writer's degradation/guard state — chained to its parent epoch so a
//! replica can detect gaps. A [`BaselineFrame`] carries a full snapshot and
//! (re)seeds a replica at a known epoch.
//!
//! Framing follows the same envelope discipline as the `SUPAv002`
//! checkpoint ([`crate::checkpoint`]), sharing its CRC-32 implementation
//! ([`crate::framing`]):
//!
//! ```text
//! magic (13 bytes) | payload_len (u64 LE) | payload | crc32 (u32 LE)
//! ```
//!
//! with the CRC computed over everything after the magic (length header +
//! payload). Every malformed input maps to a named [`WireError`] — decode
//! and apply never panic, and [`ServingSnapshot::apply_delta`] validates the
//! whole frame before writing a single row, so a failed apply leaves the
//! replica state untouched.

use std::fmt;

use supa_embed::EmbeddingValues;
use supa_graph::{NodeId, RelationId, TemporalEdge};

use crate::framing::{crc32_finish, crc32_update, CRC_INIT};
use crate::serving::ServingSnapshot;

/// Magic prefix of a delta frame.
pub const MAGIC_DELTA: &[u8; 13] = b"SUPADELTAv001";
/// Magic prefix of a full-snapshot baseline frame.
pub const MAGIC_BASELINE: &[u8; 13] = b"SUPABASEv0001";

/// Upper bound on a frame payload (1 GiB). A corrupt length header would
/// otherwise make a reader attempt an absurd allocation before the CRC
/// check can catch the corruption.
pub const MAX_PAYLOAD: u64 = 1 << 30;

/// A named replication wire/apply error. Every way a frame can be malformed
/// or inapplicable maps to one of these — never a panic.
#[derive(Debug)]
pub enum WireError {
    /// The 13-byte magic matched neither known frame kind.
    WrongMagic,
    /// The input ended mid-frame (torn write / truncated segment).
    Truncated,
    /// The CRC-32 footer did not match the received bytes.
    CrcMismatch { expected: u32, got: u32 },
    /// The length header exceeds [`MAX_PAYLOAD`] — treated as corruption
    /// without attempting the allocation.
    ImplausibleLength(u64),
    /// The frame chain skipped an epoch: a delta's parent did not match the
    /// replica's current epoch. Recovery is a checkpoint/baseline resync.
    EpochGap { expected: u64, got: u64 },
    /// The frame's layout (dim, variant flags, table count, row ids) is
    /// inconsistent with itself or with the snapshot it is applied to.
    LayoutMismatch(&'static str),
    /// An underlying transport error.
    Io(std::io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::WrongMagic => write!(f, "unrecognised frame magic"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::CrcMismatch { expected, got } => {
                write!(
                    f,
                    "frame crc mismatch (expected {expected:#010x}, got {got:#010x})"
                )
            }
            WireError::ImplausibleLength(n) => {
                write!(
                    f,
                    "implausible frame payload length {n} (max {MAX_PAYLOAD})"
                )
            }
            WireError::EpochGap { expected, got } => {
                write!(
                    f,
                    "epoch chain gap: expected parent {expected}, frame has {got}"
                )
            }
            WireError::LayoutMismatch(what) => write!(f, "frame layout mismatch: {what}"),
            WireError::Io(e) => write!(f, "replication i/o error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// The writer's degradation/guard state at an epoch boundary, mirrored to
/// replicas so operators see the same overload picture on every process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuardState {
    /// Degradation ladder level (0 = Full service).
    pub level: u8,
    /// Cumulative events shed by admission control.
    pub events_shed: u64,
    /// Cumulative events quarantined by the stream guard.
    pub events_quarantined: u64,
}

/// Per-epoch delta: everything a replica needs to advance its snapshot,
/// graph, and ANN index from `parent` to `epoch`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaFrame {
    /// Epoch this delta produces.
    pub epoch: u64,
    /// Epoch this delta applies on top of (chain link).
    pub parent: u64,
    /// Embedding dimensionality (layout check).
    pub dim: u32,
    /// Variant flag: no short-term memory table.
    pub no_forget: bool,
    /// Variant flag: one shared context table.
    pub shared_context: bool,
    /// Number of context tables.
    pub n_ctx: u16,
    /// Strictly ascending node ids whose rows changed this epoch.
    pub touched: Vec<u32>,
    /// `touched.len() × dim` replacement rows for the long-term table.
    pub h_long: Vec<f32>,
    /// Replacement rows for the short-term table (absent under `no_forget`).
    pub h_short: Option<Vec<f32>>,
    /// Replacement rows per context table, `n_ctx` blocks.
    pub ctx: Vec<Vec<f32>>,
    /// The raw edge events absorbed during this epoch, in arrival order —
    /// replicas extend adjacency and candidate catalogs from these.
    pub events: Vec<TemporalEdge>,
    /// Nodes whose ANN entries must be refreshed, in the writer's refresh
    /// order (ascending, matching the touched set).
    pub ann_dirty: Vec<u32>,
    /// Writer guard/degradation state at publish time.
    pub guard: GuardState,
}

/// Full-snapshot baseline: (re)seeds a replica at `epoch`.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineFrame {
    /// Epoch the snapshot corresponds to.
    pub epoch: u64,
    /// The complete serving snapshot at that epoch.
    pub snapshot: ServingSnapshot,
    /// Writer guard/degradation state at publish time.
    pub guard: GuardState,
    /// Opaque serialized ANN index state, when the writer chose to carry it.
    /// The codec never interprets these bytes — the serving layer owns the
    /// framing — so a replica without them (or one that fails to decode
    /// them) falls back to rebuilding its indexes from the snapshot. Frames
    /// written before this section existed decode as `None`.
    pub index: Option<Vec<u8>>,
}

/// A decoded replication frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Full snapshot (stream head / resync point).
    Baseline(BaselineFrame),
    /// Incremental epoch delta.
    Delta(DeltaFrame),
}

impl Frame {
    /// The epoch this frame produces when applied.
    pub fn epoch(&self) -> u64 {
        match self {
            Frame::Baseline(b) => b.epoch,
            Frame::Delta(d) => d.epoch,
        }
    }

    /// Encodes the frame with magic, length header and CRC footer.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Frame::Baseline(b) => b.encode(),
            Frame::Delta(d) => d.encode(),
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, x: u16) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_f32s(out: &mut Vec<u8>, xs: &[f32]) {
    out.reserve(xs.len() * 4);
    for &x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn put_guard(out: &mut Vec<u8>, g: &GuardState) {
    out.push(g.level);
    put_u64(out, g.events_shed);
    put_u64(out, g.events_quarantined);
}

/// Wraps a payload in the shared envelope: magic, length, payload, CRC over
/// (length bytes + payload).
fn seal(magic: &[u8; 13], payload: Vec<u8>) -> Vec<u8> {
    let len = payload.len() as u64;
    let mut out = Vec::with_capacity(13 + 8 + payload.len() + 4);
    out.extend_from_slice(magic);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&payload);
    let mut crc = CRC_INIT;
    crc = crc32_update(crc, &len.to_le_bytes());
    crc = crc32_update(crc, &payload);
    out.extend_from_slice(&crc32_finish(crc).to_le_bytes());
    out
}

impl DeltaFrame {
    /// Encodes the delta as a complete `SUPADELTAv001` frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        put_u64(&mut p, self.epoch);
        put_u64(&mut p, self.parent);
        put_u32(&mut p, self.dim);
        p.push(self.no_forget as u8);
        p.push(self.shared_context as u8);
        put_u16(&mut p, self.n_ctx);
        put_u32(&mut p, self.touched.len() as u32);
        for &id in &self.touched {
            put_u32(&mut p, id);
        }
        put_f32s(&mut p, &self.h_long);
        match &self.h_short {
            Some(rows) => {
                p.push(1);
                put_f32s(&mut p, rows);
            }
            None => p.push(0),
        }
        for block in &self.ctx {
            put_f32s(&mut p, block);
        }
        put_u32(&mut p, self.events.len() as u32);
        for e in &self.events {
            put_u32(&mut p, e.src.0);
            put_u32(&mut p, e.dst.0);
            put_u16(&mut p, e.relation.0);
            put_u64(&mut p, e.time.to_bits());
        }
        put_u32(&mut p, self.ann_dirty.len() as u32);
        for &id in &self.ann_dirty {
            put_u32(&mut p, id);
        }
        put_guard(&mut p, &self.guard);
        seal(MAGIC_DELTA, p)
    }
}

impl BaselineFrame {
    /// Encodes the baseline as a complete `SUPABASEv0001` frame.
    pub fn encode(&self) -> Vec<u8> {
        encode_baseline_with_index(
            self.epoch,
            &self.snapshot,
            self.guard,
            self.index.as_deref(),
        )
    }
}

/// Encodes a baseline frame without taking ownership of the snapshot (the
/// publisher serves one baseline per subscriber from a shared copy).
pub fn encode_baseline(epoch: u64, s: &ServingSnapshot, guard: GuardState) -> Vec<u8> {
    encode_baseline_with_index(epoch, s, guard, None)
}

/// [`encode_baseline`] plus an optional trailing opaque index section, so a
/// replica cold-start can adopt the writer's ANN indexes instead of
/// rebuilding them. The section is written only when `index` holds bytes;
/// without it the frame is byte-identical to the pre-index format.
pub fn encode_baseline_with_index(
    epoch: u64,
    s: &ServingSnapshot,
    guard: GuardState,
    index: Option<&[u8]>,
) -> Vec<u8> {
    let mut p = Vec::new();
    put_u64(&mut p, epoch);
    put_u32(&mut p, s.dim as u32);
    p.push(s.no_forget as u8);
    p.push(s.shared_context as u8);
    put_u16(&mut p, s.ctx.len() as u16);
    put_u64(&mut p, s.h_long.len() as u64);
    put_f32s(&mut p, s.h_long.data());
    match &s.h_short {
        Some(t) => {
            p.push(1);
            put_f32s(&mut p, t.data());
        }
        None => p.push(0),
    }
    for t in &s.ctx {
        put_f32s(&mut p, t.data());
    }
    put_guard(&mut p, &guard);
    if let Some(bytes) = index {
        if !bytes.is_empty() {
            put_u64(&mut p, bytes.len() as u64);
            p.extend_from_slice(bytes);
        }
    }
    seal(MAGIC_BASELINE, p)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian cursor over a payload slice.
struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Self {
        Cur { b, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.b.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn flag(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::LayoutMismatch("boolean flag out of range")),
        }
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, WireError> {
        let bytes = self.take(n.checked_mul(4).ok_or(WireError::Truncated)?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn guard(&mut self) -> Result<GuardState, WireError> {
        Ok(GuardState {
            level: self.u8()?,
            events_shed: self.u64()?,
            events_quarantined: self.u64()?,
        })
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.b.len() {
            Ok(())
        } else {
            Err(WireError::LayoutMismatch("trailing bytes after payload"))
        }
    }
}

fn decode_delta_payload(payload: &[u8]) -> Result<DeltaFrame, WireError> {
    let mut c = Cur::new(payload);
    let epoch = c.u64()?;
    let parent = c.u64()?;
    let dim = c.u32()?;
    if dim == 0 {
        return Err(WireError::LayoutMismatch("zero embedding dimension"));
    }
    let no_forget = c.flag()?;
    let shared_context = c.flag()?;
    let n_ctx = c.u16()?;
    let n_touched = c.u32()? as usize;
    let mut touched = Vec::with_capacity(n_touched.min(payload.len() / 4));
    for _ in 0..n_touched {
        touched.push(c.u32()?);
    }
    if !touched.windows(2).all(|w| w[0] < w[1]) {
        return Err(WireError::LayoutMismatch(
            "touched ids not strictly ascending",
        ));
    }
    let rows = n_touched
        .checked_mul(dim as usize)
        .ok_or(WireError::LayoutMismatch("touched row block overflows"))?;
    let h_long = c.f32s(rows)?;
    let h_short = if c.flag()? { Some(c.f32s(rows)?) } else { None };
    if no_forget && h_short.is_some() {
        return Err(WireError::LayoutMismatch("no_forget frame carries h_short"));
    }
    if !no_forget && h_short.is_none() {
        return Err(WireError::LayoutMismatch(
            "full-variant frame lacks h_short",
        ));
    }
    let mut ctx = Vec::with_capacity(n_ctx as usize);
    for _ in 0..n_ctx {
        ctx.push(c.f32s(rows)?);
    }
    let n_events = c.u32()? as usize;
    let mut events = Vec::with_capacity(n_events.min(payload.len() / 18));
    for _ in 0..n_events {
        let src = NodeId(c.u32()?);
        let dst = NodeId(c.u32()?);
        let relation = RelationId(c.u16()?);
        let time = f64::from_bits(c.u64()?);
        events.push(TemporalEdge::new(src, dst, relation, time));
    }
    let n_dirty = c.u32()? as usize;
    let mut ann_dirty = Vec::with_capacity(n_dirty.min(payload.len() / 4));
    for _ in 0..n_dirty {
        ann_dirty.push(c.u32()?);
    }
    let guard = c.guard()?;
    c.done()?;
    Ok(DeltaFrame {
        epoch,
        parent,
        dim,
        no_forget,
        shared_context,
        n_ctx,
        touched,
        h_long,
        h_short,
        ctx,
        events,
        ann_dirty,
        guard,
    })
}

fn decode_baseline_payload(payload: &[u8]) -> Result<BaselineFrame, WireError> {
    let mut c = Cur::new(payload);
    let epoch = c.u64()?;
    let dim = c.u32()? as usize;
    if dim == 0 {
        return Err(WireError::LayoutMismatch("zero embedding dimension"));
    }
    let no_forget = c.flag()?;
    let shared_context = c.flag()?;
    let n_ctx = c.u16()? as usize;
    let n_nodes = c.u64()? as usize;
    let cells = n_nodes
        .checked_mul(dim)
        .ok_or(WireError::LayoutMismatch("table size overflows"))?;
    let h_long = EmbeddingValues::from_vec(dim, c.f32s(cells)?);
    let h_short = if c.flag()? {
        Some(EmbeddingValues::from_vec(dim, c.f32s(cells)?))
    } else {
        None
    };
    if no_forget && h_short.is_some() {
        return Err(WireError::LayoutMismatch("no_forget frame carries h_short"));
    }
    if !no_forget && h_short.is_none() {
        return Err(WireError::LayoutMismatch(
            "full-variant frame lacks h_short",
        ));
    }
    let mut ctx = Vec::with_capacity(n_ctx);
    for _ in 0..n_ctx {
        ctx.push(EmbeddingValues::from_vec(dim, c.f32s(cells)?));
    }
    let guard = c.guard()?;
    // Optional trailing index section: pre-index frames end at the guard,
    // newer writers may append `len (u64 LE) | bytes`.
    let index = if c.pos < c.b.len() {
        let n = c.u64()?;
        if n > MAX_PAYLOAD {
            return Err(WireError::ImplausibleLength(n));
        }
        let bytes = c.take(n as usize)?.to_vec();
        if bytes.is_empty() {
            None
        } else {
            Some(bytes)
        }
    } else {
        None
    };
    c.done()?;
    Ok(BaselineFrame {
        epoch,
        snapshot: ServingSnapshot {
            dim,
            no_forget,
            shared_context,
            h_long,
            h_short,
            ctx,
        },
        guard,
        index,
    })
}

/// Decodes one frame from the front of `buf`, returning the frame and the
/// number of bytes it occupied. Validation order: magic, length plausibility,
/// completeness, CRC, then payload layout — so a torn tail reads as
/// [`WireError::Truncated`] and bit-rot as [`WireError::CrcMismatch`] before
/// any layout interpretation happens.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), WireError> {
    if buf.len() < 13 {
        return Err(WireError::Truncated);
    }
    let magic: &[u8; 13] = buf[..13].try_into().unwrap();
    let is_delta = magic == MAGIC_DELTA;
    if !is_delta && magic != MAGIC_BASELINE {
        return Err(WireError::WrongMagic);
    }
    if buf.len() < 13 + 8 {
        return Err(WireError::Truncated);
    }
    let len_bytes: [u8; 8] = buf[13..21].try_into().unwrap();
    let len = u64::from_le_bytes(len_bytes);
    if len > MAX_PAYLOAD {
        return Err(WireError::ImplausibleLength(len));
    }
    let payload_end = 21 + len as usize;
    if buf.len() < payload_end + 4 {
        return Err(WireError::Truncated);
    }
    let payload = &buf[21..payload_end];
    let got = u32::from_le_bytes(buf[payload_end..payload_end + 4].try_into().unwrap());
    let mut crc = CRC_INIT;
    crc = crc32_update(crc, &len_bytes);
    crc = crc32_update(crc, payload);
    let expected = crc32_finish(crc);
    if got != expected {
        return Err(WireError::CrcMismatch { expected, got });
    }
    let frame = if is_delta {
        Frame::Delta(decode_delta_payload(payload)?)
    } else {
        Frame::Baseline(decode_baseline_payload(payload)?)
    };
    Ok((frame, payload_end + 4))
}

/// Reads one frame from a byte stream (the TCP transport). Returns
/// `Ok(None)` on a clean EOF at a frame boundary; an EOF mid-frame is a
/// [`WireError::Truncated`].
pub fn read_frame<R: std::io::Read>(r: &mut R) -> Result<Option<Frame>, WireError> {
    let mut magic = [0u8; 13];
    // Distinguish clean EOF (no bytes at all) from a torn frame.
    let mut got = 0;
    while got < magic.len() {
        match r.read(&mut magic[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let is_delta = &magic == MAGIC_DELTA;
    if !is_delta && &magic != MAGIC_BASELINE {
        return Err(WireError::WrongMagic);
    }
    let mut len_bytes = [0u8; 8];
    read_fully(r, &mut len_bytes)?;
    let len = u64::from_le_bytes(len_bytes);
    if len > MAX_PAYLOAD {
        return Err(WireError::ImplausibleLength(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_fully(r, &mut payload)?;
    let mut crc_bytes = [0u8; 4];
    read_fully(r, &mut crc_bytes)?;
    let got_crc = u32::from_le_bytes(crc_bytes);
    let mut crc = CRC_INIT;
    crc = crc32_update(crc, &len_bytes);
    crc = crc32_update(crc, &payload);
    let expected = crc32_finish(crc);
    if got_crc != expected {
        return Err(WireError::CrcMismatch {
            expected,
            got: got_crc,
        });
    }
    let frame = if is_delta {
        Frame::Delta(decode_delta_payload(&payload)?)
    } else {
        Frame::Baseline(decode_baseline_payload(&payload)?)
    };
    Ok(Some(frame))
}

fn read_fully<R: std::io::Read>(r: &mut R, buf: &mut [u8]) -> Result<(), WireError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Err(WireError::Truncated),
        Err(e) => Err(WireError::Io(e)),
    }
}

// ---------------------------------------------------------------------------
// Snapshot extract / apply
// ---------------------------------------------------------------------------

impl ServingSnapshot {
    /// Extracts the delta that carries this snapshot's rows for `touched`
    /// (writer side). `touched` must be strictly ascending and in bounds —
    /// [`crate::Supa::take_touched`] guarantees both.
    pub fn extract_delta(
        &self,
        epoch: u64,
        parent: u64,
        touched: &[u32],
        events: Vec<TemporalEdge>,
        guard: GuardState,
    ) -> DeltaFrame {
        debug_assert!(touched.windows(2).all(|w| w[0] < w[1]));
        let dim = self.dim;
        let gather = |t: &EmbeddingValues| {
            let mut rows = Vec::with_capacity(touched.len() * dim);
            for &id in touched {
                rows.extend_from_slice(t.row(id as usize));
            }
            rows
        };
        DeltaFrame {
            epoch,
            parent,
            dim: dim as u32,
            no_forget: self.no_forget,
            shared_context: self.shared_context,
            n_ctx: self.ctx.len() as u16,
            touched: touched.to_vec(),
            h_long: gather(&self.h_long),
            h_short: self.h_short.as_ref().map(&gather),
            ctx: self.ctx.iter().map(&gather).collect(),
            ann_dirty: touched.to_vec(),
            events,
            guard,
        }
    }

    /// Applies a delta's rows in place (replica side). Validates the entire
    /// frame against this snapshot's layout *before* writing anything, so a
    /// rejected frame leaves the snapshot bit-identical to before the call.
    /// Epoch-chain checking is the caller's job ([`WireError::EpochGap`]) —
    /// this method only cares about shape.
    pub fn apply_delta(&mut self, d: &DeltaFrame) -> Result<(), WireError> {
        if d.dim as usize != self.dim {
            return Err(WireError::LayoutMismatch("dimension differs from snapshot"));
        }
        if d.no_forget != self.no_forget || d.shared_context != self.shared_context {
            return Err(WireError::LayoutMismatch(
                "variant flags differ from snapshot",
            ));
        }
        if d.n_ctx as usize != self.ctx.len() || d.ctx.len() != self.ctx.len() {
            return Err(WireError::LayoutMismatch("context table count differs"));
        }
        if d.h_short.is_some() != self.h_short.is_some() {
            return Err(WireError::LayoutMismatch(
                "short-term table presence differs",
            ));
        }
        if !d.touched.windows(2).all(|w| w[0] < w[1]) {
            return Err(WireError::LayoutMismatch(
                "touched ids not strictly ascending",
            ));
        }
        if let Some(&max) = d.touched.last() {
            if max as usize >= self.h_long.len() {
                return Err(WireError::LayoutMismatch("touched id beyond snapshot rows"));
            }
        }
        let rows = d.touched.len() * self.dim;
        if d.h_long.len() != rows
            || d.h_short.as_ref().is_some_and(|r| r.len() != rows)
            || d.ctx.iter().any(|b| b.len() != rows)
        {
            return Err(WireError::LayoutMismatch("row block size differs"));
        }
        let dim = self.dim;
        let scatter = |t: &mut EmbeddingValues, rows: &[f32]| {
            for (k, &id) in d.touched.iter().enumerate() {
                t.row_mut(id as usize)
                    .copy_from_slice(&rows[k * dim..(k + 1) * dim]);
            }
        };
        scatter(&mut self.h_long, &d.h_long);
        if let (Some(t), Some(r)) = (self.h_short.as_mut(), d.h_short.as_ref()) {
            scatter(t, r);
        }
        for (t, b) in self.ctx.iter_mut().zip(&d.ctx) {
            scatter(t, b);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SupaConfig;
    use crate::model::Supa;
    use crate::variants::SupaVariant;
    use supa_datasets::taobao;

    fn trained_pair() -> (
        ServingSnapshot,
        ServingSnapshot,
        Vec<u32>,
        Vec<TemporalEdge>,
    ) {
        let d = taobao(0.02, 21);
        let mut m = Supa::from_dataset(&d, SupaConfig::small(), 21).unwrap();
        let g = d.full_graph();
        m.resolve_time_scale(&g);
        m.rebuild_negative_samplers(&g);
        m.enable_touch_tracking();
        m.train_pass(&g, &d.edges[..200]);
        m.take_touched();
        let before = m.export_serving_snapshot();
        let events: Vec<TemporalEdge> = d.edges[200..260].to_vec();
        m.train_pass(&g, &events);
        let touched = m.take_touched();
        assert!(!touched.is_empty());
        let after = m.export_serving_snapshot();
        (before, after, touched, events)
    }

    fn assert_snapshots_bit_identical(a: &ServingSnapshot, b: &ServingSnapshot) {
        let bits = |t: &EmbeddingValues| t.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.h_long), bits(&b.h_long));
        assert_eq!(a.h_short.is_some(), b.h_short.is_some());
        if let (Some(x), Some(y)) = (&a.h_short, &b.h_short) {
            assert_eq!(bits(x), bits(y));
        }
        assert_eq!(a.ctx.len(), b.ctx.len());
        for (x, y) in a.ctx.iter().zip(&b.ctx) {
            assert_eq!(bits(x), bits(y));
        }
    }

    #[test]
    fn extract_apply_reproduces_trained_snapshot_bit_for_bit() {
        let (mut before, after, touched, events) = trained_pair();
        let guard = GuardState {
            level: 2,
            events_shed: 7,
            events_quarantined: 1,
        };
        let delta = after.extract_delta(5, 4, &touched, events, guard);
        before.apply_delta(&delta).unwrap();
        assert_snapshots_bit_identical(&before, &after);
    }

    #[test]
    fn delta_frame_round_trips_through_wire_bytes() {
        let (_, after, touched, events) = trained_pair();
        let delta = after.extract_delta(9, 8, &touched, events, GuardState::default());
        let bytes = delta.encode();
        let (frame, consumed) = decode_frame(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        match frame {
            Frame::Delta(d) => {
                assert_eq!(d.epoch, 9);
                assert_eq!(d.parent, 8);
                assert_eq!(d, delta);
            }
            other => panic!("expected delta frame, got {other:?}"),
        }
    }

    #[test]
    fn baseline_frame_round_trips_through_wire_bytes() {
        let (_, after, _, _) = trained_pair();
        let b = BaselineFrame {
            epoch: 3,
            snapshot: after.clone(),
            guard: GuardState {
                level: 1,
                events_shed: 2,
                events_quarantined: 3,
            },
            index: None,
        };
        let bytes = b.encode();
        let (frame, consumed) = decode_frame(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        match frame {
            Frame::Baseline(got) => {
                assert_eq!(got.epoch, 3);
                assert_eq!(got.guard, b.guard);
                assert_snapshots_bit_identical(&got.snapshot, &after);
            }
            other => panic!("expected baseline frame, got {other:?}"),
        }
    }

    #[test]
    fn no_forget_variant_round_trips_without_short_term_rows() {
        let d = taobao(0.02, 22);
        let mut m =
            Supa::from_dataset_variant(&d, SupaConfig::small(), SupaVariant::nf(), 22).unwrap();
        let g = d.full_graph();
        m.resolve_time_scale(&g);
        m.rebuild_negative_samplers(&g);
        m.enable_touch_tracking();
        m.train_pass(&g, &d.edges[..100]);
        let touched = m.take_touched();
        let snap = m.export_serving_snapshot();
        let delta = snap.extract_delta(1, 0, &touched, Vec::new(), GuardState::default());
        assert!(delta.h_short.is_none());
        let bytes = delta.encode();
        match decode_frame(&bytes).unwrap().0 {
            Frame::Delta(got) => assert_eq!(got, delta),
            other => panic!("expected delta frame, got {other:?}"),
        }
        let bytes = BaselineFrame {
            epoch: 1,
            snapshot: snap.clone(),
            guard: GuardState::default(),
            index: None,
        }
        .encode();
        match decode_frame(&bytes).unwrap().0 {
            Frame::Baseline(got) => assert_snapshots_bit_identical(&got.snapshot, &snap),
            other => panic!("expected baseline frame, got {other:?}"),
        }
    }

    #[test]
    fn baseline_index_section_round_trips_and_is_optional() {
        let (_, after, _, _) = trained_pair();
        // With an index: the opaque bytes come back verbatim.
        let index: Vec<u8> = (0u16..512).map(|x| (x % 251) as u8).collect();
        let b = BaselineFrame {
            epoch: 7,
            snapshot: after.clone(),
            guard: GuardState::default(),
            index: Some(index.clone()),
        };
        let bytes = b.encode();
        match decode_frame(&bytes).unwrap().0 {
            Frame::Baseline(got) => {
                assert_eq!(got.index.as_deref(), Some(index.as_slice()));
                assert_snapshots_bit_identical(&got.snapshot, &after);
            }
            other => panic!("expected baseline frame, got {other:?}"),
        }
        // Pre-index wire format (no trailing section) decodes as None —
        // encode_baseline writes exactly that format.
        let legacy = encode_baseline(7, &after, GuardState::default());
        assert!(legacy.len() < bytes.len());
        match decode_frame(&legacy).unwrap().0 {
            Frame::Baseline(got) => assert!(got.index.is_none()),
            other => panic!("expected baseline frame, got {other:?}"),
        }
        // A torn index section (length claims more than remains) is a named
        // truncation error, never a panic or a silent partial read.
        let with_index =
            encode_baseline_with_index(7, &after, GuardState::default(), Some(index.as_slice()));
        let mut torn = with_index.clone();
        let cut = torn.len() - 4 - 100; // keep CRC position, drop index bytes
        torn.drain(cut..cut + 100);
        // Fix up the length header so the frame parses to payload stage.
        let new_len = (with_index.len() - 13 - 8 - 4 - 100) as u64;
        torn[13..21].copy_from_slice(&new_len.to_le_bytes());
        let mut crc = CRC_INIT;
        crc = crc32_update(crc, &new_len.to_le_bytes());
        crc = crc32_update(crc, &torn[21..torn.len() - 4]);
        let n = torn.len();
        torn[n - 4..].copy_from_slice(&crc32_finish(crc).to_le_bytes());
        assert!(matches!(decode_frame(&torn), Err(WireError::Truncated)));
    }

    #[test]
    fn wrong_magic_is_a_named_error() {
        let (_, after, touched, _) = trained_pair();
        let mut bytes = after
            .extract_delta(1, 0, &touched, Vec::new(), GuardState::default())
            .encode();
        bytes[0] ^= 0xFF;
        assert!(matches!(decode_frame(&bytes), Err(WireError::WrongMagic)));
    }

    #[test]
    fn truncation_at_every_prefix_is_a_named_error() {
        let (_, after, touched, events) = trained_pair();
        let bytes = after
            .extract_delta(1, 0, &touched, events, GuardState::default())
            .encode();
        // Every proper prefix must fail with Truncated (or WrongMagic for
        // sub-magic prefixes read as a partial magic) — never a panic.
        for cut in [0, 5, 13, 15, 21, 30, bytes.len() / 2, bytes.len() - 1] {
            let err = decode_frame(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated),
                "prefix of {cut} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn bit_flips_anywhere_after_magic_are_caught_by_crc() {
        let (_, after, touched, events) = trained_pair();
        let bytes = after
            .extract_delta(1, 0, &touched, events, GuardState::default())
            .encode();
        // Flip a bit in the length header, payload head/middle/tail and the
        // CRC footer itself.
        for pos in [
            13,
            21,
            25,
            bytes.len() / 2,
            bytes.len() - 5,
            bytes.len() - 1,
        ] {
            let mut b = bytes.clone();
            b[pos] ^= 0x10;
            let err = decode_frame(&b).unwrap_err();
            assert!(
                matches!(
                    err,
                    WireError::CrcMismatch { .. }
                        | WireError::Truncated
                        | WireError::ImplausibleLength(_)
                ),
                "flip at {pos} gave {err:?}"
            );
        }
    }

    #[test]
    fn implausible_length_is_rejected_before_allocation() {
        let (_, after, touched, _) = trained_pair();
        let mut bytes = after
            .extract_delta(1, 0, &touched, Vec::new(), GuardState::default())
            .encode();
        bytes[13..21].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::ImplausibleLength(u64::MAX))
        ));
    }

    #[test]
    fn failed_apply_leaves_snapshot_untouched() {
        let (before, after, touched, events) = trained_pair();
        let mut replica = before.clone();
        let mut delta = after.extract_delta(2, 1, &touched, events, GuardState::default());
        // Sabotage layout: wrong dimension must be rejected up front.
        delta.dim += 1;
        assert!(matches!(
            replica.apply_delta(&delta),
            Err(WireError::LayoutMismatch(_))
        ));
        assert_snapshots_bit_identical(&replica, &before);
        // Out-of-bounds row id likewise.
        delta.dim -= 1;
        let n = replica.num_nodes() as u32;
        delta.touched.push(n + 10);
        assert!(matches!(
            replica.apply_delta(&delta),
            Err(WireError::LayoutMismatch(_))
        ));
        assert_snapshots_bit_identical(&replica, &before);
    }

    #[test]
    fn read_frame_streams_frames_and_reports_clean_eof() {
        let (_, after, touched, events) = trained_pair();
        let b = BaselineFrame {
            epoch: 1,
            snapshot: after.clone(),
            guard: GuardState::default(),
            index: None,
        };
        let d = after.extract_delta(2, 1, &touched, events, GuardState::default());
        let mut stream = b.encode();
        stream.extend_from_slice(&d.encode());
        let mut r = &stream[..];
        assert!(matches!(
            read_frame(&mut r).unwrap(),
            Some(Frame::Baseline(_))
        ));
        assert!(matches!(read_frame(&mut r).unwrap(), Some(Frame::Delta(_))));
        assert!(read_frame(&mut r).unwrap().is_none());
        // Torn tail: EOF mid-frame is Truncated, not a clean end.
        let torn = &stream[..stream.len() - 3];
        let mut r = torn;
        assert!(matches!(
            read_frame(&mut r).unwrap(),
            Some(Frame::Baseline(_))
        ));
        assert!(matches!(read_frame(&mut r), Err(WireError::Truncated)));
    }
}
