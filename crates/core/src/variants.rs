//! Ablation switches (paper Tables VII and VIII).
//!
//! Every variant evaluated in the ablation study is a flag combination on
//! the full model:
//!
//! | Paper name          | Flags |
//! |---------------------|-------|
//! | `SUPA_{L_inter}`    | only `use_inter` |
//! | `SUPA_{L_prop}`     | only `use_prop` |
//! | `SUPA_{L_neg}`      | only `use_neg` |
//! | `SUPA_{w/o L_*}`    | the complement combinations |
//! | `SUPA_sn`           | `shared_alpha` (one α for all node types) |
//! | `SUPA_se`           | `shared_context` (one context table for all relations) |
//! | `SUPA_s`            | both of the above |
//! | `SUPA_nf`           | `no_forget` (short-term memory removed) |
//! | `SUPA_nd`           | `no_decay` (propagation attenuation + filter removed) |
//! | `SUPA_nt`           | `no_forget` + `no_decay` |

/// Ablation flags; the default (all heterogeneity/time features on, all
/// losses on) is full SUPA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupaVariant {
    /// Train with the interaction loss `L_inter` (Eq. 7).
    pub use_inter: bool,
    /// Train with the propagation loss `L_prop` (Eq. 10).
    pub use_prop: bool,
    /// Train with the negative-sampling loss `L_neg` (Eq. 12).
    pub use_neg: bool,
    /// Use a single shared `α` for every node type (`SUPA_sn`).
    pub shared_alpha: bool,
    /// Use a single shared context table for every relation (`SUPA_se`).
    pub shared_context: bool,
    /// Remove the short-term memory entirely (`SUPA_nf`).
    pub no_forget: bool,
    /// Remove `g(·)` and `D(·)` from propagation (`SUPA_nd`).
    pub no_decay: bool,
}

impl Default for SupaVariant {
    fn default() -> Self {
        SupaVariant {
            use_inter: true,
            use_prop: true,
            use_neg: true,
            shared_alpha: false,
            shared_context: false,
            no_forget: false,
            no_decay: false,
        }
    }
}

impl SupaVariant {
    /// Full SUPA.
    pub fn full() -> Self {
        Self::default()
    }

    /// A loss-subset variant (Table VII): pass which losses stay enabled.
    pub fn losses(inter: bool, prop: bool, neg: bool) -> Self {
        assert!(inter || prop || neg, "at least one loss required");
        SupaVariant {
            use_inter: inter,
            use_prop: prop,
            use_neg: neg,
            ..Self::default()
        }
    }

    /// `SUPA_sn` — shared node-type parameter.
    pub fn sn() -> Self {
        SupaVariant {
            shared_alpha: true,
            ..Self::default()
        }
    }

    /// `SUPA_se` — shared context embedding.
    pub fn se() -> Self {
        SupaVariant {
            shared_context: true,
            ..Self::default()
        }
    }

    /// `SUPA_s` — all heterogeneity components removed.
    pub fn s() -> Self {
        SupaVariant {
            shared_alpha: true,
            shared_context: true,
            ..Self::default()
        }
    }

    /// `SUPA_nf` — no short-term memory.
    pub fn nf() -> Self {
        SupaVariant {
            no_forget: true,
            ..Self::default()
        }
    }

    /// `SUPA_nd` — no propagation decay/filter.
    pub fn nd() -> Self {
        SupaVariant {
            no_decay: true,
            ..Self::default()
        }
    }

    /// `SUPA_nt` — all time components removed.
    pub fn nt() -> Self {
        SupaVariant {
            no_forget: true,
            no_decay: true,
            ..Self::default()
        }
    }

    /// The Table VII loss-ablation grid with paper-style names.
    pub fn loss_grid() -> Vec<(&'static str, SupaVariant)> {
        vec![
            ("SUPA_Linter", Self::losses(true, false, false)),
            ("SUPA_Lprop", Self::losses(false, true, false)),
            ("SUPA_Lneg", Self::losses(false, false, true)),
            ("SUPA_w/o_Linter", Self::losses(false, true, true)),
            ("SUPA_w/o_Lprop", Self::losses(true, false, true)),
            ("SUPA_w/o_Lneg", Self::losses(true, true, false)),
        ]
    }

    /// The Table VIII heterogeneity/dynamics grid with paper-style names.
    pub fn structure_grid() -> Vec<(&'static str, SupaVariant)> {
        vec![
            ("SUPA_sn", Self::sn()),
            ("SUPA_se", Self::se()),
            ("SUPA_s", Self::s()),
            ("SUPA_nf", Self::nf()),
            ("SUPA_nd", Self::nd()),
            ("SUPA_nt", Self::nt()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_enables_everything() {
        let v = SupaVariant::full();
        assert!(v.use_inter && v.use_prop && v.use_neg);
        assert!(!v.shared_alpha && !v.shared_context && !v.no_forget && !v.no_decay);
    }

    #[test]
    fn grids_have_paper_cardinalities() {
        assert_eq!(SupaVariant::loss_grid().len(), 6);
        assert_eq!(SupaVariant::structure_grid().len(), 6);
    }

    #[test]
    fn structure_variants_compose() {
        assert!(SupaVariant::s().shared_alpha && SupaVariant::s().shared_context);
        assert!(SupaVariant::nt().no_forget && SupaVariant::nt().no_decay);
        assert!(!SupaVariant::nf().no_decay);
        assert!(!SupaVariant::nd().no_forget);
    }

    #[test]
    #[should_panic(expected = "at least one loss")]
    fn all_losses_off_rejected() {
        let _ = SupaVariant::losses(false, false, false);
    }
}
