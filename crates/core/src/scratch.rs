//! Reusable scratch state for the sample → update → propagate hot path.
//!
//! Every per-event buffer the training loop needs lives here, owned by
//! [`crate::Supa`] and threaded through the hot functions by value (via
//! `std::mem::take`, so the borrow checker sees disjoint borrows of the
//! model and its scratch). After the first few events warm the capacities,
//! the steady-state per-event path performs **zero heap allocations** — a
//! claim enforced by a counting global allocator in `tests/alloc.rs`.
//!
//! Contract for code on the hot path:
//!
//! - *clear, don't drop*: buffers are `clear()`ed (length to zero) and
//!   refilled; capacity is never released;
//! - *bounded shapes*: per-event sizes are bounded by the config
//!   (`2·k` walks of ≤ `l` hops, `2·N_neg` negatives, ≤ `ROWS_BOUND`
//!   gradient rows), so capacities converge after warm-up —
//!   [`SupaScratch::prepare`] pre-reserves them all up front;
//! - *no transient collections*: anything previously built per event
//!   (walk `Vec`s, gradient row `Vec`s, the wave-builder `HashSet`) has a
//!   pooled equivalent here.

use supa_graph::{FlatWalks, TemporalEdge, WalkStep};

use crate::config::SupaConfig;
use crate::event::{EventGrads, EventLoss};

/// Walk-index / negative-index ranges of one event inside a [`SampleArena`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SampleMeta {
    /// Walk-index range (into the arena's `walks`) for the source endpoint.
    pub walks_u: (u32, u32),
    /// Walk-index range for the destination endpoint.
    pub walks_v: (u32, u32),
    /// Index range into `negs`: negatives contrasted against `h*_u`.
    pub negs_u: (u32, u32),
    /// Index range into `negs`: negatives contrasted against `h*_v`.
    pub negs_v: (u32, u32),
}

/// Flat storage for the stochastic choices of one *or many* events: all
/// walks in one [`FlatWalks`], all negatives in one `Vec`, with per-event
/// [`SampleMeta`] ranges. The serial path holds one event at a time; the
/// batched path samples a whole pass into it up front.
#[derive(Debug, Clone, Default)]
pub(crate) struct SampleArena {
    pub walks: FlatWalks,
    pub negs: Vec<u32>,
    pub events: Vec<SampleMeta>,
}

impl SampleArena {
    /// Drops all events, keeping allocations.
    pub fn clear(&mut self) {
        self.walks.clear();
        self.negs.clear();
        self.events.clear();
    }

    /// Negatives of event `idx` contrasted against `h*_u`.
    #[inline]
    pub fn negs_u(&self, idx: usize) -> &[u32] {
        let (lo, hi) = self.events[idx].negs_u;
        &self.negs[lo as usize..hi as usize]
    }

    /// Negatives of event `idx` contrasted against `h*_v`.
    #[inline]
    pub fn negs_v(&self, idx: usize) -> &[u32] {
        let (lo, hi) = self.events[idx].negs_v;
        &self.negs[lo as usize..hi as usize]
    }

    /// Iterates the step slices of a walk-index range.
    #[inline]
    pub fn walk_steps(&self, range: (u32, u32)) -> impl Iterator<Item = &[WalkStep]> + '_ {
        (range.0 as usize..range.1 as usize).map(|i| self.walks.steps_of(i))
    }
}

/// Working buffers for one event's loss + gradient computation (the pure
/// `&self` part of the hot path, so it can run on worker threads too).
#[derive(Debug, Default)]
pub(crate) struct GradScratch {
    /// `h*` of the two endpoints (Eq. 5).
    pub hstar_u: Vec<f32>,
    pub hstar_v: Vec<f32>,
    /// `∂L/∂h*` accumulators.
    pub grad_hstar_u: Vec<f32>,
    pub grad_hstar_v: Vec<f32>,
    /// `h^r = ½(h* + c^r)` of the two endpoints (Eq. 6).
    pub hr_u: Vec<f32>,
    pub hr_v: Vec<f32>,
    /// The event's sparse gradient bundle (pooled rows).
    pub grads: EventGrads,
    /// The event's loss, stashed here by the batched inline path so waves
    /// can compute first and apply in order without a side allocation.
    pub loss: EventLoss,
}

/// A stamp-based node mark set: `O(1)` insert/query, `O(1)` *clear* (bump
/// the epoch), no hashing, no per-wave allocation — replaces the wave
/// builder's `HashSet<u32>`.
#[derive(Debug, Clone, Default)]
pub(crate) struct NodeMarks {
    stamp: Vec<u32>,
    epoch: u32,
}

impl NodeMarks {
    /// Grows the stamp table to cover node ids `< n`.
    pub fn ensure_len(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
    }

    /// Empties the set (constant time; the rare epoch wrap rewrites stamps).
    pub fn clear(&mut self) {
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamp.fill(0);
                1
            }
        };
    }

    #[inline]
    pub fn mark(&mut self, v: u32) {
        self.stamp[v as usize] = self.epoch;
    }

    #[inline]
    pub fn is_marked(&self, v: u32) -> bool {
        self.stamp[v as usize] == self.epoch
    }
}

/// All reusable hot-path state of one model (see module docs).
#[derive(Debug, Default)]
pub(crate) struct SupaScratch {
    /// Frozen stochastic choices (one event serially, a pass when batched).
    pub arena: SampleArena,
    /// Staging buffer for `NegativeSampler::sample_many` (which clears its
    /// output) before appending into the arena's flat `negs`.
    pub neg_tmp: Vec<u32>,
    /// Loss/gradient working buffers for the serial path.
    pub work: GradScratch,
    /// Per-event gradient scratches for inline (non-threaded) wave
    /// processing in the batched path; grows to the longest wave seen.
    pub wave: Vec<GradScratch>,
    /// Touched-node staging for the wave builder.
    pub touched: Vec<u32>,
    /// Wave occupancy marks (replaces the per-wave `HashSet`).
    pub marks: NodeMarks,
}

impl SupaScratch {
    /// Upper bound on distinct gradient rows one event can produce:
    /// `h^L`/`h^S` of both endpoints, `c^r` of both endpoints, one `c`
    /// row per walk hop, one per negative.
    fn rows_bound(cfg: &SupaConfig) -> usize {
        6 + 2 * cfg.num_walks * cfg.walk_length + 2 * cfg.n_neg
    }

    /// Pre-reserves every buffer for the shapes `cfg` implies, so the warm
    /// path never grows a capacity. Idempotent and cheap once warm.
    pub fn prepare(&mut self, cfg: &SupaConfig) {
        let dim = cfg.dim;
        self.arena.walks.reserve(2 * cfg.num_walks, cfg.walk_length);
        self.arena.negs.reserve(2 * cfg.n_neg);
        if self.arena.events.capacity() == 0 {
            self.arena.events.reserve(1);
        }
        self.neg_tmp.reserve(cfg.n_neg);
        self.touched
            .reserve(2 + 2 * cfg.num_walks * cfg.walk_length + 2 * cfg.n_neg);
        for b in [
            &mut self.work.hstar_u,
            &mut self.work.hstar_v,
            &mut self.work.grad_hstar_u,
            &mut self.work.grad_hstar_v,
            &mut self.work.hr_u,
            &mut self.work.hr_v,
        ] {
            b.reserve(dim);
        }
        self.work.grads.prepare(Self::rows_bound(cfg), dim);
    }
}

/// `touched_nodes` over arena-resident samples: every node id whose
/// embedding rows event `idx` can read *or* write — the endpoints, every
/// walk-step node, and every negative. Two events with disjoint touched
/// sets commute exactly (only the `α` drift scalars are shared — the
/// batched path freezes those per wave).
pub(crate) fn touched_nodes(e: &TemporalEdge, arena: &SampleArena, idx: usize, out: &mut Vec<u32>) {
    out.clear();
    out.push(e.src.0);
    out.push(e.dst.0);
    let m = arena.events[idx];
    for range in [m.walks_u, m.walks_v] {
        for steps in arena.walk_steps(range) {
            for step in steps {
                out.push(step.node.0);
            }
        }
    }
    out.extend_from_slice(arena.negs_u(idx));
    out.extend_from_slice(arena.negs_v(idx));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_marks_epoch_clear_is_constant_time() {
        let mut m = NodeMarks::default();
        m.ensure_len(10);
        m.clear();
        m.mark(3);
        m.mark(7);
        assert!(m.is_marked(3) && m.is_marked(7) && !m.is_marked(4));
        m.clear();
        assert!(!m.is_marked(3) && !m.is_marked(7));
        m.mark(4);
        assert!(m.is_marked(4));
        // Wrap-around safety.
        m.epoch = u32::MAX;
        m.clear();
        assert_eq!(m.epoch, 1);
        assert!(!m.is_marked(4));
    }

    #[test]
    fn sample_arena_clear_keeps_capacity() {
        let mut a = SampleArena::default();
        a.negs.extend_from_slice(&[1, 2, 3]);
        a.events.push(SampleMeta::default());
        let neg_cap = a.negs.capacity();
        a.clear();
        assert_eq!(a.negs.capacity(), neg_cap);
        assert!(a.events.is_empty());
    }
}
