//! Property tests for the SUPA model: event processing never corrupts
//! state, scores stay finite under arbitrary streams, ablation variants are
//! consistent, and the forget factor behaves monotonically.

use proptest::prelude::*;
use supa::{Supa, SupaConfig, SupaVariant};
use supa_graph::{
    Dmhg, GraphSchema, MetapathSchema, NodeId, RelationId, RelationSet, TemporalEdge,
};

fn build(n_users: usize, n_items: usize) -> (Dmhg, GraphSchema, Vec<MetapathSchema>) {
    let mut s = GraphSchema::new();
    let user = s.add_node_type("U");
    let item = s.add_node_type("I");
    let r0 = s.add_relation("R0", user, item);
    let r1 = s.add_relation("R1", user, item);
    let mut g = Dmhg::new(s.clone());
    g.add_nodes(user, n_users);
    g.add_nodes(item, n_items);
    let rels = RelationSet::from_iter([r0, r1]);
    let mp = vec![MetapathSchema::new(vec![user, item, user], vec![rels, rels]).unwrap()];
    (g, s, mp)
}

fn cfg() -> SupaConfig {
    SupaConfig {
        dim: 8,
        num_walks: 2,
        walk_length: 2,
        n_neg: 2,
        time_scale: 10.0,
        ..SupaConfig::small()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary edge streams never produce NaN/∞ in embeddings or scores.
    #[test]
    fn state_stays_finite(
        stream in prop::collection::vec((0u32..5, 0u32..8, 0u16..2, 1.0f64..1e5), 1..80),
        seed in 0u64..100,
    ) {
        let (mut g, s, mp) = build(5, 8);
        let mut m = Supa::new(&s, g.num_nodes(), mp, cfg(), SupaVariant::full(), seed).unwrap();
        m.rebuild_negative_samplers(&g);
        let mut edges: Vec<TemporalEdge> = stream.iter()
            .map(|&(u, v, r, t)| TemporalEdge::new(NodeId(u), NodeId(5 + v), RelationId(r), t))
            .collect();
        supa_graph::sort_by_time(&mut edges);
        for e in &edges {
            let loss = m.train_edge(&g, e);
            prop_assert!(loss.total().is_finite() && loss.total() >= 0.0);
            g.add_edge(e.src, e.dst, e.relation, e.time).unwrap();
        }
        for row in 0..13usize {
            for &x in m.state().h_long.row(row) {
                prop_assert!(x.is_finite());
            }
            for &x in m.state().h_short.row(row) {
                prop_assert!(x.is_finite());
            }
        }
        let score = m.gamma(NodeId(0), NodeId(5), RelationId(0));
        prop_assert!(score.is_finite());
    }

    /// The shared-context variant scores identically across relations; the
    /// full variant generally does not (after training).
    #[test]
    fn shared_context_collapses_relations(seed in 0u64..100) {
        let (mut g, s, mp) = build(4, 6);
        let mut edges = Vec::new();
        for i in 0..40u32 {
            let e = TemporalEdge::new(
                NodeId(i % 4),
                NodeId(4 + (i % 6)),
                RelationId((i % 2) as u16),
                (i + 1) as f64,
            );
            g.add_edge(e.src, e.dst, e.relation, e.time).unwrap();
            edges.push(e);
        }
        let mut m = Supa::new(&s, g.num_nodes(), mp, cfg(), SupaVariant::se(), seed).unwrap();
        m.rebuild_negative_samplers(&g);
        m.train_pass(&g, &edges);
        let a = m.gamma(NodeId(0), NodeId(4), RelationId(0));
        let b = m.gamma(NodeId(0), NodeId(4), RelationId(1));
        prop_assert_eq!(a, b, "shared context must be relation-blind");
    }

    /// Longer inactivity never *increases* the forget factor (through any α).
    #[test]
    fn forget_factor_is_antitone(alpha in -5.0f64..5.0, d1 in 0.0f64..1e4, extra in 0.1f64..1e4) {
        use supa::decay::{g_decay, sigmoid};
        let x1 = sigmoid(alpha) * d1;
        let x2 = sigmoid(alpha) * (d1 + extra);
        prop_assert!(g_decay(x2) <= g_decay(x1));
    }

    /// Snapshot → train → restore leaves scores bit-identical to the
    /// snapshot point.
    #[test]
    fn snapshot_restore_exactness(seed in 0u64..100) {
        let (mut g, s, mp) = build(4, 6);
        let mut m = Supa::new(&s, g.num_nodes(), mp, cfg(), SupaVariant::full(), seed).unwrap();
        m.rebuild_negative_samplers(&g);
        let mut edges = Vec::new();
        for i in 0..20u32 {
            let e = TemporalEdge::new(NodeId(i % 4), NodeId(4 + i % 6), RelationId(0), (i + 1) as f64);
            g.add_edge(e.src, e.dst, e.relation, e.time).unwrap();
            edges.push(e);
        }
        m.train_pass(&g, &edges[..10]);
        let snap = m.snapshot();
        let before = m.gamma(NodeId(1), NodeId(5), RelationId(0));
        m.train_pass(&g, &edges[10..]);
        let during = m.gamma(NodeId(1), NodeId(5), RelationId(0));
        m.restore(snap);
        let after = m.gamma(NodeId(1), NodeId(5), RelationId(0));
        prop_assert_eq!(before, after);
        // Training did actually move something in between.
        prop_assert_ne!(before, during);
    }
}
