//! # supa-ingest — bounded-memory streaming ingestion for event dumps
//!
//! `supa_datasets::load_tsv` materialises the whole dump — a `Vec` of every
//! edge plus the full graph — before one event reaches the engine. That is
//! fine for bench-scale synthetic data and hopeless for the paper's
//! production regime (Taobao/Kuaishou, 10⁸ interactions). This crate
//! replays a dump in **two passes with O(nodes + queue) resident memory**:
//!
//! 1. [`scan_tsv`] — one full streaming pass that validates every line,
//!    discovers the node universe (dense `node` lines, or arbitrary string
//!    ids through the bounded [`Interner`], or a schema-inference pre-pass
//!    for headerless dumps), and builds the *prototype* — the same
//!    `Dataset` that `load_tsv` returns, minus the edge vector.
//! 2. [`EventStream`] — a second pass that re-reads the file and yields
//!    `TemporalEdge`s one at a time, to be fed straight into the serving
//!    engine's bounded ingest queue. Backpressure comes from the engine's
//!    admission layer: when the queue is full the caller blocks or sheds
//!    per its `ShedPolicy`, so peak RSS never scales with the event count.
//!
//! The node universe must be known before the engine starts (snapshots,
//! ANN candidates, and the ingest guard are sized from it), which is why
//! the scan is a separate pass rather than interleaved discovery. The
//! price is reading the file twice; the payoff is that a dump larger than
//! RAM replays at full speed.
//!
//! **Bit-identity contract**: for a well-formed, time-sorted dump (what
//! `save_tsv` writes), pass 1's prototype and pass 2's edge sequence are
//! exactly what `load_tsv` would produce, so the engine digest of a
//! streamed replay equals the materialised one. Tests pin this.
//!
//! The crate is dependency-free (std + the workspace graph/dataset crates
//! only) so it can be reused by any front-end.

pub mod interner;
pub mod reader;

pub use interner::{Interner, InternerError, InternerStats};
pub use reader::LineReader;

use std::collections::HashMap;
use std::fs::File;
use std::path::{Path, PathBuf};

use supa_datasets::loader::{parse_endpoint, parse_timestamp, resolve_metapaths};
use supa_datasets::{Dataset, LoadError, LoadErrorKind};
use supa_graph::{Dmhg, GraphSchema, NodeId, NodeTypeId, TemporalEdge};

/// Knobs for [`scan_tsv`] / [`EventStream`].
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Sidecar schema file (`nodetype`/`relation`/`metapath` lines only)
    /// for dumps that carry no in-file schema.
    pub schema_path: Option<PathBuf>,
    /// Hard cap, in bytes, on the interner's resident memory
    /// (`--interner-budget`). Exceeding it is a named error, not growth.
    pub interner_budget: usize,
    /// How many data lines the schema-inference pre-pass examines on a
    /// headerless dump (`--scan-lines`).
    pub scan_lines: usize,
    /// Skip malformed lines (counting them) instead of failing on the
    /// first one. Io and interner-budget errors still abort.
    pub skip_malformed: bool,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            schema_path: None,
            interner_budget: 256 << 20,
            scan_lines: 10_000,
            skip_malformed: false,
        }
    }
}

/// How node identity was established for a dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// Dense `node` lines, exactly `load_tsv`'s id space.
    Declared,
    /// String endpoints interned in first-appearance order against a
    /// declared (in-file or sidecar) schema.
    Interned,
    /// Like `Interned`, with the schema itself synthesized by the
    /// bounded-prefix inference pass.
    Inferred,
}

impl std::fmt::Display for IngestMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IngestMode::Declared => "declared",
            IngestMode::Interned => "interned",
            IngestMode::Inferred => "inferred",
        })
    }
}

/// Streaming counters; pass-1 totals in [`ScanReport::stats`], live pass-2
/// progress via [`EventStream::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IngestStats {
    /// Lines read, of any kind.
    pub lines: u64,
    /// Comment and blank lines.
    pub comments: u64,
    /// Schema lines (`nodetype`/`relation`/`metapath`).
    pub schema_lines: u64,
    /// `node` declaration lines.
    pub node_lines: u64,
    /// Edge events parsed.
    pub edges: u64,
    /// Lines skipped under [`IngestOptions::skip_malformed`].
    pub malformed: u64,
    /// Bytes consumed from the dump.
    pub bytes: u64,
    /// Edges whose timestamp went backwards (a non-zero count voids the
    /// bit-identity contract — `load_tsv` would have re-sorted them).
    pub out_of_order: u64,
    /// Interner counters (zero in [`IngestMode::Declared`]).
    pub interner: InternerStats,
}

/// A named ingestion failure.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IngestError {
    /// Reading the dump or sidecar failed.
    Io { line: usize, msg: String },
    /// A malformed line, in the shared `LoadError` vocabulary.
    Parse(LoadError),
    /// A line that is not valid UTF-8.
    NotUtf8 { line: usize },
    /// The bounded interner failed (budget overflow, spill io).
    Interner { line: usize, source: InternerError },
    /// A string id re-appeared under a relation slot of a different node
    /// type than the one its first appearance fixed.
    TypeConflict {
        line: usize,
        key: String,
        expected: String,
        got: String,
    },
    /// A `node` line after string-id edges (the two id spaces cannot mix).
    MixedIdSpaces { line: usize },
    /// In inferred mode, a relation first appeared after the inference
    /// prefix, so its endpoint types were never discovered.
    RelationPastPrefix {
        line: usize,
        relation: String,
        scan_lines: usize,
    },
    /// The dump declares schema lines although a sidecar schema was given.
    SchemaInDumpAndSidecar { line: usize },
    /// The sidecar schema file contains non-schema lines.
    SidecarData { line: usize },
    /// Pass 2 saw content pass 1 did not (the file changed between the
    /// scan and the replay).
    ChangedBetweenPasses { line: usize },
}

impl IngestError {
    fn parse(line: usize, kind: LoadErrorKind) -> Self {
        IngestError::Parse(LoadError::at(line, kind))
    }

    /// Lenient mode ([`IngestOptions::skip_malformed`]) skips these;
    /// everything else always aborts.
    pub fn recoverable(&self) -> bool {
        matches!(
            self,
            IngestError::Parse(_) | IngestError::NotUtf8 { .. } | IngestError::TypeConflict { .. }
        )
    }

    /// The 1-based dump line the error points at (0 if none).
    pub fn line(&self) -> usize {
        match self {
            IngestError::Io { line, .. }
            | IngestError::NotUtf8 { line }
            | IngestError::Interner { line, .. }
            | IngestError::TypeConflict { line, .. }
            | IngestError::MixedIdSpaces { line }
            | IngestError::RelationPastPrefix { line, .. }
            | IngestError::SchemaInDumpAndSidecar { line }
            | IngestError::SidecarData { line }
            | IngestError::ChangedBetweenPasses { line } => *line,
            IngestError::Parse(e) => e.line,
        }
    }
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io { line: 0, msg } => write!(f, "io error: {msg}"),
            IngestError::Io { line, msg } => write!(f, "line {line}: io error: {msg}"),
            IngestError::Parse(e) => write!(f, "{e}"),
            IngestError::NotUtf8 { line } => write!(f, "line {line}: not valid utf-8"),
            IngestError::Interner { line, source } => write!(f, "line {line}: {source}"),
            IngestError::TypeConflict {
                line,
                key,
                expected,
                got,
            } => write!(
                f,
                "line {line}: node id '{key}' first appeared as type {expected} \
                 but is used here as type {got}"
            ),
            IngestError::MixedIdSpaces { line } => write!(
                f,
                "line {line}: node declaration after string-id edges \
                 (dense and interned id spaces cannot mix)"
            ),
            IngestError::RelationPastPrefix {
                line,
                relation,
                scan_lines,
            } => write!(
                f,
                "line {line}: relation '{relation}' first appears beyond the \
                 {scan_lines}-line inference prefix; raise --scan-lines or \
                 provide a schema"
            ),
            IngestError::SchemaInDumpAndSidecar { line } => write!(
                f,
                "line {line}: dump declares schema lines but a sidecar \
                 --schema file was given"
            ),
            IngestError::SidecarData { line } => write!(
                f,
                "schema file line {line}: only nodetype/relation/metapath \
                 lines are allowed in a sidecar schema"
            ),
            IngestError::ChangedBetweenPasses { line } => {
                write!(f, "line {line}: dump changed between scan and replay")
            }
        }
    }
}

impl std::error::Error for IngestError {}

impl From<LoadError> for IngestError {
    fn from(e: LoadError) -> Self {
        IngestError::Parse(e)
    }
}

/// Incrementally builds a `GraphSchema` + buffered metapath specs from
/// schema directive lines; shared by the main scan and sidecar parsing.
#[derive(Default)]
struct SchemaBuilder {
    schema: GraphSchema,
    metapath_specs: Vec<(usize, Vec<String>)>,
    seen_any: bool,
}

impl SchemaBuilder {
    /// Handles one already-tokenized schema line. `directive` is the
    /// first token; `parts` iterates the rest.
    fn handle<'a>(
        &mut self,
        directive: &str,
        mut parts: impl Iterator<Item = &'a str>,
        lineno: usize,
    ) -> Result<(), IngestError> {
        let err = |kind: LoadErrorKind| IngestError::parse(lineno, kind);
        match directive {
            "nodetype" => {
                let ty = parts
                    .next()
                    .ok_or_else(|| err(LoadErrorKind::MissingField("type name")))?;
                if self.schema.node_type_by_name(ty).is_some() {
                    return Err(err(LoadErrorKind::Duplicate("node type")));
                }
                self.schema.add_node_type(ty);
                reject_trailing(parts, "nodetype", lineno)?;
            }
            "relation" => {
                let rel = parts
                    .next()
                    .ok_or_else(|| err(LoadErrorKind::MissingField("relation name")))?;
                let src = parts
                    .next()
                    .ok_or_else(|| err(LoadErrorKind::MissingField("src type")))?;
                let dst = parts
                    .next()
                    .ok_or_else(|| err(LoadErrorKind::MissingField("dst type")))?;
                if self.schema.relation_by_name(rel).is_some() {
                    return Err(err(LoadErrorKind::Duplicate("relation")));
                }
                let src = self.schema.node_type_by_name(src).ok_or_else(|| {
                    err(LoadErrorKind::UnknownName {
                        what: "src type",
                        name: src.to_string(),
                    })
                })?;
                let dst = self.schema.node_type_by_name(dst).ok_or_else(|| {
                    err(LoadErrorKind::UnknownName {
                        what: "dst type",
                        name: dst.to_string(),
                    })
                })?;
                let rel = rel.to_string();
                self.schema.add_relation(&rel, src, dst);
                reject_trailing(parts, "relation", lineno)?;
            }
            "metapath" => {
                let tokens: Vec<String> = parts.map(str::to_string).collect();
                if self.metapath_specs.iter().any(|(_, prev)| *prev == tokens) {
                    return Err(err(LoadErrorKind::Duplicate("metapath")));
                }
                self.metapath_specs.push((lineno, tokens));
            }
            _ => unreachable!("caller dispatches only schema directives"),
        }
        self.seen_any = true;
        Ok(())
    }
}

fn reject_trailing<'a>(
    mut parts: impl Iterator<Item = &'a str>,
    directive: &'static str,
    lineno: usize,
) -> Result<(), IngestError> {
    let extra: Vec<&str> = parts.by_ref().collect();
    if extra.is_empty() {
        Ok(())
    } else {
        Err(IngestError::parse(
            lineno,
            LoadErrorKind::TrailingFields {
                directive,
                extra: extra.join(" "),
            },
        ))
    }
}

fn open(path: &Path) -> Result<LineReader<File>, IngestError> {
    File::open(path)
        .map(LineReader::new)
        .map_err(|e| IngestError::Io {
            line: 0,
            msg: format!("{}: {e}", path.display()),
        })
}

fn io_at<T>(r: std::io::Result<T>, line: usize) -> Result<T, IngestError> {
    r.map_err(|e| IngestError::Io {
        line,
        msg: e.to_string(),
    })
}

fn utf8(line: &[u8], lineno: usize) -> Result<&str, IngestError> {
    std::str::from_utf8(line).map_err(|_| IngestError::NotUtf8 { line: lineno })
}

/// An edge line's four raw fields. Both `edge SRC DST REL TIME` and the
/// headerless `SRC DST REL TIME` spelling (accepted in the string-id
/// modes) normalise to this.
struct EdgeFields<'a> {
    src: &'a str,
    dst: &'a str,
    rel: &'a str,
    time: Option<&'a str>,
}

/// Pulls `SRC DST REL TIME` out of a token iterator (the `edge` keyword,
/// if present, must already be consumed).
fn edge_fields<'a>(
    mut parts: impl Iterator<Item = &'a str>,
    lineno: usize,
) -> Result<EdgeFields<'a>, IngestError> {
    let err = |kind: LoadErrorKind| IngestError::parse(lineno, kind);
    let src = parts
        .next()
        .ok_or_else(|| err(LoadErrorKind::MissingField("src")))?;
    let dst = parts
        .next()
        .ok_or_else(|| err(LoadErrorKind::MissingField("dst")))?;
    let rel = parts
        .next()
        .ok_or_else(|| err(LoadErrorKind::MissingField("relation")))?;
    let time = parts.next();
    reject_trailing(parts, "edge", lineno)?;
    Ok(EdgeFields {
        src,
        dst,
        rel,
        time,
    })
}

/// Parses a sidecar schema file (`nodetype`/`relation`/`metapath` lines
/// and comments only).
fn load_sidecar(path: &Path) -> Result<SchemaBuilder, IngestError> {
    let mut rdr = open(path)?;
    let mut sb = SchemaBuilder::default();
    while io_at(rdr.read_line(), rdr.lineno() + 1)? {
        let lineno = rdr.lineno();
        let text = utf8(rdr.line(), lineno)?.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let mut parts = text.split_whitespace();
        match parts.next() {
            Some(d @ ("nodetype" | "relation" | "metapath")) => sb.handle(d, parts, lineno)?,
            _ => return Err(IngestError::SidecarData { line: lineno }),
        }
    }
    Ok(sb)
}

/// What the cheap look-ahead over the dump's head found.
enum DumpHead {
    /// Schema lines precede the data (or the dump is empty).
    Headed,
    /// First data line is a `node` declaration without any schema — the
    /// main scan will produce the right named error.
    Nodes,
    /// First data line is an edge and no schema precedes it: run the
    /// inference pre-pass.
    Headerless,
}

/// Reads just far enough to classify the dump: stops at the first
/// non-comment line.
fn peek_head(path: &Path) -> Result<DumpHead, IngestError> {
    let mut rdr = open(path)?;
    while io_at(rdr.read_line(), rdr.lineno() + 1)? {
        let Ok(text) = std::str::from_utf8(rdr.line()) else {
            // Let the main scan report it with full context.
            return Ok(DumpHead::Headerless);
        };
        let text = text.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        return Ok(match text.split_whitespace().next() {
            Some("nodetype" | "relation" | "metapath") => DumpHead::Headed,
            Some("node") => DumpHead::Nodes,
            _ => DumpHead::Headerless,
        });
    }
    Ok(DumpHead::Headed)
}

/// Union-find over `(relation, side)` slots for schema inference.
struct SlotUnion {
    parent: Vec<usize>,
}

impl SlotUnion {
    fn new() -> Self {
        SlotUnion { parent: Vec::new() }
    }

    fn add(&mut self) -> usize {
        self.parent.push(self.parent.len());
        self.parent.len() - 1
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: the smaller (earlier-created) root wins, so
            // synthesized type numbering follows first appearance.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Schema-inference pre-pass for headerless dumps: scan a bounded prefix,
/// treat each `(relation, src/dst position)` as a typed slot, and merge
/// slots that share an id string. Each surviving slot class becomes a
/// synthesized node type `T0, T1, …` (numbered by first appearance).
fn infer_schema(path: &Path, opts: &IngestOptions) -> Result<GraphSchema, IngestError> {
    let mut rdr = open(path)?;
    let mut slots = SlotUnion::new();
    // relation name → (first lineno order index, src slot, dst slot)
    let mut rels: Vec<(String, usize, usize)> = Vec::new();
    let mut rel_index: HashMap<String, usize> = HashMap::new();
    // id string → the slot of its first appearance
    let mut id_slot: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut data_lines = 0usize;
    while data_lines < opts.scan_lines && io_at(rdr.read_line(), rdr.lineno() + 1)? {
        let lineno = rdr.lineno();
        let text = match utf8(rdr.line(), lineno) {
            Ok(t) => t.trim(),
            Err(e) if opts.skip_malformed => {
                let _ = e;
                continue;
            }
            Err(e) => return Err(e),
        };
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        data_lines += 1;
        let mut parts = text.split_whitespace();
        let first = parts.next().unwrap_or("");
        let parsed = if first == "edge" {
            edge_fields(parts, lineno)
        } else {
            edge_fields(std::iter::once(first).chain(parts), lineno)
        };
        let fields = match parsed {
            Ok(f) => f,
            Err(e) if opts.skip_malformed && e.recoverable() => continue,
            Err(e) => return Err(e),
        };
        let ri = match rel_index.get(fields.rel) {
            Some(&i) => i,
            None => {
                let src_slot = slots.add();
                let dst_slot = slots.add();
                rels.push((fields.rel.to_string(), src_slot, dst_slot));
                rel_index.insert(fields.rel.to_string(), rels.len() - 1);
                rels.len() - 1
            }
        };
        let (src_slot, dst_slot) = (rels[ri].1, rels[ri].2);
        for (key, slot) in [(fields.src, src_slot), (fields.dst, dst_slot)] {
            match id_slot.get(key.as_bytes()) {
                Some(&prev) => slots.union(prev, slot),
                None => {
                    id_slot.insert(key.as_bytes().to_vec(), slot);
                }
            }
        }
    }
    // Synthesize types for slot classes in first-appearance order.
    let mut schema = GraphSchema::new();
    let mut type_of_root: HashMap<usize, NodeTypeId> = HashMap::new();
    let mut resolve = |slots: &mut SlotUnion, schema: &mut GraphSchema, slot: usize| {
        let root = slots.find(slot);
        *type_of_root
            .entry(root)
            .or_insert_with(|| schema.add_node_type(format!("T{}", schema.num_node_types())))
    };
    let specs: Vec<(String, usize, usize)> = rels;
    for (name, src_slot, dst_slot) in &specs {
        let src = resolve(&mut slots, &mut schema, *src_slot);
        let dst = resolve(&mut slots, &mut schema, *dst_slot);
        schema.add_relation(name, src, dst);
    }
    Ok(schema)
}

/// The result of pass 1: the prototype dataset (no edges), counters, and
/// the frozen state pass 2 needs to translate endpoints.
impl std::fmt::Debug for ScanReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanReport")
            .field("dataset", &self.dataset.name)
            .field("mode", &self.mode)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

pub struct ScanReport {
    /// Prototype + metapaths, `edges` empty — feed this to
    /// `Supa::from_dataset` and the engine exactly like a materialised
    /// dataset.
    pub dataset: Dataset,
    /// How node identity was established.
    pub mode: IngestMode,
    /// Pass-1 totals.
    pub stats: IngestStats,
    path: PathBuf,
    options: IngestOptions,
    interner: Option<Interner>,
}

impl ScanReport {
    /// Opens pass 2: consumes the report, returning the prototype dataset
    /// and the edge stream separately so the caller can hand the dataset
    /// to the engine while iterating the stream.
    pub fn into_stream(self) -> Result<(Dataset, EventStream), IngestError> {
        let reader = open(&self.path)?;
        let stream = EventStream {
            reader,
            schema: self.dataset.prototype.schema().clone(),
            num_nodes: self.dataset.prototype.num_nodes(),
            mode: self.mode,
            interner: self.interner,
            skip_malformed: self.options.skip_malformed,
            scan_stats: self.stats,
            stats: IngestStats::default(),
            prev_time: f64::NEG_INFINITY,
            fused: false,
        };
        Ok((self.dataset, stream))
    }
}

/// Pass 1: stream the dump once, validating every line and building the
/// prototype with bounded memory. See the crate docs for the three node
/// identity modes.
pub fn scan_tsv(path: &Path, opts: &IngestOptions) -> Result<ScanReport, IngestError> {
    let sidecar = opts.schema_path.is_some();
    let mut sb = match &opts.schema_path {
        Some(p) => load_sidecar(p)?,
        None => SchemaBuilder::default(),
    };
    let mut mode = IngestMode::Interned;
    if !sidecar {
        match peek_head(path)? {
            DumpHead::Headerless => {
                sb.schema = infer_schema(path, opts)?;
                mode = IngestMode::Inferred;
            }
            DumpHead::Headed | DumpHead::Nodes => {}
        }
    }
    let inferred = mode == IngestMode::Inferred;

    let mut rdr = open(path)?;
    let mut stats = IngestStats::default();
    let mut proto: Option<Dmhg> = None;
    let mut interner: Option<Interner> = None;
    let mut prev_time = f64::NEG_INFINITY;

    macro_rules! lenient {
        ($stats:ident, $result:expr) => {
            match $result {
                Ok(v) => v,
                Err(e) => {
                    if opts.skip_malformed && e.recoverable() {
                        $stats.malformed += 1;
                        continue;
                    }
                    return Err(e);
                }
            }
        };
    }

    while io_at(rdr.read_line(), rdr.lineno() + 1)? {
        let lineno = rdr.lineno();
        stats.lines += 1;
        stats.bytes = rdr.bytes();
        let text = lenient!(stats, utf8(rdr.line(), lineno));
        let text = text.trim();
        if text.is_empty() || text.starts_with('#') {
            stats.comments += 1;
            continue;
        }
        let mut parts = text.split_whitespace();
        let first = parts.next().unwrap_or("");
        match first {
            "nodetype" | "relation" | "metapath" => {
                if sidecar {
                    return Err(IngestError::SchemaInDumpAndSidecar { line: lineno });
                }
                if inferred || proto.is_some() || interner.is_some() {
                    // Schema after data: same named error as load_tsv.
                    lenient!(
                        stats,
                        Err::<(), _>(IngestError::parse(lineno, LoadErrorKind::SchemaAfterNodes))
                    );
                }
                lenient!(stats, sb.handle(first, parts, lineno));
                stats.schema_lines += 1;
            }
            "node" => {
                stats.node_lines += 1;
                if interner.is_some() {
                    return Err(IngestError::MixedIdSpaces { line: lineno });
                }
                let g = proto.get_or_insert_with(|| Dmhg::new(sb.schema.clone()));
                lenient!(stats, declare_node(g, parts, lineno));
                mode = IngestMode::Declared;
            }
            _ => {
                // An edge: `edge …` or (string-id modes) a bare 4-field line.
                let declared = mode == IngestMode::Declared;
                let fields = if first == "edge" {
                    lenient!(stats, edge_fields(parts, lineno))
                } else if declared {
                    // Declared mode keeps load_tsv's strict directive set.
                    lenient!(
                        stats,
                        Err::<EdgeFields, _>(IngestError::parse(
                            lineno,
                            LoadErrorKind::UnknownDirective(text.to_string()),
                        ))
                    )
                } else {
                    lenient!(
                        stats,
                        edge_fields(std::iter::once(first).chain(parts), lineno)
                    )
                };
                if declared {
                    // Numeric endpoints against the declared node table.
                    let g = proto.as_ref().expect("declared mode implies nodes");
                    lenient!(stats, check_declared_edge(g, &fields, lineno));
                } else if sb.schema.num_relations() == 0 && !inferred {
                    // No schema at all: load_tsv's error for an edge with
                    // nothing declared.
                    lenient!(
                        stats,
                        Err::<(), _>(IngestError::parse(lineno, LoadErrorKind::EdgeBeforeNodes))
                    );
                } else {
                    if proto.is_none() {
                        proto = Some(Dmhg::new(sb.schema.clone()));
                    }
                    let g = proto.as_mut().expect("just initialised");
                    let it = interner.get_or_insert_with(|| Interner::new(opts.interner_budget));
                    lenient!(
                        stats,
                        intern_edge(g, it, &sb.schema, &fields, lineno, inferred, opts)
                    );
                }
                let t = lenient!(
                    stats,
                    parse_timestamp(fields.time, lineno).map_err(IngestError::Parse)
                );
                if t < prev_time {
                    stats.out_of_order += 1;
                }
                prev_time = t;
                stats.edges += 1;
            }
        }
    }
    stats.bytes = rdr.bytes();
    if let Some(it) = &interner {
        stats.interner = it.stats();
    }

    let prototype = proto.unwrap_or_else(|| Dmhg::new(sb.schema));
    let metapaths = resolve_metapaths(&prototype, sb.metapath_specs)?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("stream")
        .to_string();
    Ok(ScanReport {
        dataset: Dataset {
            name,
            prototype,
            edges: Vec::new(),
            metapaths,
        },
        mode,
        stats,
        path: path.to_path_buf(),
        options: opts.clone(),
        interner,
    })
}

/// Handles one `node ID TYPE` line exactly like `load_tsv`.
fn declare_node<'a>(
    g: &mut Dmhg,
    mut parts: impl Iterator<Item = &'a str>,
    lineno: usize,
) -> Result<(), IngestError> {
    let err = |kind: LoadErrorKind| IngestError::parse(lineno, kind);
    let id_tok = parts
        .next()
        .ok_or_else(|| err(LoadErrorKind::MissingField("node id")))?;
    let id: u32 = id_tok.parse().map_err(|_| {
        err(LoadErrorKind::BadField {
            what: "node id",
            token: id_tok.to_string(),
        })
    })?;
    let ty_name = parts
        .next()
        .ok_or_else(|| err(LoadErrorKind::MissingField("node type")))?;
    let ty = g.schema().node_type_by_name(ty_name).ok_or_else(|| {
        err(LoadErrorKind::UnknownName {
            what: "node type",
            name: ty_name.to_string(),
        })
    })?;
    let assigned = g
        .try_add_node(ty)
        .map_err(|e| err(LoadErrorKind::Graph(e.to_string())))?;
    if assigned != NodeId(id) {
        return Err(err(LoadErrorKind::NonDenseNodeId {
            expected: assigned.0,
            got: id,
        }));
    }
    reject_trailing(parts, "node", lineno)
}

/// Validates a declared-mode edge (numeric endpoints) without storing it.
fn check_declared_edge(g: &Dmhg, fields: &EdgeFields, lineno: usize) -> Result<(), IngestError> {
    let err = |kind: LoadErrorKind| IngestError::parse(lineno, kind);
    let src = parse_endpoint(Some(fields.src), "src", lineno)?;
    let dst = parse_endpoint(Some(fields.dst), "dst", lineno)?;
    let rel = g.schema().relation_by_name(fields.rel).ok_or_else(|| {
        err(LoadErrorKind::UnknownName {
            what: "relation",
            name: fields.rel.to_string(),
        })
    })?;
    for endpoint in [src, dst] {
        if endpoint as usize >= g.num_nodes() {
            return Err(err(LoadErrorKind::UndeclaredEndpoint {
                node: endpoint,
                num_nodes: g.num_nodes(),
            }));
        }
    }
    let (ts, td) = (g.node_type(NodeId(src)), g.node_type(NodeId(dst)));
    g.schema()
        .check_edge(rel, ts, td)
        .map_err(|e| err(LoadErrorKind::Graph(e.to_string())))?;
    Ok(())
}

/// Interns a string-id edge's endpoints, registering fresh nodes in the
/// prototype (dense, first-appearance order) and checking type
/// consistency for repeats.
fn intern_edge(
    g: &mut Dmhg,
    it: &mut Interner,
    schema: &GraphSchema,
    fields: &EdgeFields,
    lineno: usize,
    inferred: bool,
    opts: &IngestOptions,
) -> Result<(), IngestError> {
    let rel = match schema.relation_by_name(fields.rel) {
        Some(r) => r,
        None if inferred => {
            return Err(IngestError::RelationPastPrefix {
                line: lineno,
                relation: fields.rel.to_string(),
                scan_lines: opts.scan_lines,
            })
        }
        None => {
            return Err(IngestError::parse(
                lineno,
                LoadErrorKind::UnknownName {
                    what: "relation",
                    name: fields.rel.to_string(),
                },
            ))
        }
    };
    let spec = schema.relation(rel).expect("relation just resolved");
    for (key, want_ty) in [(fields.src, spec.src_type), (fields.dst, spec.dst_type)] {
        let (id, fresh) = it
            .intern(key.as_bytes())
            .map_err(|source| IngestError::Interner {
                line: lineno,
                source,
            })?;
        if fresh {
            let assigned = g
                .try_add_node(want_ty)
                .map_err(|e| IngestError::parse(lineno, LoadErrorKind::Graph(e.to_string())))?;
            debug_assert_eq!(assigned, NodeId(id), "interner and prototype desynced");
        } else if g.node_type(NodeId(id)) != want_ty {
            let name = |t: NodeTypeId| schema.node_type_name(t).unwrap_or("<unknown>").to_string();
            return Err(IngestError::TypeConflict {
                line: lineno,
                key: key.to_string(),
                expected: name(g.node_type(NodeId(id))),
                got: name(want_ty),
            });
        }
    }
    Ok(())
}

/// Pass 2: re-reads the dump and yields edges in file order, translating
/// endpoints through the frozen pass-1 state. Feed each edge to
/// `ServeHandle::ingest` — the engine's bounded queue and admission layer
/// provide the backpressure.
pub struct EventStream {
    reader: LineReader<File>,
    schema: GraphSchema,
    num_nodes: usize,
    mode: IngestMode,
    interner: Option<Interner>,
    skip_malformed: bool,
    /// Pass-1 totals (interner facts, node lines, …).
    scan_stats: IngestStats,
    /// Live pass-2 counters.
    stats: IngestStats,
    prev_time: f64,
    fused: bool,
}

impl EventStream {
    /// Live counters: pass-2 line/byte/edge progress merged with the
    /// pass-1 interner facts.
    pub fn stats(&self) -> IngestStats {
        let mut s = self.stats;
        s.node_lines = self.scan_stats.node_lines;
        s.schema_lines = self.scan_stats.schema_lines;
        s.interner = match &self.interner {
            Some(it) => it.stats(),
            None => self.scan_stats.interner,
        };
        s
    }

    /// How node identity was established in pass 1.
    pub fn mode(&self) -> IngestMode {
        self.mode
    }

    fn next_inner(&mut self) -> Option<Result<TemporalEdge, IngestError>> {
        loop {
            match self.reader.read_line() {
                Ok(false) => return None,
                Ok(true) => {}
                Err(e) => {
                    return Some(Err(IngestError::Io {
                        line: self.reader.lineno() + 1,
                        msg: e.to_string(),
                    }))
                }
            }
            let lineno = self.reader.lineno();
            self.stats.lines += 1;
            self.stats.bytes = self.reader.bytes();
            match self.classify(lineno) {
                Ok(Some(edge)) => {
                    self.stats.edges += 1;
                    if edge.time < self.prev_time {
                        self.stats.out_of_order += 1;
                    }
                    self.prev_time = edge.time;
                    return Some(Ok(edge));
                }
                Ok(None) => {}
                Err(e) => {
                    if self.skip_malformed && e.recoverable() {
                        self.stats.malformed += 1;
                        continue;
                    }
                    return Some(Err(e));
                }
            }
        }
    }

    /// Parses the current line; `Ok(None)` for non-edge lines.
    fn classify(&mut self, lineno: usize) -> Result<Option<TemporalEdge>, IngestError> {
        // Borrow the line bytes once; everything below works on `text`.
        let text = utf8(self.reader.line(), lineno)?.trim();
        if text.is_empty() || text.starts_with('#') {
            self.stats.comments += 1;
            return Ok(None);
        }
        let mut parts = text.split_whitespace();
        let first = parts.next().unwrap_or("");
        let fields = match first {
            // Pass 1 already validated schema and node lines; skip them.
            "nodetype" | "relation" | "metapath" | "node" => return Ok(None),
            "edge" => edge_fields(parts, lineno)?,
            _ if self.mode == IngestMode::Declared => {
                return Err(IngestError::parse(
                    lineno,
                    LoadErrorKind::UnknownDirective(text.to_string()),
                ))
            }
            _ => edge_fields(std::iter::once(first).chain(parts), lineno)?,
        };
        let rel = self.schema.relation_by_name(fields.rel).ok_or_else(|| {
            IngestError::parse(
                lineno,
                LoadErrorKind::UnknownName {
                    what: "relation",
                    name: fields.rel.to_string(),
                },
            )
        })?;
        let (src, dst) = match &mut self.interner {
            None => {
                let src = parse_endpoint(Some(fields.src), "src", lineno)?;
                let dst = parse_endpoint(Some(fields.dst), "dst", lineno)?;
                for endpoint in [src, dst] {
                    if endpoint as usize >= self.num_nodes {
                        return Err(IngestError::parse(
                            lineno,
                            LoadErrorKind::UndeclaredEndpoint {
                                node: endpoint,
                                num_nodes: self.num_nodes,
                            },
                        ));
                    }
                }
                (src, dst)
            }
            Some(it) => {
                let mut translate = |key: &str| -> Result<u32, IngestError> {
                    let (id, fresh) =
                        it.intern(key.as_bytes())
                            .map_err(|source| IngestError::Interner {
                                line: lineno,
                                source,
                            })?;
                    if fresh || id as usize >= self.num_nodes {
                        return Err(IngestError::ChangedBetweenPasses { line: lineno });
                    }
                    Ok(id)
                };
                (translate(fields.src)?, translate(fields.dst)?)
            }
        };
        let t = parse_timestamp(fields.time, lineno)?;
        Ok(Some(TemporalEdge::new(NodeId(src), NodeId(dst), rel, t)))
    }
}

impl Iterator for EventStream {
    type Item = Result<TemporalEdge, IngestError>;

    /// Yields the next edge; after the first error the stream is fused.
    fn next(&mut self) -> Option<Self::Item> {
        if self.fused {
            return None;
        }
        let item = self.next_inner();
        if matches!(item, Some(Err(_))) {
            self.fused = true;
        }
        item
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_dump(content: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "supa-ingest-test-{}-{:x}.tsv",
            std::process::id(),
            interner::fnv1a(content.as_bytes())
        ));
        let mut f = File::create(&path).unwrap();
        f.write_all(content.as_bytes()).unwrap();
        path
    }

    fn collect(path: &Path, opts: &IngestOptions) -> (Dataset, Vec<TemporalEdge>, IngestStats) {
        let report = scan_tsv(path, opts).unwrap();
        let (dataset, mut stream) = report.into_stream().unwrap();
        let mut edges = Vec::new();
        for e in &mut stream {
            edges.push(e.unwrap());
        }
        let stats = stream.stats();
        (dataset, edges, stats)
    }

    const DECLARED: &str = "\
# demo
nodetype User
nodetype Item
relation Click User Item
metapath User Click Item Click User
node 0 User
node 1 Item
node 2 Item
edge 0 1 Click 1.0
edge 0 2 Click 2.0
";

    #[test]
    fn declared_dump_matches_load_tsv_exactly() {
        let path = write_dump(DECLARED);
        let want =
            supa_datasets::load_tsv("d", std::io::BufReader::new(File::open(&path).unwrap()))
                .unwrap();
        let (got, edges, stats) = collect(&path, &IngestOptions::default());
        assert_eq!(got.prototype.schema(), want.prototype.schema());
        assert_eq!(got.num_nodes(), want.num_nodes());
        for id in 0..got.num_nodes() as u32 {
            assert_eq!(
                got.prototype.node_type(NodeId(id)),
                want.prototype.node_type(NodeId(id))
            );
        }
        assert_eq!(got.metapaths, want.metapaths);
        assert_eq!(edges, want.edges);
        assert_eq!(stats.edges, 2);
        assert_eq!(stats.out_of_order, 0);
        assert_eq!(stats.interner.interned, 0);
        let report = scan_tsv(&path, &IngestOptions::default()).unwrap();
        assert_eq!(report.mode, IngestMode::Declared);
        assert!(report.dataset.edges.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interned_dump_with_in_file_schema() {
        let dump = "\
nodetype User
nodetype Item
relation Click User Item
edge alice item-9 Click 1.0
edge bob item-9 Click 2.0
edge alice item-3 Click 3.0
";
        let path = write_dump(dump);
        let report = scan_tsv(&path, &IngestOptions::default()).unwrap();
        assert_eq!(report.mode, IngestMode::Interned);
        assert_eq!(report.stats.interner.interned, 4); // alice, item-9, bob, item-3
        let (dataset, stream) = report.into_stream().unwrap();
        assert_eq!(dataset.num_nodes(), 4);
        let schema = dataset.prototype.schema();
        let user = schema.node_type_by_name("User").unwrap();
        let item = schema.node_type_by_name("Item").unwrap();
        // First-appearance order: alice=0(User), item-9=1(Item), bob=2, item-3=3.
        assert_eq!(dataset.prototype.node_type(NodeId(0)), user);
        assert_eq!(dataset.prototype.node_type(NodeId(1)), item);
        assert_eq!(dataset.prototype.node_type(NodeId(2)), user);
        assert_eq!(dataset.prototype.node_type(NodeId(3)), item);
        let edges: Vec<_> = stream.map(|e| e.unwrap()).collect();
        assert_eq!(edges.len(), 3);
        assert_eq!((edges[0].src, edges[0].dst), (NodeId(0), NodeId(1)));
        assert_eq!((edges[1].src, edges[1].dst), (NodeId(2), NodeId(1)));
        assert_eq!((edges[2].src, edges[2].dst), (NodeId(0), NodeId(3)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn headerless_dump_infers_schema() {
        let dump = "\
# raw production dump: user item behaviour ts
u1 i1 Click 1.0
u2 i1 Click 2.0
u1 i1 Buy 3.0
u2 u1 Follow 4.0
";
        let path = write_dump(dump);
        let report = scan_tsv(&path, &IngestOptions::default()).unwrap();
        assert_eq!(report.mode, IngestMode::Inferred);
        let schema = report.dataset.prototype.schema();
        // Users and items form two slot classes (u* appear as Follow dst,
        // merging Follow's dst slot with the user slot).
        assert_eq!(schema.num_node_types(), 2);
        assert_eq!(schema.num_relations(), 3);
        let click = schema.relation_by_name("Click").unwrap();
        let follow = schema.relation_by_name("Follow").unwrap();
        let click_spec = schema.relation(click).unwrap();
        let follow_spec = schema.relation(follow).unwrap();
        assert_eq!(follow_spec.src_type, click_spec.src_type);
        assert_eq!(follow_spec.dst_type, click_spec.src_type);
        let (_, edges, stats) = collect(&path, &IngestOptions::default());
        assert_eq!(edges.len(), 4);
        assert_eq!(stats.edges, 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn relation_past_prefix_is_named() {
        let dump = "\
u1 i1 Click 1.0
u2 i1 Click 2.0
u1 i2 Surprise 3.0
";
        let path = write_dump(dump);
        let err = scan_tsv(
            &path,
            &IngestOptions {
                scan_lines: 2,
                ..IngestOptions::default()
            },
        )
        .unwrap_err();
        match &err {
            IngestError::RelationPastPrefix { relation, .. } => {
                assert_eq!(relation, "Surprise");
            }
            other => panic!("expected RelationPastPrefix, got {other:?}"),
        }
        assert!(err.to_string().contains("inference prefix"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn type_conflict_is_named() {
        let dump = "\
nodetype User
nodetype Item
relation Click User Item
relation Stock Item Item
edge alice item-1 Click 1.0
edge alice item-1 Stock 2.0
";
        let path = write_dump(dump);
        let err = scan_tsv(&path, &IngestOptions::default()).unwrap_err();
        match &err {
            IngestError::TypeConflict { key, .. } => assert_eq!(key, "alice"),
            other => panic!("expected TypeConflict, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mixed_id_spaces_rejected() {
        let dump = "\
nodetype User
relation R User User
edge a b R 1.0
node 0 User
";
        let path = write_dump(dump);
        let err = scan_tsv(&path, &IngestOptions::default()).unwrap_err();
        assert!(
            matches!(err, IngestError::MixedIdSpaces { line: 4 }),
            "{err:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sidecar_schema_drives_a_bare_dump() {
        let schema = "\
nodetype User
nodetype Item
relation Click User Item
";
        let spath = write_dump(schema);
        let dump = "\
edge u1 i1 Click 1.0
u2 i1 Click 2.0
";
        let dpath = write_dump(dump);
        let opts = IngestOptions {
            schema_path: Some(spath.clone()),
            ..IngestOptions::default()
        };
        let report = scan_tsv(&dpath, &opts).unwrap();
        assert_eq!(report.mode, IngestMode::Interned);
        assert_eq!(report.dataset.num_nodes(), 3);
        // A dump that declares schema on top of a sidecar is rejected.
        let headed = write_dump("nodetype X\nedge a b Click 1.0\n");
        let err = scan_tsv(&headed, &opts).unwrap_err();
        assert!(
            matches!(err, IngestError::SchemaInDumpAndSidecar { .. }),
            "{err:?}"
        );
        // A sidecar with data lines is rejected.
        let bad_sidecar = write_dump("nodetype U\nedge 0 1 R 1.0\n");
        let err = scan_tsv(
            &dpath,
            &IngestOptions {
                schema_path: Some(bad_sidecar.clone()),
                ..IngestOptions::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, IngestError::SidecarData { line: 2 }),
            "{err:?}"
        );
        for p in [spath, dpath, headed, bad_sidecar] {
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn strict_mode_fails_and_lenient_mode_counts() {
        let dump = "\
nodetype User
relation R User User
node 0 User
node 1 User
edge 0 1 R 1.0
edge 0 1 R nan
edge 0 99 R 2.0
edge 0 1 R 3.0
";
        let path = write_dump(dump);
        let err = scan_tsv(&path, &IngestOptions::default()).unwrap_err();
        assert_eq!(err.line(), 6);
        let opts = IngestOptions {
            skip_malformed: true,
            ..IngestOptions::default()
        };
        let report = scan_tsv(&path, &opts).unwrap();
        assert_eq!(report.stats.malformed, 2);
        assert_eq!(report.stats.edges, 2);
        let (_, stream) = report.into_stream().unwrap();
        let mut stream = stream;
        let edges: Vec<_> = (&mut stream).map(|e| e.unwrap()).collect();
        assert_eq!(edges.len(), 2);
        assert_eq!(stream.stats().malformed, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_order_edges_are_counted_not_hidden() {
        let dump = "\
nodetype U
relation R U U
node 0 U
node 1 U
edge 0 1 R 5.0
edge 1 0 R 2.0
";
        let path = write_dump(dump);
        let report = scan_tsv(&path, &IngestOptions::default()).unwrap();
        assert_eq!(report.stats.out_of_order, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_garbage_rejected_in_stream_parser_too() {
        let dump = "\
nodetype U
relation R U U
node 0 U
node 1 U
edge 0 1 R 1.0 extra
";
        let path = write_dump(dump);
        let err = scan_tsv(&path, &IngestOptions::default()).unwrap_err();
        match err {
            IngestError::Parse(e) => {
                assert_eq!(e.line, 5);
                assert!(matches!(
                    e.kind,
                    LoadErrorKind::TrailingFields {
                        directive: "edge",
                        ..
                    }
                ));
            }
            other => panic!("expected Parse(TrailingFields), got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn budget_overflow_surfaces_as_named_interner_error() {
        let mut dump = String::from("nodetype U\nrelation R U U\n");
        for i in 0..500 {
            dump.push_str(&format!("edge user-{i} item-{i} R {}.0\n", i + 1));
        }
        let path = write_dump(&dump);
        let err = scan_tsv(
            &path,
            &IngestOptions {
                interner_budget: 512,
                ..IngestOptions::default()
            },
        )
        .unwrap_err();
        match &err {
            IngestError::Interner {
                source: InternerError::BudgetExceeded { budget, .. },
                ..
            } => assert_eq!(*budget, 512),
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_is_fused_after_error() {
        let dump = "\
nodetype U
relation R U U
node 0 U
edge 0 0 R 1.0
garbage line here
edge 0 0 R 2.0
";
        let path = write_dump(dump);
        // Lenient scan so pass 1 succeeds; strict stream so pass 2 errors.
        let report = scan_tsv(
            &path,
            &IngestOptions {
                skip_malformed: true,
                ..IngestOptions::default()
            },
        )
        .unwrap();
        let (_, mut stream) = report.into_stream().unwrap();
        stream.skip_malformed = false;
        assert!(stream.next().unwrap().is_ok());
        assert!(stream.next().unwrap().is_err());
        assert!(stream.next().is_none(), "stream must fuse after an error");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_and_schema_only_dumps_scan_cleanly() {
        let path = write_dump("# nothing but comments\n\n");
        let report = scan_tsv(&path, &IngestOptions::default()).unwrap();
        assert_eq!(report.dataset.num_nodes(), 0);
        assert_eq!(report.stats.edges, 0);
        let (_, stream) = report.into_stream().unwrap();
        assert_eq!(stream.count(), 0);
        std::fs::remove_file(&path).ok();
    }
}
