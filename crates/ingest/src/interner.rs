//! Bounded-memory string → dense-id interner.
//!
//! External dumps identify nodes by arbitrary byte strings. The serving
//! stack wants dense `u32` ids assigned in first-appearance order (that is
//! what `Dmhg::try_add_node` produces, so first-appearance order makes the
//! streamed prototype bit-identical to the materialised one). At
//! production scale the id population does not fit an unbounded
//! `HashMap<String, u32>`, so this interner enforces a hard byte budget:
//!
//! - Live keys sit in an open-addressed FNV-1a table (`Slot` array) whose
//!   key bytes live in one append-only arena — two allocations total, no
//!   per-key `String`.
//! - When growing the table or arena would exceed the budget, the live
//!   entries are flushed as one *sorted run* to a temp file and the table
//!   restarts empty. Each run keeps a small in-memory index (one full key
//!   every [`INDEX_STRIDE`] records) so a miss costs one seek plus at most
//!   a stride of sequential records.
//! - Keys found in a run are re-cached in the live table under their
//!   original id, so hot keys stop paying the disk probe. Ids are never
//!   reassigned: the `(key sequence) → (id sequence)` mapping is a pure
//!   function of first-appearance order, independent of the budget or how
//!   many spills happened — that is the spill-determinism contract the
//!   tests pin.
//! - When even a freshly-spilled minimal table plus the accumulated run
//!   indexes cannot fit the budget, interning fails with the named
//!   [`InternerError::BudgetExceeded`] instead of quietly growing.
//!
//! Memory is accounted as `slots + arena + run indexes`; run *files* live
//! on disk and are deleted when the interner drops.

use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

/// One full key is kept in memory per this many spilled records.
const INDEX_STRIDE: usize = 64;
/// Slot count of a freshly-created (or freshly-spilled) table.
const MIN_SLOTS: usize = 1024;
/// Rehash when the table passes this occupancy.
const MAX_LOAD_NUM: usize = 7;
const MAX_LOAD_DEN: usize = 10;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over raw key bytes — the table hash and the digest family used
/// across the repo.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A named interner failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InternerError {
    /// The hard `--interner-budget` cap cannot hold the working set: even
    /// after spilling the live table, `needed` bytes of resident state
    /// would remain.
    BudgetExceeded { budget: usize, needed: usize },
    /// A spill-run file operation failed.
    Io(String),
    /// The dense id space (`u32`) is exhausted.
    TooManyKeys,
}

impl std::fmt::Display for InternerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InternerError::BudgetExceeded { budget, needed } => write!(
                f,
                "interner budget exceeded: resident state needs {needed} bytes \
                 but --interner-budget is {budget}"
            ),
            InternerError::Io(e) => write!(f, "interner spill io error: {e}"),
            InternerError::TooManyKeys => write!(f, "interner id space exhausted (u32)"),
        }
    }
}

impl std::error::Error for InternerError {}

/// An occupied table slot; `id == EMPTY` marks a free slot.
#[derive(Clone, Copy)]
struct Slot {
    hash: u64,
    key_off: u32,
    key_len: u32,
    id: u32,
}

const EMPTY: u32 = u32::MAX;

const FREE: Slot = Slot {
    hash: 0,
    key_off: 0,
    key_len: 0,
    id: EMPTY,
};

/// One sorted spill run on disk plus its sparse in-memory index.
struct Run {
    path: PathBuf,
    file: File,
    /// File offset of every `INDEX_STRIDE`-th record.
    offsets: Vec<u64>,
    /// Full first key of each indexed block, packed end-to-end.
    index_keys: Vec<u8>,
    /// `(offset, len)` of each block-first key inside `index_keys`.
    index_spans: Vec<(u32, u32)>,
    records: u64,
    bytes: u64,
}

impl Run {
    fn index_bytes(&self) -> usize {
        self.offsets.capacity() * 8
            + self.index_keys.capacity()
            + self.index_spans.capacity() * std::mem::size_of::<(u32, u32)>()
    }

    fn block_key(&self, i: usize) -> &[u8] {
        let (off, len) = self.index_spans[i];
        &self.index_keys[off as usize..(off + len) as usize]
    }
}

/// Counters for the memory-proxy benchmark and `ServeMetrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternerStats {
    /// Distinct keys interned so far (== the dense id population).
    pub interned: u64,
    /// Live-table spills to disk.
    pub spills: u64,
    /// Current resident bytes (slots + arena + run indexes).
    pub mem_bytes: u64,
    /// High-water resident bytes.
    pub peak_mem_bytes: u64,
    /// Bytes written to spill-run files on disk.
    pub run_bytes: u64,
}

/// Bounded-memory open-addressed interner with spill-to-sorted-runs.
pub struct Interner {
    budget: usize,
    slots: Vec<Slot>,
    live: usize,
    arena: Vec<u8>,
    next_id: u32,
    runs: Vec<Run>,
    spill_dir: PathBuf,
    spills: u64,
    run_bytes: u64,
    peak_mem: usize,
    /// Scratch buffer for run lookups (reused, never per-call).
    scratch: Vec<u8>,
    tag: u64,
}

impl Interner {
    /// Creates an interner with a hard resident-memory budget in bytes.
    /// Spill runs go to the system temp directory.
    pub fn new(budget: usize) -> Self {
        Self::with_spill_dir(budget, std::env::temp_dir())
    }

    /// Same, spilling runs into `dir`.
    pub fn with_spill_dir(budget: usize, dir: PathBuf) -> Self {
        // Distinguish concurrent interners in one process without a
        // global counter: hash the object address via a leaked cell would
        // be overkill; pid + monotonic per-instance run counter suffices
        // because the pid is in the filename and each instance carries a
        // distinct tag derived from its spill count + address.
        let mut it = Interner {
            budget,
            slots: vec![FREE; MIN_SLOTS],
            live: 0,
            arena: Vec::new(),
            next_id: 0,
            runs: Vec::new(),
            spill_dir: dir,
            spills: 0,
            run_bytes: 0,
            peak_mem: 0,
            scratch: Vec::new(),
            tag: 0,
        };
        it.tag = fnv1a(&(std::ptr::addr_of!(it) as usize).to_ne_bytes());
        it.peak_mem = it.mem_bytes();
        it
    }

    /// Distinct keys interned (== next dense id).
    pub fn len(&self) -> u64 {
        u64::from(self.next_id)
    }

    /// True when no key has been interned.
    pub fn is_empty(&self) -> bool {
        self.next_id == 0
    }

    /// Current resident bytes: table + arena + run indexes.
    pub fn mem_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot>()
            + self.arena.capacity()
            + self.runs.iter().map(Run::index_bytes).sum::<usize>()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> InternerStats {
        InternerStats {
            interned: self.len(),
            spills: self.spills,
            mem_bytes: self.mem_bytes() as u64,
            peak_mem_bytes: self.peak_mem.max(self.mem_bytes()) as u64,
            run_bytes: self.run_bytes,
        }
    }

    /// Looks `key` up, assigning the next dense id on first appearance.
    /// Returns `(id, freshly_assigned)`.
    pub fn intern(&mut self, key: &[u8]) -> Result<(u32, bool), InternerError> {
        let hash = fnv1a(key);
        if let Some(id) = self.probe_live(hash, key) {
            return Ok((id, false));
        }
        if let Some(id) = self.probe_runs(key)? {
            // Re-cache under the original id so hot keys stop hitting disk.
            self.insert(hash, key, id)?;
            return Ok((id, false));
        }
        if self.next_id == EMPTY {
            return Err(InternerError::TooManyKeys);
        }
        let id = self.next_id;
        self.insert(hash, key, id)?;
        self.next_id += 1;
        Ok((id, true))
    }

    fn probe_live(&self, hash: u64, key: &[u8]) -> Option<u32> {
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let s = self.slots[i];
            if s.id == EMPTY {
                return None;
            }
            if s.hash == hash
                && self.arena[s.key_off as usize..(s.key_off + s.key_len) as usize] == *key
            {
                return Some(s.id);
            }
            i = (i + 1) & mask;
        }
    }

    /// Searches the spill runs newest-first (a re-cached key may appear in
    /// several runs with the same id; any hit is authoritative).
    fn probe_runs(&mut self, key: &[u8]) -> Result<Option<u32>, InternerError> {
        for r in (0..self.runs.len()).rev() {
            if let Some(id) = self.probe_one_run(r, key)? {
                return Ok(Some(id));
            }
        }
        Ok(None)
    }

    fn probe_one_run(&mut self, r: usize, key: &[u8]) -> Result<Option<u32>, InternerError> {
        let run = &self.runs[r];
        if run.records == 0 {
            return Ok(None);
        }
        // Last indexed block whose first key is <= the target.
        let n = run.index_spans.len();
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if run.block_key(mid) <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo == 0 {
            return Ok(None); // target sorts before the first record
        }
        let block = lo - 1;
        let start = run.offsets[block];
        let limit = if block + 1 < n {
            run.offsets[block + 1]
        } else {
            run.bytes
        };
        // Sequential scan of one block through the reusable scratch buffer.
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = self.scan_block(r, start, limit, key, &mut scratch);
        self.scratch = scratch;
        result
    }

    fn scan_block(
        &mut self,
        r: usize,
        start: u64,
        limit: u64,
        key: &[u8],
        scratch: &mut Vec<u8>,
    ) -> Result<Option<u32>, InternerError> {
        let run = &mut self.runs[r];
        let len = (limit - start) as usize;
        scratch.clear();
        scratch.resize(len, 0);
        run.file
            .seek(SeekFrom::Start(start))
            .map_err(|e| InternerError::Io(e.to_string()))?;
        run.file
            .read_exact(scratch)
            .map_err(|e| InternerError::Io(e.to_string()))?;
        let mut pos = 0usize;
        while pos + 8 <= len {
            let klen = u32::from_le_bytes(scratch[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            if pos + klen + 4 > len {
                return Err(InternerError::Io("truncated spill-run record".into()));
            }
            let rec_key = &scratch[pos..pos + klen];
            pos += klen;
            let id = u32::from_le_bytes(scratch[pos..pos + 4].try_into().unwrap());
            pos += 4;
            match rec_key.cmp(key) {
                std::cmp::Ordering::Equal => return Ok(Some(id)),
                std::cmp::Ordering::Greater => return Ok(None),
                std::cmp::Ordering::Less => {}
            }
        }
        Ok(None)
    }

    /// Inserts `(key, id)` into the live table, spilling first if the
    /// growth would bust the budget.
    fn insert(&mut self, hash: u64, key: &[u8], id: u32) -> Result<(), InternerError> {
        // Grow the table ahead of the insert if needed.
        if (self.live + 1) * MAX_LOAD_DEN > self.slots.len() * MAX_LOAD_NUM {
            let grown_slots = self.slots.len() * 2 * std::mem::size_of::<Slot>();
            if grown_slots + self.arena_need(key) + self.index_mem() > self.budget {
                self.spill()?;
            } else {
                self.grow_table();
            }
        } else if self.table_mem() + self.arena_need(key) + self.index_mem() > self.budget {
            self.spill()?;
        }
        // After a spill the minimal table must fit; otherwise the budget is
        // simply too small for the run indexes + one key.
        let needed = self.table_mem() + self.arena_need(key) + self.index_mem();
        if needed > self.budget {
            return Err(InternerError::BudgetExceeded {
                budget: self.budget,
                needed,
            });
        }
        let off = self.arena.len();
        if self.arena.len() + key.len() > self.arena.capacity() {
            // Exact growth keeps the accounting honest (no 2× overshoot
            // that busts the budget invisibly).
            let want = (self.arena.len() + key.len()).max(self.arena.capacity() + 4096);
            self.arena.reserve_exact(want - self.arena.len());
        }
        self.arena.extend_from_slice(key);
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        while self.slots[i].id != EMPTY {
            i = (i + 1) & mask;
        }
        self.slots[i] = Slot {
            hash,
            key_off: off as u32,
            key_len: key.len() as u32,
            id,
        };
        self.live += 1;
        self.peak_mem = self.peak_mem.max(self.mem_bytes());
        Ok(())
    }

    fn table_mem(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot>()
    }

    fn index_mem(&self) -> usize {
        self.runs.iter().map(Run::index_bytes).sum()
    }

    /// Arena capacity after inserting `key`, mirroring the exact
    /// `reserve_exact` growth in [`Self::insert`] so the budget check sees
    /// the true post-insert footprint.
    fn arena_need(&self, key: &[u8]) -> usize {
        let after = self.arena.len() + key.len();
        if after <= self.arena.capacity() {
            self.arena.capacity()
        } else {
            after.max(self.arena.capacity() + 4096)
        }
    }

    fn grow_table(&mut self) {
        let new_len = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![FREE; new_len]);
        let mask = new_len - 1;
        for s in old {
            if s.id == EMPTY {
                continue;
            }
            let mut i = (s.hash as usize) & mask;
            while self.slots[i].id != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = s;
        }
        self.peak_mem = self.peak_mem.max(self.mem_bytes());
    }

    /// Flushes the live table as one sorted run and restarts empty.
    fn spill(&mut self) -> Result<(), InternerError> {
        if self.live == 0 {
            return Ok(());
        }
        let mut entries: Vec<(&[u8], u32)> = self
            .slots
            .iter()
            .filter(|s| s.id != EMPTY)
            .map(|s| {
                (
                    &self.arena[s.key_off as usize..(s.key_off + s.key_len) as usize],
                    s.id,
                )
            })
            .collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(b.0));

        let path = self.spill_dir.join(format!(
            "supa-ingest-{}-{:016x}-{}.run",
            std::process::id(),
            self.tag,
            self.spills
        ));
        let io = |e: std::io::Error| InternerError::Io(format!("{}: {e}", path.display()));
        let mut w = BufWriter::new(File::create(&path).map_err(io)?);
        let mut offsets = Vec::new();
        let mut index_keys = Vec::new();
        let mut index_spans = Vec::new();
        let mut pos = 0u64;
        for (i, (key, id)) in entries.iter().enumerate() {
            if i % INDEX_STRIDE == 0 {
                offsets.push(pos);
                index_spans.push((index_keys.len() as u32, key.len() as u32));
                index_keys.extend_from_slice(key);
            }
            w.write_all(&(key.len() as u32).to_le_bytes()).map_err(io)?;
            w.write_all(key).map_err(io)?;
            w.write_all(&id.to_le_bytes()).map_err(io)?;
            pos += 8 + key.len() as u64;
        }
        w.flush().map_err(io)?;
        drop(w);
        let file = File::open(&path).map_err(io)?;
        self.run_bytes += pos;
        self.runs.push(Run {
            path,
            file,
            offsets,
            index_keys,
            index_spans,
            records: entries.len() as u64,
            bytes: pos,
        });
        self.spills += 1;
        self.slots = vec![FREE; MIN_SLOTS];
        self.live = 0;
        self.arena = Vec::new();
        self.peak_mem = self.peak_mem.max(self.mem_bytes());
        Ok(())
    }
}

impl Drop for Interner {
    fn drop(&mut self) {
        for r in &self.runs {
            let _ = std::fs::remove_file(&r.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// splitmix64 — tiny deterministic generator; the crate is
    /// dependency-free so tests roll their own.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn assigns_dense_first_appearance_ids() {
        let mut it = Interner::new(1 << 20);
        assert_eq!(it.intern(b"alice").unwrap(), (0, true));
        assert_eq!(it.intern(b"bob").unwrap(), (1, true));
        assert_eq!(it.intern(b"alice").unwrap(), (0, false));
        assert_eq!(it.intern(b"").unwrap(), (2, true));
        assert_eq!(it.intern(b"").unwrap(), (2, false));
        assert_eq!(it.len(), 3);
        assert_eq!(it.stats().spills, 0);
    }

    #[test]
    fn random_roundtrip_matches_hashmap_reference() {
        let mut it = Interner::new(1 << 22);
        let mut reference: HashMap<Vec<u8>, u32> = HashMap::new();
        let mut state = 0xDEAD_BEEFu64;
        for _ in 0..20_000 {
            let r = splitmix(&mut state);
            let key = format!("key-{}", r % 3000).into_bytes();
            let (id, fresh) = it.intern(&key).unwrap();
            match reference.get(&key) {
                Some(&want) => {
                    assert_eq!(id, want);
                    assert!(!fresh);
                }
                None => {
                    assert!(fresh);
                    assert_eq!(u64::from(id), reference.len() as u64);
                    reference.insert(key, id);
                }
            }
        }
        assert_eq!(it.len(), reference.len() as u64);
    }

    #[test]
    fn spills_under_small_budget_and_ids_are_budget_invariant() {
        // Same key sequence through a tight budget (forces spills) and a
        // roomy one (none): identical id assignment.
        let keys: Vec<Vec<u8>> = (0..4000)
            .map(|i| format!("node-{}-{}", i % 2500, i % 7).into_bytes())
            .collect();
        let mut tight = Interner::new(96 * 1024);
        let mut roomy = Interner::new(64 << 20);
        for k in &keys {
            let a = tight.intern(k).unwrap();
            let b = roomy.intern(k).unwrap();
            assert_eq!(a, b, "key {:?}", String::from_utf8_lossy(k));
        }
        assert!(tight.stats().spills > 0, "budget never forced a spill");
        assert_eq!(roomy.stats().spills, 0);
        assert!(tight.stats().run_bytes > 0);
        assert!(tight.mem_bytes() <= 96 * 1024);
    }

    #[test]
    fn spill_runs_replay_deterministically() {
        // Two interners with the same tight budget over the same stream
        // must agree on every id AND on the spill count.
        let mut state = 7u64;
        let keys: Vec<Vec<u8>> = (0..3000)
            .map(|_| format!("u{:x}", splitmix(&mut state) % 1500).into_bytes())
            .collect();
        let mut a = Interner::new(64 * 1024);
        let mut b = Interner::new(64 * 1024);
        for k in &keys {
            assert_eq!(a.intern(k).unwrap(), b.intern(k).unwrap());
        }
        assert_eq!(a.stats().spills, b.stats().spills);
        assert_eq!(a.stats().interned, b.stats().interned);
    }

    #[test]
    fn collision_heavy_adversarial_keys() {
        // Keys engineered to collide in the table: FNV-1a of a single
        // zero byte repeated differs, but we can force identical *slots*
        // by keying on hash & small mask — simplest adversary is many
        // keys whose hashes share low bits. Build keys until we have 64
        // sharing the bottom 10 bits of their hash, then intern them all
        // plus re-lookups.
        let mut bucket: Vec<Vec<u8>> = Vec::new();
        let mut i = 0u64;
        while bucket.len() < 64 {
            let k = format!("adv-{i}").into_bytes();
            if fnv1a(&k) & 0x3FF == 0x123 {
                bucket.push(k);
            }
            i += 1;
        }
        let mut it = Interner::new(1 << 20);
        for (want, k) in bucket.iter().enumerate() {
            assert_eq!(it.intern(k).unwrap(), (want as u32, true));
        }
        for (want, k) in bucket.iter().enumerate() {
            assert_eq!(it.intern(k).unwrap(), (want as u32, false));
        }
    }

    #[test]
    fn equal_prefix_keys_resolve_across_spills() {
        // Keys sharing a long common prefix stress the run index (block
        // firsts are full keys, so equal 8-byte prefixes must not
        // confuse the binary search).
        let prefix = "p".repeat(40);
        let keys: Vec<Vec<u8>> = (0..2000)
            .map(|i| format!("{prefix}{i}").into_bytes())
            .collect();
        let mut it = Interner::new(64 * 1024);
        let mut want = Vec::new();
        for k in &keys {
            want.push(it.intern(k).unwrap().0);
        }
        assert!(it.stats().spills > 0);
        for (k, &w) in keys.iter().zip(&want) {
            assert_eq!(it.intern(k).unwrap(), (w, false), "lost {k:?}");
        }
    }

    #[test]
    fn budget_overflow_is_a_named_error() {
        // A budget smaller than one minimal table cannot hold anything.
        let mut it = Interner::new(512);
        let err = it.intern(b"x").unwrap_err();
        match err {
            InternerError::BudgetExceeded { budget, needed } => {
                assert_eq!(budget, 512);
                assert!(needed > 512);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        assert!(err.to_string().contains("interner budget exceeded"));
    }

    #[test]
    fn spill_files_are_removed_on_drop() {
        let dir = std::env::temp_dir();
        let before: Vec<_> = run_files(&dir);
        {
            let mut it = Interner::with_spill_dir(64 * 1024, dir.clone());
            for i in 0..3000 {
                it.intern(format!("drop-test-{i}").as_bytes()).unwrap();
            }
            assert!(it.stats().spills > 0);
            assert!(run_files(&dir).len() > before.len());
        }
        assert_eq!(run_files(&dir).len(), before.len());
    }

    fn run_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
        let pid = std::process::id().to_string();
        std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(&format!("supa-ingest-{pid}-")))
            })
            .collect()
    }
}
