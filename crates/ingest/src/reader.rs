//! Chunked line reader with one reusable buffer.
//!
//! `BufRead::lines()` allocates a fresh `String` per line — at 10⁸ lines
//! that is 10⁸ allocations for bytes we look at exactly once. This reader
//! instead `read_until`s into a single `Vec<u8>` that is reused for every
//! line, tracking the 1-based line number and total bytes consumed.

use std::io::{BufRead, BufReader, Read};

/// Default chunk size of the underlying buffered reader.
pub const CHUNK_BYTES: usize = 256 * 1024;

/// A line-at-a-time reader over any `Read`, allocating once.
pub struct LineReader<R: Read> {
    inner: BufReader<R>,
    buf: Vec<u8>,
    lineno: usize,
    bytes: u64,
}

impl<R: Read> LineReader<R> {
    /// Wraps `inner` with the default chunk size.
    pub fn new(inner: R) -> Self {
        LineReader {
            inner: BufReader::with_capacity(CHUNK_BYTES, inner),
            buf: Vec::with_capacity(256),
            lineno: 0,
            bytes: 0,
        }
    }

    /// Reads the next line into the internal buffer. Returns `false` at
    /// end of input. The terminator (`\n`, `\r\n`) is stripped.
    pub fn read_line(&mut self) -> std::io::Result<bool> {
        self.buf.clear();
        let n = self.inner.read_until(b'\n', &mut self.buf)?;
        if n == 0 {
            return Ok(false);
        }
        self.bytes += n as u64;
        self.lineno += 1;
        if self.buf.last() == Some(&b'\n') {
            self.buf.pop();
        }
        if self.buf.last() == Some(&b'\r') {
            self.buf.pop();
        }
        Ok(true)
    }

    /// The current line's bytes (terminator stripped).
    pub fn line(&self) -> &[u8] {
        &self.buf
    }

    /// 1-based number of the current line.
    pub fn lineno(&self) -> usize {
        self.lineno
    }

    /// Total bytes consumed from the underlying reader, terminators
    /// included.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn yields_lines_without_terminators() {
        let mut r = LineReader::new(Cursor::new(b"a b\r\nc\n\nlast".to_vec()));
        let mut got = Vec::new();
        while r.read_line().unwrap() {
            got.push((r.lineno(), String::from_utf8(r.line().to_vec()).unwrap()));
        }
        assert_eq!(
            got,
            vec![
                (1, "a b".to_string()),
                (2, "c".to_string()),
                (3, String::new()),
                (4, "last".to_string())
            ]
        );
        assert_eq!(r.bytes(), 12);
    }

    #[test]
    fn buffer_is_reused_across_lines() {
        let long = "x".repeat(200);
        let input = format!("{long}\nshort\n{long}\n");
        let mut r = LineReader::new(Cursor::new(input.into_bytes()));
        assert!(r.read_line().unwrap());
        let cap_after_long = r.buf.capacity();
        assert!(r.read_line().unwrap());
        assert!(r.read_line().unwrap());
        assert_eq!(r.buf.capacity(), cap_after_long, "buffer was reallocated");
        assert!(!r.read_line().unwrap());
    }
}
