//! Property tests across the baseline family: every method must survive
//! arbitrary small graphs (including degenerate ones), produce finite
//! scores, and be deterministic under a fixed seed.

use proptest::prelude::*;
use supa_baselines::{
    deepwalk::{DeepWalk, DeepWalkConfig},
    dygnn::{DyGnn, DyGnnConfig},
    line::{Line, LineConfig},
    netwalk::{NetWalk, NetWalkConfig},
};
use supa_datasets::Dataset;
use supa_eval::{Recommender, Scorer};
use supa_graph::{Dmhg, GraphSchema, NodeId, RelationId, TemporalEdge};

fn build(stream: &[(u8, u8, u8, u16)]) -> (Dmhg, Vec<TemporalEdge>) {
    let mut s = GraphSchema::new();
    let u = s.add_node_type("U");
    let i = s.add_node_type("I");
    s.add_relation("A", u, i);
    s.add_relation("B", u, i);
    let mut g = Dmhg::new(s);
    let us = g.add_nodes(u, 6);
    let is_ = g.add_nodes(i, 8);
    let mut edges = Vec::new();
    for (k, &(a, b, r, t)) in stream.iter().enumerate() {
        let e = TemporalEdge::new(
            us[a as usize % 6],
            is_[b as usize % 8],
            RelationId((r % 2) as u16),
            t as f64 + k as f64 * 1e-3 + 1.0,
        );
        g.add_edge(e.src, e.dst, e.relation, e.time).unwrap();
        edges.push(e);
    }
    supa_graph::sort_by_time(&mut edges);
    (g, edges)
}

fn fast_models(seed: u64, metapaths: Vec<supa_graph::MetapathSchema>) -> Vec<Box<dyn Recommender>> {
    let _ = metapaths;
    vec![
        Box::new(DeepWalk::new(
            DeepWalkConfig {
                epochs: 1,
                walks_per_node: 1,
                ..Default::default()
            },
            seed,
        )),
        Box::new(Line::new(
            LineConfig {
                epochs: 1,
                ..Default::default()
            },
            seed,
        )),
        Box::new(DyGnn::new(DyGnnConfig::default(), seed)),
        Box::new(NetWalk::new(
            NetWalkConfig {
                passes: 1,
                ..Default::default()
            },
            seed,
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary streams (possibly tiny or with repeated edges) never panic
    /// and never produce non-finite scores.
    #[test]
    fn shallow_baselines_survive_arbitrary_streams(
        stream in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), 1u16..1000), 0..60),
        seed in 0u64..50,
    ) {
        let (g, edges) = build(&stream);
        for mut m in fast_models(seed, vec![]) {
            m.fit(&g, &edges);
            let s = m.score(NodeId(0), NodeId(6), RelationId(0));
            prop_assert!(s.is_finite(), "{} produced {s}", m.name());
            // Incremental path also survives.
            m.fit_incremental(&g, &edges[..edges.len().min(5)]);
            prop_assert!(m.score(NodeId(1), NodeId(7), RelationId(1)).is_finite());
        }
    }

    /// Fit → score is deterministic per seed and differs across seeds for
    /// non-trivial streams.
    #[test]
    fn shallow_baselines_are_seed_deterministic(
        stream in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), 1u16..1000), 20..60),
    ) {
        let (g, edges) = build(&stream);
        for make in [0usize, 1, 2, 3] {
            let score = |seed: u64| {
                let mut m = fast_models(seed, vec![]).swap_remove(make);
                m.fit(&g, &edges);
                m.score(NodeId(0), NodeId(6), RelationId(0))
            };
            prop_assert_eq!(score(9), score(9));
        }
    }
}

/// Static fixture checks that also exercise the registry against the full
/// catalog datasets at a tiny scale.
#[test]
fn registry_methods_fit_on_every_catalog_dataset() {
    for d in supa_datasets::all_datasets(0.004, 5) {
        let g = d.full_graph();
        // One cheap representative per family keeps this test quick.
        for name in ["DeepWalk", "DyGNN", "DyHNE"] {
            let mut m = supa_baselines::baseline_by_name(name, &d, 5).unwrap();
            m.fit(&g, &d.edges);
            let e = &d.edges[0];
            assert!(
                m.score(e.src, e.dst, e.relation).is_finite(),
                "{name} on {}",
                d.name
            );
        }
    }
}

/// Empty training data is tolerated by every registered method.
#[test]
fn all_methods_tolerate_empty_training() {
    let d: Dataset = supa_datasets::taobao(0.004, 5);
    let g = d.prototype.clone();
    for mut m in supa_baselines::all_baselines(&d, 5) {
        m.fit(&g, &[]);
        let s = m.score(NodeId(0), NodeId(1), RelationId(0));
        assert!(s.is_finite(), "{} non-finite on empty fit", m.name());
    }
}
