//! DeepWalk (Perozzi et al., KDD 2014) — exact algorithm.
//!
//! Uniform truncated random walks + skip-gram with negative sampling.
//! Ignores node/edge types and timestamps entirely (the paper's point of
//! comparison for heterogeneity- and time-blindness).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use supa_embed::sgns::train_walk_window;
use supa_embed::EmbeddingTable;
use supa_eval::{Recommender, Scorer};
use supa_graph::{Dmhg, NodeId, RelationId, TemporalEdge};

use crate::common::{global_sampler, uniform_walk};

/// DeepWalk configuration (reduced scale defaults for the synthetic data).
#[derive(Debug, Clone)]
pub struct DeepWalkConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Walks started per node per epoch.
    pub walks_per_node: usize,
    /// Walk length (hops).
    pub walk_length: usize,
    /// Skip-gram window size.
    pub window: usize,
    /// Epochs over the node set.
    pub epochs: usize,
    /// Negatives per positive pair.
    pub n_neg: usize,
    /// SGD learning rate.
    pub lr: f32,
}

impl Default for DeepWalkConfig {
    fn default() -> Self {
        DeepWalkConfig {
            dim: 32,
            walks_per_node: 4,
            walk_length: 10,
            window: 2,
            epochs: 2,
            n_neg: 3,
            lr: 0.025,
        }
    }
}

/// The DeepWalk recommender.
pub struct DeepWalk {
    cfg: DeepWalkConfig,
    seed: u64,
    centers: Option<EmbeddingTable>,
    contexts: Option<EmbeddingTable>,
}

impl DeepWalk {
    /// Creates an untrained DeepWalk model.
    pub fn new(cfg: DeepWalkConfig, seed: u64) -> Self {
        DeepWalk {
            cfg,
            seed,
            centers: None,
            contexts: None,
        }
    }

    /// The center (input) embedding of a node, if trained.
    pub fn embedding(&self, v: NodeId) -> Option<&[f32]> {
        self.centers.as_ref().map(|t| t.row(v.index()))
    }
}

impl Scorer for DeepWalk {
    fn score(&self, u: NodeId, v: NodeId, _r: RelationId) -> f32 {
        match &self.centers {
            Some(t) => supa_embed::vecmath::dot(t.row(u.index()), t.row(v.index())),
            None => 0.0,
        }
    }
}

impl Recommender for DeepWalk {
    fn name(&self) -> &str {
        "DeepWalk"
    }

    fn fit(&mut self, g: &Dmhg, _train: &[TemporalEdge]) {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n = g.num_nodes();
        let mut centers = EmbeddingTable::new(n, self.cfg.dim, 0.5 / self.cfg.dim as f32, &mut rng);
        let mut contexts = EmbeddingTable::new(n, self.cfg.dim, 0.0, &mut rng);
        let Some(sampler) = global_sampler(g) else {
            return;
        };
        let n_neg = self.cfg.n_neg;
        for _ in 0..self.cfg.epochs {
            for start in 0..n {
                if g.degree(NodeId(start as u32)) == 0 {
                    continue;
                }
                for _ in 0..self.cfg.walks_per_node {
                    let walk =
                        uniform_walk(g, NodeId(start as u32), self.cfg.walk_length, &mut rng);
                    train_walk_window(
                        &mut centers,
                        &mut contexts,
                        &walk,
                        self.cfg.window,
                        self.cfg.lr,
                        |negs| {
                            negs.clear();
                            for _ in 0..n_neg {
                                negs.push(sampler.sample(&mut rng) as usize);
                            }
                        },
                    );
                }
            }
        }
        self.centers = Some(centers);
        self.contexts = Some(contexts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supa_datasets::uci;

    #[test]
    fn untrained_model_scores_zero() {
        let m = DeepWalk::new(DeepWalkConfig::default(), 1);
        assert_eq!(m.score(NodeId(0), NodeId(1), RelationId(0)), 0.0);
        assert!(m.embedding(NodeId(0)).is_none());
    }

    #[test]
    fn learns_community_structure() {
        // Two disconnected cliques: within-clique scores must dominate.
        let mut s = supa_graph::GraphSchema::new();
        let u = s.add_node_type("U");
        let r = s.add_relation("R", u, u);
        let mut g = Dmhg::new(s);
        let nodes = g.add_nodes(u, 10);
        let mut t = 0.0;
        for a in 0..5 {
            for b in (a + 1)..5 {
                t += 1.0;
                g.add_edge(nodes[a], nodes[b], r, t).unwrap();
                g.add_edge(nodes[a + 5], nodes[b + 5], r, t).unwrap();
            }
        }
        let mut m = DeepWalk::new(
            DeepWalkConfig {
                epochs: 6,
                ..Default::default()
            },
            7,
        );
        m.fit(&g, &[]);
        let within = m.score(nodes[0], nodes[1], r);
        let across = m.score(nodes[0], nodes[6], r);
        assert!(
            within > across,
            "within-clique {within} must beat across-clique {across}"
        );
    }

    #[test]
    fn runs_on_a_catalog_dataset() {
        let d = uci(0.02, 3);
        let g = d.full_graph();
        let mut m = DeepWalk::new(
            DeepWalkConfig {
                epochs: 1,
                walks_per_node: 1,
                ..Default::default()
            },
            5,
        );
        m.fit(&g, &d.edges);
        assert!(m.embedding(NodeId(0)).is_some());
        assert_eq!(m.name(), "DeepWalk");
        assert!(!m.is_dynamic());
    }
}
