//! MB-GMN (Xia et al., SIGIR 2021) — architecture-faithful reduction.
//!
//! MB-GMN's core idea is a *graph meta network*: behaviour-specific
//! parameters are not learned independently but **generated** from learned
//! behaviour embeddings by a shared meta network, so behaviours share
//! meta-knowledge and sparse behaviours borrow strength from dense ones.
//!
//! **Kept**: learned behaviour embeddings, a shared meta-MLP generating
//! per-behaviour transformations, per-behaviour propagation, and
//! behaviour-conditioned scoring. **Simplified**: the generated
//! transformation is a `d`-dim gating vector (diagonal transform) instead of
//! a full `d×d` matrix, and propagation is one hop.

use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use supa_eval::{Recommender, Scorer};
use supa_graph::{Dmhg, NodeId, RelationId, TemporalEdge};
use supa_tensor::{CsrMatrix, Matrix, ParamId, ParamStore, Tape, Var};

use crate::common::{bpr_triples, relation_adjacencies};

/// MB-GMN configuration.
#[derive(Debug, Clone)]
pub struct MbGmnConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Training steps.
    pub steps: usize,
    /// BPR triples per step.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
}

impl Default for MbGmnConfig {
    fn default() -> Self {
        MbGmnConfig {
            dim: 32,
            steps: 120,
            batch: 256,
            lr: 0.01,
        }
    }
}

/// The MB-GMN recommender.
pub struct MbGmn {
    cfg: MbGmnConfig,
    seed: u64,
    finals: Vec<Matrix>,
}

impl MbGmn {
    /// Creates an untrained MB-GMN model.
    pub fn new(cfg: MbGmnConfig, seed: u64) -> Self {
        MbGmn {
            cfg,
            seed,
            finals: Vec::new(),
        }
    }

    /// Behaviour-`r` representation:
    /// `E + (Â_r E) ⊙ σ( tanh(m_r W₁ + b₁) W₂ + b₂ )` —
    /// the gate is *generated* from the behaviour embedding `m_r` by the
    /// shared meta network `(W₁, b₁, W₂, b₂)`.
    #[allow(clippy::too_many_arguments)]
    fn forward_rel(
        tape: &mut Tape,
        e: ParamId,
        m_r: ParamId,
        meta_w1: ParamId,
        meta_b1: ParamId,
        meta_w2: ParamId,
        meta_b2: ParamId,
        adj: &Rc<CsrMatrix>,
    ) -> Var {
        let e0 = tape.param(e);
        let mv = tape.param(m_r);
        let w1 = tape.param(meta_w1);
        let b1 = tape.param(meta_b1);
        let w2 = tape.param(meta_w2);
        let b2 = tape.param(meta_b2);
        // Meta network: behaviour embedding → gating vector (1×d).
        let h = tape.matmul(mv, w1);
        let h = tape.add(h, b1);
        let h = tape.tanh(h);
        let gate = tape.matmul(h, w2);
        let gate = tape.add(gate, b2);
        let gate = tape.sigmoid(gate);
        // Propagate and gate.
        let agg = tape.spmm(Rc::clone(adj), e0);
        let gated = tape.mul_row_vec(agg, gate);
        tape.add(e0, gated)
    }
}

impl Scorer for MbGmn {
    fn score(&self, u: NodeId, v: NodeId, r: RelationId) -> f32 {
        match self.finals.get(r.index()) {
            Some(m) if u.index() < m.rows() && v.index() < m.rows() => m
                .row(u.index())
                .iter()
                .zip(m.row(v.index()))
                .map(|(&a, &b)| a * b)
                .sum(),
            _ => 0.0,
        }
    }
}

impl Recommender for MbGmn {
    fn name(&self) -> &str {
        "MB-GMN"
    }

    fn embedding(&self, v: NodeId, r: RelationId) -> Option<Vec<f32>> {
        self.finals
            .get(r.index())
            .filter(|m| v.index() < m.rows())
            .map(|m| m.row(v.index()).to_vec())
    }

    fn fit(&mut self, g: &Dmhg, train: &[TemporalEdge]) {
        self.finals.clear();
        if train.is_empty() {
            return;
        }
        let n = g.num_nodes();
        let n_rel = g.schema().num_relations();
        let d = self.cfg.dim;
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let adjs = relation_adjacencies(n, n_rel, train);
        let mut by_rel: Vec<Vec<TemporalEdge>> = vec![Vec::new(); n_rel];
        for e in train {
            by_rel[e.relation.index()].push(*e);
        }

        let mut params = ParamStore::new();
        let e = params.add("E", Matrix::uniform(n, d, 0.1, &mut rng));
        let behaviours: Vec<ParamId> = (0..n_rel)
            .map(|r| params.add(format!("m_{r}"), Matrix::uniform(1, d, 0.5, &mut rng)))
            .collect();
        let meta_w1 = params.add("meta_W1", Matrix::glorot(d, d, &mut rng));
        let meta_b1 = params.add("meta_b1", Matrix::zeros(1, d));
        let meta_w2 = params.add("meta_W2", Matrix::glorot(d, d, &mut rng));
        let meta_b2 = params.add("meta_b2", Matrix::zeros(1, d));

        for step in 0..self.cfg.steps {
            let rel = (0..n_rel)
                .map(|k| (step + k) % n_rel)
                .find(|&r| !by_rel[r].is_empty());
            let Some(rel) = rel else { break };
            let triples = bpr_triples(g, &by_rel[rel], self.cfg.batch, &mut rng);
            let (us, ps, ns): (Vec<u32>, Vec<u32>, Vec<u32>) =
                triples
                    .iter()
                    .fold((vec![], vec![], vec![]), |mut acc, &(u, p, nn)| {
                        acc.0.push(u);
                        acc.1.push(p);
                        acc.2.push(nn);
                        acc
                    });
            let mut tape = Tape::new(&params);
            let final_r = Self::forward_rel(
                &mut tape,
                e,
                behaviours[rel],
                meta_w1,
                meta_b1,
                meta_w2,
                meta_b2,
                &adjs[rel],
            );
            let ru = tape.gather(final_r, us);
            let rp = tape.gather(final_r, ps);
            let rn = tape.gather(final_r, ns);
            let pos = tape.rowwise_dot(ru, rp);
            let neg = tape.rowwise_dot(ru, rn);
            let loss = tape.bpr_loss_mean(pos, neg);
            let grads = tape.backward(loss);
            params.adam_step(&grads, self.cfg.lr);
        }

        for rel in 0..n_rel {
            let mut tape = Tape::new(&params);
            let final_r = Self::forward_rel(
                &mut tape,
                e,
                behaviours[rel],
                meta_w1,
                meta_b1,
                meta_w2,
                meta_b2,
                &adjs[rel],
            );
            self.finals.push(tape.value(final_r).clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supa_datasets::taobao;

    #[test]
    fn sparse_behaviour_borrows_from_dense_one() {
        // Taobao-like imbalance: page views dominate, buys are sparse but
        // correlated. MB-GMN's shared meta net should still rank a user's
        // viewed-and-bought items above random ones under Buy.
        let d = taobao(0.02, 13);
        let g = d.full_graph();
        let mut m = MbGmn::new(MbGmnConfig::default(), 13);
        m.fit(&g, &d.edges);
        let buy = d.prototype.schema().relation_by_name("Buy").unwrap();
        let buys: Vec<_> = d.edges.iter().filter(|e| e.relation == buy).collect();
        assert!(!buys.is_empty());
        let mut wins = 0;
        let mut total = 0;
        let item_ty = d.prototype.schema().node_type_by_name("Item").unwrap();
        let items = d.prototype.nodes_of_type(item_ty);
        for e in buys.iter().take(40) {
            let stranger = items[items.len() - 1 - (total % 50)];
            if stranger == e.dst {
                continue;
            }
            total += 1;
            if m.score(e.src, e.dst, buy) > m.score(e.src, stranger, buy) {
                wins += 1;
            }
        }
        assert!(
            wins * 2 > total,
            "only {wins}/{total} buys outranked strangers"
        );
    }

    #[test]
    fn behaviour_embeddings_make_scores_relation_specific() {
        let d = taobao(0.02, 14);
        let g = d.full_graph();
        let mut m = MbGmn::new(
            MbGmnConfig {
                steps: 30,
                ..Default::default()
            },
            14,
        );
        m.fit(&g, &d.edges);
        let e = &d.edges[0];
        let s0 = m.score(e.src, e.dst, RelationId(0));
        let s1 = m.score(e.src, e.dst, RelationId(1));
        assert_ne!(s0, s1);
        assert_eq!(m.name(), "MB-GMN");
    }

    #[test]
    fn untrained_scores_zero() {
        let m = MbGmn::new(MbGmnConfig::default(), 1);
        assert_eq!(m.score(NodeId(0), NodeId(1), RelationId(0)), 0.0);
    }
}
