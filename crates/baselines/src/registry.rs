//! The baseline registry: construct all sixteen methods for a dataset.

use supa_datasets::Dataset;
use supa_eval::Recommender;

use crate::{
    deepwalk::{DeepWalk, DeepWalkConfig},
    dygnn::{DyGnn, DyGnnConfig},
    dyhatr::{DyHatr, DyHatrConfig},
    dyhne::{DyHne, DyHneConfig},
    evolvegcn::{EvolveGcn, EvolveGcnConfig},
    gatne::{Gatne, GatneConfig},
    hybridgnn::{HybridGnn, HybridGnnConfig},
    lightgcn::{LightGcn, LightGcnConfig},
    line::{Line, LineConfig},
    matn::{Matn, MatnConfig},
    mbgmn::{MbGmn, MbGmnConfig},
    melu::{MeLu, MeLuConfig},
    netwalk::{NetWalk, NetWalkConfig},
    ngcf::{Ngcf, NgcfConfig},
    node2vec::{Node2Vec, Node2VecConfig},
    tgat::{Tgat, TgatConfig},
};

/// All sixteen baselines in the paper's table order (Table V/VI rows).
///
/// `dataset` supplies the metapath schemas DyHNE needs; `seed` controls
/// every method's initialisation.
pub fn all_baselines(dataset: &Dataset, seed: u64) -> Vec<Box<dyn Recommender>> {
    vec![
        Box::new(DeepWalk::new(DeepWalkConfig::default(), seed)),
        Box::new(Line::new(LineConfig::default(), seed)),
        Box::new(Node2Vec::new(Node2VecConfig::default(), seed)),
        Box::new(Gatne::new(GatneConfig::default(), seed)),
        Box::new(Ngcf::new(NgcfConfig::default(), seed)),
        Box::new(LightGcn::new(LightGcnConfig::default(), seed)),
        Box::new(Matn::new(MatnConfig::default(), seed)),
        Box::new(MbGmn::new(MbGmnConfig::default(), seed)),
        Box::new(HybridGnn::new(HybridGnnConfig::default(), seed)),
        Box::new(MeLu::new(MeLuConfig::default(), seed)),
        Box::new(NetWalk::new(NetWalkConfig::default(), seed)),
        Box::new(DyGnn::new(DyGnnConfig::default(), seed)),
        Box::new(EvolveGcn::new(EvolveGcnConfig::default(), seed)),
        Box::new(Tgat::new(TgatConfig::default(), seed)),
        Box::new(DyHne::new(
            dataset.metapaths.clone(),
            DyHneConfig::default(),
            seed,
        )),
        Box::new(DyHatr::new(DyHatrConfig::default(), seed)),
    ]
}

/// The six strongest baselines selected by the paper for the §IV-E/§IV-F
/// experiments (Figures 4–6): node2vec, GATNE, LightGCN, MB-GMN, HybridGNN,
/// EvolveGCN.
pub fn fig4_baselines(dataset: &Dataset, seed: u64) -> Vec<Box<dyn Recommender>> {
    let _ = dataset;
    vec![
        Box::new(Node2Vec::new(Node2VecConfig::default(), seed)),
        Box::new(Gatne::new(GatneConfig::default(), seed)),
        Box::new(LightGcn::new(LightGcnConfig::default(), seed)),
        Box::new(MbGmn::new(MbGmnConfig::default(), seed)),
        Box::new(HybridGnn::new(HybridGnnConfig::default(), seed)),
        Box::new(EvolveGcn::new(EvolveGcnConfig::default(), seed)),
    ]
}

/// Constructs one baseline by its table name; `None` for unknown names.
pub fn baseline_by_name(name: &str, dataset: &Dataset, seed: u64) -> Option<Box<dyn Recommender>> {
    let m: Box<dyn Recommender> = match name {
        "DeepWalk" => Box::new(DeepWalk::new(DeepWalkConfig::default(), seed)),
        "LINE" => Box::new(Line::new(LineConfig::default(), seed)),
        "node2vec" => Box::new(Node2Vec::new(Node2VecConfig::default(), seed)),
        "GATNE" => Box::new(Gatne::new(GatneConfig::default(), seed)),
        "NGCF" => Box::new(Ngcf::new(NgcfConfig::default(), seed)),
        "LightGCN" => Box::new(LightGcn::new(LightGcnConfig::default(), seed)),
        "MATN" => Box::new(Matn::new(MatnConfig::default(), seed)),
        "MB-GMN" => Box::new(MbGmn::new(MbGmnConfig::default(), seed)),
        "HybridGNN" => Box::new(HybridGnn::new(HybridGnnConfig::default(), seed)),
        "MeLU" => Box::new(MeLu::new(MeLuConfig::default(), seed)),
        "NetWalk" => Box::new(NetWalk::new(NetWalkConfig::default(), seed)),
        "DyGNN" => Box::new(DyGnn::new(DyGnnConfig::default(), seed)),
        "EvolveGCN" => Box::new(EvolveGcn::new(EvolveGcnConfig::default(), seed)),
        "TGAT" => Box::new(Tgat::new(TgatConfig::default(), seed)),
        "DyHNE" => Box::new(DyHne::new(
            dataset.metapaths.clone(),
            DyHneConfig::default(),
            seed,
        )),
        "DyHATR" => Box::new(DyHatr::new(DyHatrConfig::default(), seed)),
        _ => return None,
    };
    Some(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use supa_datasets::taobao;

    #[test]
    fn registry_has_all_sixteen() {
        let d = taobao(0.02, 1);
        let methods = all_baselines(&d, 1);
        assert_eq!(methods.len(), 16);
        let names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
        for want in [
            "DeepWalk",
            "LINE",
            "node2vec",
            "GATNE",
            "NGCF",
            "LightGCN",
            "MATN",
            "MB-GMN",
            "HybridGNN",
            "MeLU",
            "NetWalk",
            "DyGNN",
            "EvolveGCN",
            "TGAT",
            "DyHNE",
            "DyHATR",
        ] {
            assert!(names.contains(&want), "missing {want}");
        }
    }

    #[test]
    fn dynamic_flags_match_paper_taxonomy() {
        let d = taobao(0.02, 1);
        let dynamic: Vec<String> = all_baselines(&d, 1)
            .iter()
            .filter(|m| m.is_dynamic())
            .map(|m| m.name().to_string())
            .collect();
        for want in ["NetWalk", "DyGNN", "EvolveGCN", "DyHNE", "DyHATR"] {
            assert!(dynamic.iter().any(|n| n == want), "{want} must be dynamic");
        }
        for stat in ["DeepWalk", "LightGCN", "MeLU", "GATNE"] {
            assert!(!dynamic.iter().any(|n| n == stat), "{stat} must be static");
        }
    }

    #[test]
    fn lookup_by_name_roundtrips() {
        let d = taobao(0.02, 1);
        for m in all_baselines(&d, 1) {
            let again = baseline_by_name(m.name(), &d, 1).unwrap();
            assert_eq!(again.name(), m.name());
        }
        assert!(baseline_by_name("NotAModel", &d, 1).is_none());
    }

    #[test]
    fn fig4_selection_matches_paper() {
        let d = taobao(0.02, 1);
        let names: Vec<String> = fig4_baselines(&d, 1)
            .iter()
            .map(|m| m.name().to_string())
            .collect();
        assert_eq!(
            names,
            vec![
                "node2vec",
                "GATNE",
                "LightGCN",
                "MB-GMN",
                "HybridGNN",
                "EvolveGCN"
            ]
        );
    }
}
