//! LINE (Tang et al., WWW 2015) — exact algorithm.
//!
//! First-order proximity (direct neighbours embed close, one shared table)
//! plus second-order proximity (shared neighbourhoods embed close,
//! center/context tables), both trained by edge sampling with negative
//! sampling. The final representation concatenates the two views; scores
//! add the two dot products.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use supa_embed::sgns::{train_pair_dual, train_pair_single};
use supa_embed::EmbeddingTable;
use supa_eval::{Recommender, Scorer};
use supa_graph::{Dmhg, NodeId, RelationId, TemporalEdge};

use crate::common::global_sampler;

/// LINE configuration.
#[derive(Debug, Clone)]
pub struct LineConfig {
    /// Dimension of *each* proximity view.
    pub dim: usize,
    /// Edge-sampling epochs (each epoch samples `|E|` edges).
    pub epochs: usize,
    /// Negatives per sampled edge.
    pub n_neg: usize,
    /// Learning rate.
    pub lr: f32,
}

impl Default for LineConfig {
    fn default() -> Self {
        LineConfig {
            dim: 16,
            epochs: 4,
            n_neg: 3,
            lr: 0.025,
        }
    }
}

/// The LINE recommender.
pub struct Line {
    cfg: LineConfig,
    seed: u64,
    first: Option<EmbeddingTable>,
    second_center: Option<EmbeddingTable>,
    second_context: Option<EmbeddingTable>,
}

impl Line {
    /// Creates an untrained LINE model.
    pub fn new(cfg: LineConfig, seed: u64) -> Self {
        Line {
            cfg,
            seed,
            first: None,
            second_center: None,
            second_context: None,
        }
    }
}

impl Scorer for Line {
    fn score(&self, u: NodeId, v: NodeId, _r: RelationId) -> f32 {
        let mut s = 0.0;
        if let Some(t) = &self.first {
            s += supa_embed::vecmath::dot(t.row(u.index()), t.row(v.index()));
        }
        if let Some(t) = &self.second_center {
            s += supa_embed::vecmath::dot(t.row(u.index()), t.row(v.index()));
        }
        s
    }
}

impl Recommender for Line {
    fn name(&self) -> &str {
        "LINE"
    }

    fn fit(&mut self, g: &Dmhg, train: &[TemporalEdge]) {
        if train.is_empty() {
            return;
        }
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n = g.num_nodes();
        let scale = 0.5 / self.cfg.dim as f32;
        let mut first = EmbeddingTable::new(n, self.cfg.dim, scale, &mut rng);
        let mut center = EmbeddingTable::new(n, self.cfg.dim, scale, &mut rng);
        let mut context = EmbeddingTable::new(n, self.cfg.dim, 0.0, &mut rng);
        let Some(sampler) = global_sampler(g) else {
            return;
        };
        let mut negs = Vec::with_capacity(self.cfg.n_neg);
        let total = self.cfg.epochs * train.len();
        for _ in 0..total {
            let e = &train[rng.random_range(0..train.len())];
            let (u, v) = (e.src.index(), e.dst.index());
            if u == v {
                continue;
            }
            negs.clear();
            for _ in 0..self.cfg.n_neg {
                negs.push(sampler.sample(&mut rng) as usize);
            }
            // First-order: symmetric, same table.
            train_pair_single(&mut first, u, v, &negs, self.cfg.lr);
            // Second-order: directed center → context (and the reverse, since
            // interactions are undirected here).
            train_pair_dual(&mut center, &mut context, u, v, &negs, self.cfg.lr);
            train_pair_dual(&mut center, &mut context, v, u, &negs, self.cfg.lr);
        }
        self.first = Some(first);
        self.second_center = Some(center);
        self.second_context = Some(context);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supa_graph::GraphSchema;

    fn star_graph() -> (Dmhg, Vec<NodeId>, RelationId, Vec<TemporalEdge>) {
        // Two stars sharing no nodes: hub0-{1,2,3}, hub4-{5,6,7}.
        let mut s = GraphSchema::new();
        let u = s.add_node_type("U");
        let r = s.add_relation("R", u, u);
        let mut g = Dmhg::new(s);
        let nodes = g.add_nodes(u, 8);
        let mut edges = Vec::new();
        let mut t = 0.0;
        for &(h, leaves) in &[(0usize, [1usize, 2, 3]), (4, [5, 6, 7])] {
            for &l in &leaves {
                t += 1.0;
                g.add_edge(nodes[h], nodes[l], r, t).unwrap();
                edges.push(TemporalEdge::new(nodes[h], nodes[l], r, t));
            }
        }
        (g, nodes, r, edges)
    }

    #[test]
    fn untrained_scores_zero() {
        let m = Line::new(LineConfig::default(), 1);
        assert_eq!(m.score(NodeId(0), NodeId(1), RelationId(0)), 0.0);
    }

    #[test]
    fn first_order_pulls_neighbours_together() {
        let (g, nodes, r, edges) = star_graph();
        let mut m = Line::new(
            LineConfig {
                epochs: 60,
                ..Default::default()
            },
            5,
        );
        m.fit(&g, &edges);
        // hub0 scores its own leaves above the other star's leaves.
        let own = m.score(nodes[0], nodes[1], r);
        let other = m.score(nodes[0], nodes[5], r);
        assert!(own > other, "own {own} !> other {other}");
    }

    #[test]
    fn second_order_relates_co_neighbours() {
        let (g, nodes, _, edges) = star_graph();
        let mut m = Line::new(
            LineConfig {
                epochs: 80,
                ..Default::default()
            },
            9,
        );
        m.fit(&g, &edges);
        // Leaves 1 and 2 share hub 0: their *center* embeddings should be
        // more aligned than leaf 1 and leaf 5 (different stars).
        let c = m.second_center.as_ref().unwrap();
        let sim = |a: usize, b: usize| {
            supa_embed::vecmath::cosine(c.row(nodes[a].index()), c.row(nodes[b].index()))
        };
        assert!(
            sim(1, 2) > sim(1, 5),
            "co-neighbour similarity {} !> cross-star {}",
            sim(1, 2),
            sim(1, 5)
        );
    }

    #[test]
    fn empty_training_is_noop() {
        let (g, _, _, _) = star_graph();
        let mut m = Line::new(LineConfig::default(), 1);
        m.fit(&g, &[]);
        assert_eq!(m.score(NodeId(0), NodeId(1), RelationId(0)), 0.0);
    }
}
