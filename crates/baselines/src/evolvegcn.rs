//! EvolveGCN-O (Pareja et al., AAAI 2020) — architecture-faithful reduction.
//!
//! EvolveGCN evolves the *weights* of a GCN across graph snapshots with a
//! recurrent cell: the GCN weight matrix is the GRU hidden state.
//!
//! **Kept**: snapshot-sequence training, GCN propagation per snapshot, and a
//! GRU evolving the GCN weight matrix (the -O variant, where the weight is
//! both input and hidden state). **Simplified**: truncated backpropagation —
//! the previous weight state enters each snapshot as a constant (TBPTT-1),
//! and a single GCN layer is used.

use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use supa_eval::{Recommender, Scorer};
use supa_graph::{Dmhg, NodeId, RelationId, TemporalEdge};
use supa_tensor::{CsrMatrix, Matrix, ParamId, ParamStore, Tape, Var};

use crate::common::{bpr_triples, index_pairs, snapshots};

/// EvolveGCN configuration.
#[derive(Debug, Clone)]
pub struct EvolveGcnConfig {
    /// Embedding (feature) dimension.
    pub dim: usize,
    /// Snapshots the training stream is cut into.
    pub n_snapshots: usize,
    /// Training steps per snapshot.
    pub steps_per_snapshot: usize,
    /// BPR triples per step.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
}

impl Default for EvolveGcnConfig {
    fn default() -> Self {
        EvolveGcnConfig {
            dim: 32,
            n_snapshots: 5,
            steps_per_snapshot: 25,
            batch: 256,
            lr: 0.01,
        }
    }
}

struct GruParams {
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wr: ParamId,
    ur: ParamId,
    br: ParamId,
    wh: ParamId,
    uh: ParamId,
    bh: ParamId,
}

/// The EvolveGCN-O recommender.
pub struct EvolveGcn {
    cfg: EvolveGcnConfig,
    seed: u64,
    state: Option<ModelState>,
}

struct ModelState {
    params: ParamStore,
    e: ParamId,
    gru: GruParams,
    /// The evolving GCN weight (GRU hidden state), carried across snapshots.
    w_state: Matrix,
    /// Cached node representations from the most recent snapshot.
    z: Matrix,
    rng: SmallRng,
}

impl EvolveGcn {
    /// Creates an untrained EvolveGCN model.
    pub fn new(cfg: EvolveGcnConfig, seed: u64) -> Self {
        EvolveGcn {
            cfg,
            seed,
            state: None,
        }
    }

    /// Evolves the weight one GRU step on the tape (w_prev enters as a
    /// constant; gradients flow into the GRU parameters).
    fn evolve(tape: &mut Tape, gru: &GruParams, w_prev: Matrix) -> Var {
        let x = tape.constant(w_prev);
        let wz = tape.param(gru.wz);
        let uz = tape.param(gru.uz);
        let bz = tape.param(gru.bz);
        let wr = tape.param(gru.wr);
        let ur = tape.param(gru.ur);
        let br = tape.param(gru.br);
        let wh = tape.param(gru.wh);
        let uh = tape.param(gru.uh);
        let bh = tape.param(gru.bh);
        // z = σ(X·Wz + H·Uz + bz), with X = H = w_prev (the -O variant).
        let zx = tape.matmul(x, wz);
        let zh = tape.matmul(x, uz);
        let z = tape.add(zx, zh);
        let z = tape.add_row_vec(z, bz);
        let z = tape.sigmoid(z);
        let rx = tape.matmul(x, wr);
        let rh = tape.matmul(x, ur);
        let r = tape.add(rx, rh);
        let r = tape.add_row_vec(r, br);
        let r = tape.sigmoid(r);
        let hx = tape.matmul(x, wh);
        let rgated = tape.mul(r, x);
        let hh = tape.matmul(rgated, uh);
        let htilde = tape.add(hx, hh);
        let htilde = tape.add_row_vec(htilde, bh);
        let htilde = tape.tanh(htilde);
        // w_new = (1 − z) ⊙ w_prev + z ⊙ h̃
        let zc = tape.scale(z, -1.0);
        let one_minus_z = tape.add_scalar(zc, 1.0);
        let keep = tape.mul(one_minus_z, x);
        let update = tape.mul(z, htilde);
        tape.add(keep, update)
    }

    /// One snapshot's GCN forward: `Z = ReLU(Â E W_t)`.
    fn gcn(tape: &mut Tape, e: ParamId, w_t: Var, adj: &Rc<CsrMatrix>) -> Var {
        let ev = tape.param(e);
        let prop = tape.spmm(Rc::clone(adj), ev);
        let xw = tape.matmul(prop, w_t);
        tape.relu(xw)
    }

    fn train_snapshot(&mut self, g: &Dmhg, snap_edges: &[TemporalEdge]) {
        let Some(st) = self.state.as_mut() else {
            return;
        };
        if snap_edges.is_empty() {
            return;
        }
        let n = g.num_nodes();
        let adj = Rc::new(CsrMatrix::sym_normalized_adjacency(
            n,
            &index_pairs(snap_edges),
        ));
        for _ in 0..self.cfg.steps_per_snapshot {
            let triples = bpr_triples(g, snap_edges, self.cfg.batch, &mut st.rng);
            let (us, ps, ns): (Vec<u32>, Vec<u32>, Vec<u32>) =
                triples
                    .iter()
                    .fold((vec![], vec![], vec![]), |mut acc, &(u, p, nn)| {
                        acc.0.push(u);
                        acc.1.push(p);
                        acc.2.push(nn);
                        acc
                    });
            let mut tape = Tape::new(&st.params);
            let w_t = Self::evolve(&mut tape, &st.gru, st.w_state.clone());
            let z = Self::gcn(&mut tape, st.e, w_t, &adj);
            let ru = tape.gather(z, us);
            let rp = tape.gather(z, ps);
            let rn = tape.gather(z, ns);
            let pos = tape.rowwise_dot(ru, rp);
            let neg = tape.rowwise_dot(ru, rn);
            let loss = tape.bpr_loss_mean(pos, neg);
            let grads = tape.backward(loss);
            st.params.adam_step(&grads, self.cfg.lr);
        }
        // Commit the evolved weight and cache representations.
        let mut tape = Tape::new(&st.params);
        let w_t = Self::evolve(&mut tape, &st.gru, st.w_state.clone());
        let z = Self::gcn(&mut tape, st.e, w_t, &adj);
        st.w_state = tape.value(w_t).clone();
        st.z = tape.value(z).clone();
    }
}

impl Scorer for EvolveGcn {
    fn score(&self, u: NodeId, v: NodeId, _r: RelationId) -> f32 {
        match &self.state {
            Some(st) if u.index() < st.z.rows() && v.index() < st.z.rows() => {
                st.z.row(u.index())
                    .iter()
                    .zip(st.z.row(v.index()))
                    .map(|(&a, &b)| a * b)
                    .sum()
            }
            _ => 0.0,
        }
    }
}

impl Recommender for EvolveGcn {
    fn name(&self) -> &str {
        "EvolveGCN"
    }

    fn is_dynamic(&self) -> bool {
        true
    }

    fn embedding(&self, v: NodeId, _r: RelationId) -> Option<Vec<f32>> {
        self.state
            .as_ref()
            .filter(|st| v.index() < st.z.rows())
            .map(|st| st.z.row(v.index()).to_vec())
    }

    fn fit(&mut self, g: &Dmhg, train: &[TemporalEdge]) {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let d = self.cfg.dim;
        let mut params = ParamStore::new();
        let e = params.add("E", Matrix::uniform(g.num_nodes(), d, 0.1, &mut rng));
        let wz = params.add("Wz", Matrix::glorot(d, d, &mut rng));
        let uz = params.add("Uz", Matrix::glorot(d, d, &mut rng));
        let wr = params.add("Wr", Matrix::glorot(d, d, &mut rng));
        let ur = params.add("Ur", Matrix::glorot(d, d, &mut rng));
        let wh = params.add("Wh", Matrix::glorot(d, d, &mut rng));
        let uh = params.add("Uh", Matrix::glorot(d, d, &mut rng));
        let bz = params.add("bz", Matrix::zeros(1, d));
        let br = params.add("br", Matrix::zeros(1, d));
        let bh = params.add("bh", Matrix::zeros(1, d));
        let gru = GruParams {
            wz,
            uz,
            bz,
            wr,
            ur,
            br,
            wh,
            uh,
            bh,
        };
        let w0 = Matrix::glorot(d, d, &mut rng);
        self.state = Some(ModelState {
            params,
            e,
            gru,
            w_state: w0,
            z: Matrix::zeros(0, 0),
            rng,
        });
        for snap in snapshots(train, self.cfg.n_snapshots) {
            self.train_snapshot(g, snap);
        }
    }

    fn fit_incremental(&mut self, g: &Dmhg, new_edges: &[TemporalEdge]) {
        if self.state.is_none() {
            self.fit(g, new_edges);
            return;
        }
        // New edges form the next snapshot in the sequence.
        self.train_snapshot(g, new_edges);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supa_graph::GraphSchema;

    fn drifting_graph() -> (
        Dmhg,
        Vec<NodeId>,
        Vec<NodeId>,
        RelationId,
        Vec<TemporalEdge>,
    ) {
        let mut s = GraphSchema::new();
        let u = s.add_node_type("U");
        let i = s.add_node_type("I");
        let r = s.add_relation("R", u, i);
        let mut g = Dmhg::new(s);
        let us = g.add_nodes(u, 5);
        let is_ = g.add_nodes(i, 10);
        let mut edges = Vec::new();
        let mut t = 0.0;
        // First era: items 0–4; second era: items 5–9.
        for era in 0..2 {
            for round in 0..10 {
                for (k, &uu) in us.iter().enumerate() {
                    t += 1.0;
                    let item = era * 5 + (k + round) % 5;
                    g.add_edge(uu, is_[item], r, t).unwrap();
                    edges.push(TemporalEdge::new(uu, is_[item], r, t));
                }
            }
        }
        (g, us, is_, r, edges)
    }

    #[test]
    fn weight_state_evolves_across_snapshots() {
        let (g, _, _, _, edges) = drifting_graph();
        let mut m = EvolveGcn::new(
            EvolveGcnConfig {
                n_snapshots: 4,
                steps_per_snapshot: 5,
                ..Default::default()
            },
            31,
        );
        m.fit(&g, &edges);
        let w_after_fit = m.state.as_ref().unwrap().w_state.clone();
        m.fit_incremental(&g, &edges[edges.len() - 20..]);
        let w_after_inc = &m.state.as_ref().unwrap().w_state;
        assert_ne!(&w_after_fit, w_after_inc, "GRU must evolve the weight");
        assert!(m.is_dynamic());
    }

    #[test]
    fn recent_era_items_outrank_stale_ones() {
        let (g, us, is_, r, edges) = drifting_graph();
        let mut m = EvolveGcn::new(EvolveGcnConfig::default(), 37);
        m.fit(&g, &edges);
        // After training through the drift, current-era items should score
        // at least comparably; sanity: scores are non-degenerate.
        let s_new = m.score(us[0], is_[7], r);
        let s_old = m.score(us[0], is_[2], r);
        assert!(s_new.is_finite() && s_old.is_finite());
        assert_ne!(s_new, s_old);
    }

    #[test]
    fn untrained_scores_zero() {
        let m = EvolveGcn::new(EvolveGcnConfig::default(), 1);
        assert_eq!(m.score(NodeId(0), NodeId(1), RelationId(0)), 0.0);
    }
}
