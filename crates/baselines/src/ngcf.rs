//! NGCF (Wang et al., SIGIR 2019) — exact layer equations, reduced width.
//!
//! Message passing over the user–item graph with feature transforms and the
//! bi-interaction term:
//! `E^{(l+1)} = LeakyReLU( (Â + I) E^{(l)} W₁ + (Â E^{(l)}) ⊙ E^{(l)} W₂ )`,
//! final representation = sum of layers, BPR loss.

use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use supa_eval::{Recommender, Scorer};
use supa_graph::{Dmhg, NodeId, RelationId, TemporalEdge};
use supa_tensor::{CsrMatrix, Matrix, ParamId, ParamStore, Tape};

use crate::common::{bpr_triples, index_pairs};

/// NGCF configuration.
#[derive(Debug, Clone)]
pub struct NgcfConfig {
    /// Embedding dimension (kept constant across layers).
    pub dim: usize,
    /// Propagation layers.
    pub layers: usize,
    /// Training steps.
    pub steps: usize,
    /// BPR triples per step.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// LeakyReLU negative slope.
    pub slope: f32,
}

impl Default for NgcfConfig {
    fn default() -> Self {
        NgcfConfig {
            dim: 32,
            layers: 2,
            steps: 120,
            batch: 256,
            lr: 0.01,
            slope: 0.2,
        }
    }
}

/// The NGCF recommender.
pub struct Ngcf {
    cfg: NgcfConfig,
    seed: u64,
    final_emb: Option<Matrix>,
}

impl Ngcf {
    /// Creates an untrained NGCF model.
    pub fn new(cfg: NgcfConfig, seed: u64) -> Self {
        Ngcf {
            cfg,
            seed,
            final_emb: None,
        }
    }

    fn forward(
        &self,
        tape: &mut Tape,
        e_param: ParamId,
        w1s: &[ParamId],
        w2s: &[ParamId],
        adj: &Rc<CsrMatrix>,
    ) -> supa_tensor::Var {
        let e0 = tape.param(e_param);
        let mut cur = e0;
        let mut acc = e0;
        for l in 0..self.cfg.layers {
            let w1 = tape.param(w1s[l]);
            let w2 = tape.param(w2s[l]);
            let agg = tape.spmm(Rc::clone(adj), cur); // Â E
            let self_plus = tape.add(agg, cur); // (Â + I) E
            let part1 = tape.matmul(self_plus, w1);
            let bi = tape.mul(agg, cur); // Â E ⊙ E
            let part2 = tape.matmul(bi, w2);
            let sum = tape.add(part1, part2);
            cur = tape.leaky_relu(sum, self.cfg.slope);
            acc = tape.add(acc, cur);
        }
        acc
    }
}

impl Scorer for Ngcf {
    fn score(&self, u: NodeId, v: NodeId, _r: RelationId) -> f32 {
        match &self.final_emb {
            Some(m) if u.index() < m.rows() && v.index() < m.rows() => m
                .row(u.index())
                .iter()
                .zip(m.row(v.index()))
                .map(|(&a, &b)| a * b)
                .sum(),
            _ => 0.0,
        }
    }
}

impl Recommender for Ngcf {
    fn name(&self) -> &str {
        "NGCF"
    }

    fn fit(&mut self, g: &Dmhg, train: &[TemporalEdge]) {
        if train.is_empty() {
            self.final_emb = None;
            return;
        }
        let n = g.num_nodes();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let adj = Rc::new(CsrMatrix::sym_normalized_adjacency(n, &index_pairs(train)));
        let mut params = ParamStore::new();
        let e = params.add("E", Matrix::uniform(n, self.cfg.dim, 0.1, &mut rng));
        let w1s: Vec<ParamId> = (0..self.cfg.layers)
            .map(|l| {
                params.add(
                    format!("W1_{l}"),
                    Matrix::glorot(self.cfg.dim, self.cfg.dim, &mut rng),
                )
            })
            .collect();
        let w2s: Vec<ParamId> = (0..self.cfg.layers)
            .map(|l| {
                params.add(
                    format!("W2_{l}"),
                    Matrix::glorot(self.cfg.dim, self.cfg.dim, &mut rng),
                )
            })
            .collect();

        for _ in 0..self.cfg.steps {
            let triples = bpr_triples(g, train, self.cfg.batch, &mut rng);
            let (us, ps, ns): (Vec<u32>, Vec<u32>, Vec<u32>) =
                triples
                    .iter()
                    .fold((vec![], vec![], vec![]), |mut acc, &(u, p, nn)| {
                        acc.0.push(u);
                        acc.1.push(p);
                        acc.2.push(nn);
                        acc
                    });
            let mut tape = Tape::new(&params);
            let final_e = self.forward(&mut tape, e, &w1s, &w2s, &adj);
            let ru = tape.gather(final_e, us);
            let rp = tape.gather(final_e, ps);
            let rn = tape.gather(final_e, ns);
            let pos = tape.rowwise_dot(ru, rp);
            let neg = tape.rowwise_dot(ru, rn);
            let loss = tape.bpr_loss_mean(pos, neg);
            let grads = tape.backward(loss);
            params.adam_step(&grads, self.cfg.lr);
        }

        let mut tape = Tape::new(&params);
        let final_e = self.forward(&mut tape, e, &w1s, &w2s, &adj);
        self.final_emb = Some(tape.value(final_e).clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supa_graph::GraphSchema;

    fn bipartite() -> (
        Dmhg,
        Vec<NodeId>,
        Vec<NodeId>,
        RelationId,
        Vec<TemporalEdge>,
    ) {
        let mut s = GraphSchema::new();
        let u = s.add_node_type("U");
        let i = s.add_node_type("I");
        let r = s.add_relation("R", u, i);
        let mut g = Dmhg::new(s);
        let us = g.add_nodes(u, 6);
        let is_ = g.add_nodes(i, 12);
        let mut edges = Vec::new();
        let mut t = 0.0;
        for round in 0..6 {
            #[allow(clippy::needless_range_loop)] // index selects both user and item
            for uu in 0..6usize {
                t += 1.0;
                let item = if uu < 3 { round } else { 6 + round };
                g.add_edge(us[uu], is_[item], r, t).unwrap();
                edges.push(TemporalEdge::new(us[uu], is_[item], r, t));
            }
        }
        (g, us, is_, r, edges)
    }

    #[test]
    fn learns_the_block_structure() {
        let (g, us, is_, r, edges) = bipartite();
        let mut m = Ngcf::new(NgcfConfig::default(), 11);
        m.fit(&g, &edges);
        let own: f32 = (0..6).map(|k| m.score(us[4], is_[6 + k % 6], r)).sum();
        let other: f32 = (0..6).map(|k| m.score(us[4], is_[k], r)).sum();
        assert!(own > other, "own {own} !> other {other}");
    }

    #[test]
    fn untrained_scores_zero_and_name_is_stable() {
        let m = Ngcf::new(NgcfConfig::default(), 1);
        assert_eq!(m.score(NodeId(0), NodeId(1), RelationId(0)), 0.0);
        assert_eq!(m.name(), "NGCF");
        assert!(!m.is_dynamic());
    }
}
