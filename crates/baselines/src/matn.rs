//! MATN (Xia et al., SIGIR 2020) — architecture-faithful reduction.
//!
//! MATN learns *behaviour-differentiated* user/item representations with a
//! memory-augmented transformer over the per-behaviour aggregations.
//!
//! **Kept**: per-behaviour neighbour aggregation, behaviour-specific
//! transforms, gated combination into behaviour-specific representations,
//! behaviour-conditioned scoring. **Simplified**: the multi-head
//! transformer + external memory is reduced to one linear transform per
//! behaviour with a learned sigmoid gate (the gate plays the attention's
//! role of weighting each behaviour channel).

use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use supa_eval::{Recommender, Scorer};
use supa_graph::{Dmhg, NodeId, RelationId, TemporalEdge};
use supa_tensor::{CsrMatrix, Matrix, ParamId, ParamStore, Tape, Var};

use crate::common::{bpr_triples, relation_adjacencies};

/// MATN configuration.
#[derive(Debug, Clone)]
pub struct MatnConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Training steps.
    pub steps: usize,
    /// BPR triples per step.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
}

impl Default for MatnConfig {
    fn default() -> Self {
        MatnConfig {
            dim: 32,
            steps: 120,
            batch: 256,
            lr: 0.01,
        }
    }
}

/// The MATN recommender.
pub struct Matn {
    cfg: MatnConfig,
    seed: u64,
    /// Cached behaviour-specific final representations, one per relation.
    finals: Vec<Matrix>,
}

impl Matn {
    /// Creates an untrained MATN model.
    pub fn new(cfg: MatnConfig, seed: u64) -> Self {
        Matn {
            cfg,
            seed,
            finals: Vec::new(),
        }
    }

    /// Behaviour-`r` representation: `E + σ(gate_r) · (Â_r E) W_r`.
    fn forward_rel(
        tape: &mut Tape,
        e: ParamId,
        w: ParamId,
        gate: ParamId,
        adj: &Rc<CsrMatrix>,
    ) -> Var {
        let e0 = tape.param(e);
        let wv = tape.param(w);
        let gv = tape.param(gate);
        let agg = tape.spmm(Rc::clone(adj), e0);
        let trans = tape.matmul(agg, wv);
        let gate_s = tape.sigmoid(gv);
        let gated = tape.scale_by(trans, gate_s);
        tape.add(e0, gated)
    }
}

impl Scorer for Matn {
    fn score(&self, u: NodeId, v: NodeId, r: RelationId) -> f32 {
        match self.finals.get(r.index()) {
            Some(m) if u.index() < m.rows() && v.index() < m.rows() => m
                .row(u.index())
                .iter()
                .zip(m.row(v.index()))
                .map(|(&a, &b)| a * b)
                .sum(),
            _ => 0.0,
        }
    }
}

impl Recommender for Matn {
    fn name(&self) -> &str {
        "MATN"
    }

    fn fit(&mut self, g: &Dmhg, train: &[TemporalEdge]) {
        self.finals.clear();
        if train.is_empty() {
            return;
        }
        let n = g.num_nodes();
        let n_rel = g.schema().num_relations();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let adjs = relation_adjacencies(n, n_rel, train);
        // Edges grouped by relation for behaviour-conditioned batches.
        let mut by_rel: Vec<Vec<TemporalEdge>> = vec![Vec::new(); n_rel];
        for e in train {
            by_rel[e.relation.index()].push(*e);
        }

        let mut params = ParamStore::new();
        let e = params.add("E", Matrix::uniform(n, self.cfg.dim, 0.1, &mut rng));
        let ws: Vec<ParamId> = (0..n_rel)
            .map(|r| {
                params.add(
                    format!("W_{r}"),
                    Matrix::glorot(self.cfg.dim, self.cfg.dim, &mut rng),
                )
            })
            .collect();
        let gates: Vec<ParamId> = (0..n_rel)
            .map(|r| params.add(format!("gate_{r}"), Matrix::zeros(1, 1)))
            .collect();

        for step in 0..self.cfg.steps {
            // Round-robin over non-empty behaviours.
            let rel = (0..n_rel)
                .map(|k| (step + k) % n_rel)
                .find(|&r| !by_rel[r].is_empty());
            let Some(rel) = rel else { break };
            let triples = bpr_triples(g, &by_rel[rel], self.cfg.batch, &mut rng);
            let (us, ps, ns): (Vec<u32>, Vec<u32>, Vec<u32>) =
                triples
                    .iter()
                    .fold((vec![], vec![], vec![]), |mut acc, &(u, p, nn)| {
                        acc.0.push(u);
                        acc.1.push(p);
                        acc.2.push(nn);
                        acc
                    });
            let mut tape = Tape::new(&params);
            let final_r = Self::forward_rel(&mut tape, e, ws[rel], gates[rel], &adjs[rel]);
            let ru = tape.gather(final_r, us);
            let rp = tape.gather(final_r, ps);
            let rn = tape.gather(final_r, ns);
            let pos = tape.rowwise_dot(ru, rp);
            let neg = tape.rowwise_dot(ru, rn);
            let loss = tape.bpr_loss_mean(pos, neg);
            let grads = tape.backward(loss);
            params.adam_step(&grads, self.cfg.lr);
        }

        // Cache one final matrix per behaviour.
        for rel in 0..n_rel {
            let mut tape = Tape::new(&params);
            let final_r = Self::forward_rel(&mut tape, e, ws[rel], gates[rel], &adjs[rel]);
            self.finals.push(tape.value(final_r).clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supa_datasets::taobao;
    use supa_graph::GraphSchema;

    #[test]
    fn behaviour_conditioned_scores_differ() {
        let mut s = GraphSchema::new();
        let u = s.add_node_type("U");
        let i = s.add_node_type("I");
        let view = s.add_relation("View", u, i);
        let buy = s.add_relation("Buy", u, i);
        let mut g = Dmhg::new(s);
        let us = g.add_nodes(u, 4);
        let is_ = g.add_nodes(i, 8);
        let mut edges = Vec::new();
        let mut t = 0.0;
        for round in 0..5 {
            for (k, &uu) in us.iter().enumerate() {
                t += 1.0;
                // Views on items 0–3, buys on items 4–7.
                g.add_edge(uu, is_[(k + round) % 4], view, t).unwrap();
                edges.push(TemporalEdge::new(uu, is_[(k + round) % 4], view, t));
                t += 1.0;
                g.add_edge(uu, is_[4 + (k + round) % 4], buy, t).unwrap();
                edges.push(TemporalEdge::new(uu, is_[4 + (k + round) % 4], buy, t));
            }
        }
        let mut m = Matn::new(MatnConfig::default(), 3);
        m.fit(&g, &edges);
        // Bought items outrank viewed-only items under the Buy behaviour.
        let bought: f32 = (4..8).map(|k| m.score(us[0], is_[k], buy)).sum();
        let viewed: f32 = (0..4).map(|k| m.score(us[0], is_[k], buy)).sum();
        assert!(bought > viewed, "buy view: {bought} !> {viewed}");
        assert_ne!(m.score(us[0], is_[0], view), m.score(us[0], is_[0], buy));
    }

    #[test]
    fn runs_on_taobao() {
        let d = taobao(0.02, 5);
        let g = d.full_graph();
        let mut m = Matn::new(
            MatnConfig {
                steps: 20,
                ..Default::default()
            },
            5,
        );
        m.fit(&g, &d.edges);
        assert_eq!(m.finals.len(), 4);
    }

    #[test]
    fn untrained_scores_zero() {
        let m = Matn::new(MatnConfig::default(), 1);
        assert_eq!(m.score(NodeId(0), NodeId(1), RelationId(0)), 0.0);
    }
}
