//! Shared machinery for the baseline implementations.

use rand::rngs::SmallRng;
use rand::{Rng, RngExt};
use supa_embed::NegativeSampler;
use supa_graph::{Dmhg, NodeId, TemporalEdge};

/// A uniform (type- and relation-agnostic) random walk, as used by DeepWalk
/// and friends. Returns node indices including the start.
pub fn uniform_walk<R: Rng + ?Sized>(
    g: &Dmhg,
    start: NodeId,
    length: usize,
    rng: &mut R,
) -> Vec<usize> {
    let mut walk = Vec::with_capacity(length + 1);
    walk.push(start.index());
    let mut cur = start;
    for _ in 0..length {
        let nbrs = g.neighbors(cur);
        if nbrs.is_empty() {
            break;
        }
        cur = nbrs[rng.random_range(0..nbrs.len())].node;
        walk.push(cur.index());
    }
    walk
}

/// A `deg^{0.75}` negative sampler over every node of the graph.
pub fn global_sampler(g: &Dmhg) -> Option<NegativeSampler> {
    let n = g.num_nodes();
    if n == 0 {
        return None;
    }
    let ids: Vec<u32> = (0..n as u32).collect();
    let degs: Vec<f64> = (0..n).map(|i| g.degree(NodeId(i as u32)) as f64).collect();
    Some(NegativeSampler::new(ids, &degs, 0.75))
}

/// A `deg^{0.75}` sampler restricted to one node type.
pub fn typed_sampler(g: &Dmhg, ty: supa_graph::NodeTypeId) -> Option<NegativeSampler> {
    let nodes = g.nodes_of_type(ty);
    if nodes.is_empty() {
        return None;
    }
    let ids: Vec<u32> = nodes.iter().map(|n| n.0).collect();
    let degs: Vec<f64> = nodes.iter().map(|&n| g.degree(n) as f64).collect();
    Some(NegativeSampler::new(ids, &degs, 0.75))
}

/// Draws `n` BPR training triples `(src, positive dst, negative)` from the
/// edge list; negatives share the positive's node type.
pub fn bpr_triples(
    g: &Dmhg,
    edges: &[TemporalEdge],
    n: usize,
    rng: &mut SmallRng,
) -> Vec<(u32, u32, u32)> {
    let mut out = Vec::with_capacity(n);
    if edges.is_empty() {
        return out;
    }
    for _ in 0..n {
        let e = &edges[rng.random_range(0..edges.len())];
        let universe = g.nodes_of_type(g.node_type(e.dst));
        let neg = universe[rng.random_range(0..universe.len())];
        out.push((e.src.0, e.dst.0, neg.0));
    }
    out
}

/// Splits a time-sorted edge slice into `n` consecutive snapshots (for the
/// snapshot-sequence methods: EvolveGCN, DyHATR).
pub fn snapshots(edges: &[TemporalEdge], n: usize) -> Vec<&[TemporalEdge]> {
    supa_graph::temporal_slices(edges, n.max(1))
}

/// Builds one row-normalised adjacency per relation from an edge slice
/// (empty relations yield an all-zero matrix).
pub fn relation_adjacencies(
    n: usize,
    n_relations: usize,
    edges: &[TemporalEdge],
) -> Vec<std::rc::Rc<supa_tensor::CsrMatrix>> {
    let mut per_rel: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n_relations];
    for e in edges {
        per_rel[e.relation.index()].push((e.src.index(), e.dst.index()));
    }
    per_rel
        .into_iter()
        .map(|pairs| std::rc::Rc::new(supa_tensor::CsrMatrix::row_normalized_adjacency(n, &pairs)))
        .collect()
}

/// Collects the undirected `(src, dst)` index pairs of an edge slice.
pub fn index_pairs(edges: &[TemporalEdge]) -> Vec<(usize, usize)> {
    edges
        .iter()
        .map(|e| (e.src.index(), e.dst.index()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use supa_graph::{GraphSchema, RelationId};

    fn graph() -> (Dmhg, Vec<NodeId>, Vec<NodeId>) {
        let mut s = GraphSchema::new();
        let u = s.add_node_type("U");
        let i = s.add_node_type("I");
        let r = s.add_relation("R", u, i);
        let mut g = Dmhg::new(s);
        let us = g.add_nodes(u, 4);
        let is_ = g.add_nodes(i, 6);
        let mut t = 0.0;
        for (a, &uu) in us.iter().enumerate() {
            for (b, &ii) in is_.iter().enumerate() {
                if (a + b) % 2 == 0 {
                    t += 1.0;
                    g.add_edge(uu, ii, r, t).unwrap();
                }
            }
        }
        (g, us, is_)
    }

    #[test]
    fn uniform_walk_stays_on_edges() {
        let (g, us, _) = graph();
        let mut rng = SmallRng::seed_from_u64(1);
        let walk = uniform_walk(&g, us[0], 6, &mut rng);
        assert_eq!(walk.len(), 7);
        for w in walk.windows(2) {
            let a = NodeId(w[0] as u32);
            let b = NodeId(w[1] as u32);
            assert!(g.neighbors(a).iter().any(|n| n.node == b));
        }
    }

    #[test]
    fn uniform_walk_truncates_on_isolated_nodes() {
        let mut s = GraphSchema::new();
        let u = s.add_node_type("U");
        let mut g = Dmhg::new(s);
        let lonely = g.add_node(u);
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(uniform_walk(&g, lonely, 5, &mut rng), vec![0]);
    }

    #[test]
    fn samplers_cover_expected_universes() {
        let (g, us, is_) = graph();
        let gs = global_sampler(&g).unwrap();
        assert_eq!(gs.len(), 10);
        let ts = typed_sampler(&g, g.node_type(is_[0])).unwrap();
        assert_eq!(ts.len(), 6);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let id = ts.sample(&mut rng);
            assert!(id >= us.len() as u32);
        }
    }

    #[test]
    fn bpr_triples_type_consistent() {
        let (g, _, _) = graph();
        let edges: Vec<TemporalEdge> = (0..g.num_nodes())
            .flat_map(|i| {
                g.neighbors(NodeId(i as u32))
                    .iter()
                    .filter(move |n| n.node.index() > i)
                    .map(move |n| TemporalEdge::new(NodeId(i as u32), n.node, n.relation, n.time))
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut rng = SmallRng::seed_from_u64(4);
        let triples = bpr_triples(&g, &edges, 50, &mut rng);
        assert_eq!(triples.len(), 50);
        for (_, pos, neg) in triples {
            assert_eq!(
                g.node_type(NodeId(pos)),
                g.node_type(NodeId(neg)),
                "negative must share the positive's type"
            );
        }
        let _ = RelationId(0);
    }

    #[test]
    fn snapshots_partition() {
        let (_, _, _) = graph();
        let edges: Vec<TemporalEdge> = (0..10)
            .map(|i| TemporalEdge::new(NodeId(0), NodeId(5), RelationId(0), i as f64))
            .collect();
        let snaps = snapshots(&edges, 3);
        assert_eq!(snaps.len(), 3);
        assert_eq!(snaps.iter().map(|s| s.len()).sum::<usize>(), 10);
    }
}
