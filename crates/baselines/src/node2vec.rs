//! node2vec (Grover & Leskovec, KDD 2016) — exact algorithm.
//!
//! DeepWalk with second-order biased walks: the unnormalised probability of
//! stepping from `cur` to candidate `x` given the previous node `prev` is
//! `1/p` if `x = prev`, `1` if `x` neighbours `prev`, and `1/q` otherwise.

use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};
use supa_embed::sgns::train_walk_window;
use supa_embed::EmbeddingTable;
use supa_eval::{Recommender, Scorer};
use supa_graph::{Dmhg, NodeId, RelationId, TemporalEdge};

use crate::common::global_sampler;

/// node2vec configuration.
#[derive(Debug, Clone)]
pub struct Node2VecConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Return parameter `p` (paper's notation).
    pub p: f64,
    /// In-out parameter `q`.
    pub q: f64,
    /// Walks per node per epoch.
    pub walks_per_node: usize,
    /// Walk length.
    pub walk_length: usize,
    /// Skip-gram window.
    pub window: usize,
    /// Epochs.
    pub epochs: usize,
    /// Negatives per pair.
    pub n_neg: usize,
    /// Learning rate.
    pub lr: f32,
}

impl Default for Node2VecConfig {
    fn default() -> Self {
        Node2VecConfig {
            dim: 32,
            p: 0.5,
            q: 2.0,
            walks_per_node: 4,
            walk_length: 10,
            window: 2,
            epochs: 2,
            n_neg: 3,
            lr: 0.025,
        }
    }
}

/// The node2vec recommender.
pub struct Node2Vec {
    cfg: Node2VecConfig,
    seed: u64,
    centers: Option<EmbeddingTable>,
    contexts: Option<EmbeddingTable>,
}

impl Node2Vec {
    /// Creates an untrained node2vec model.
    pub fn new(cfg: Node2VecConfig, seed: u64) -> Self {
        Node2Vec {
            cfg,
            seed,
            centers: None,
            contexts: None,
        }
    }

    /// One p/q-biased walk (indices, including the start node).
    fn biased_walk<R: Rng + ?Sized>(&self, g: &Dmhg, start: NodeId, rng: &mut R) -> Vec<usize> {
        let mut walk = Vec::with_capacity(self.cfg.walk_length + 1);
        walk.push(start.index());
        let mut prev: Option<NodeId> = None;
        let mut cur = start;
        for _ in 0..self.cfg.walk_length {
            let nbrs = g.neighbors(cur);
            if nbrs.is_empty() {
                break;
            }
            let next = match prev {
                None => nbrs[rng.random_range(0..nbrs.len())].node,
                Some(p) => {
                    // Weighted choice over candidates by the p/q scheme.
                    let prev_nbrs = g.neighbors(p);
                    let weight = |x: NodeId| -> f64 {
                        if x == p {
                            1.0 / self.cfg.p
                        } else if prev_nbrs.iter().any(|n| n.node == x) {
                            1.0
                        } else {
                            1.0 / self.cfg.q
                        }
                    };
                    let total: f64 = nbrs.iter().map(|n| weight(n.node)).sum();
                    let mut x = rng.random::<f64>() * total;
                    let mut chosen = nbrs[nbrs.len() - 1].node;
                    for n in nbrs {
                        x -= weight(n.node);
                        if x <= 0.0 {
                            chosen = n.node;
                            break;
                        }
                    }
                    chosen
                }
            };
            prev = Some(cur);
            cur = next;
            walk.push(cur.index());
        }
        walk
    }
}

impl Scorer for Node2Vec {
    fn score(&self, u: NodeId, v: NodeId, _r: RelationId) -> f32 {
        match &self.centers {
            Some(t) => supa_embed::vecmath::dot(t.row(u.index()), t.row(v.index())),
            None => 0.0,
        }
    }
}

impl Recommender for Node2Vec {
    fn name(&self) -> &str {
        "node2vec"
    }

    fn embedding(&self, v: NodeId, _r: RelationId) -> Option<Vec<f32>> {
        self.centers.as_ref().map(|t| t.row(v.index()).to_vec())
    }

    fn fit(&mut self, g: &Dmhg, _train: &[TemporalEdge]) {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n = g.num_nodes();
        let mut centers = EmbeddingTable::new(n, self.cfg.dim, 0.5 / self.cfg.dim as f32, &mut rng);
        let mut contexts = EmbeddingTable::new(n, self.cfg.dim, 0.0, &mut rng);
        let Some(sampler) = global_sampler(g) else {
            return;
        };
        let n_neg = self.cfg.n_neg;
        for _ in 0..self.cfg.epochs {
            for start in 0..n {
                if g.degree(NodeId(start as u32)) == 0 {
                    continue;
                }
                for _ in 0..self.cfg.walks_per_node {
                    let walk = self.biased_walk(g, NodeId(start as u32), &mut rng);
                    train_walk_window(
                        &mut centers,
                        &mut contexts,
                        &walk,
                        self.cfg.window,
                        self.cfg.lr,
                        |negs| {
                            negs.clear();
                            for _ in 0..n_neg {
                                negs.push(sampler.sample(&mut rng) as usize);
                            }
                        },
                    );
                }
            }
        }
        self.centers = Some(centers);
        self.contexts = Some(contexts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supa_graph::GraphSchema;

    fn path_graph(n: usize) -> (Dmhg, Vec<NodeId>, RelationId) {
        let mut s = GraphSchema::new();
        let u = s.add_node_type("U");
        let r = s.add_relation("R", u, u);
        let mut g = Dmhg::new(s);
        let nodes = g.add_nodes(u, n);
        for i in 0..n - 1 {
            g.add_edge(nodes[i], nodes[i + 1], r, (i + 1) as f64)
                .unwrap();
        }
        (g, nodes, r)
    }

    #[test]
    fn low_p_makes_walks_backtrack() {
        let (g, nodes, _) = path_graph(20);
        // p → 0 means always return; on a path the walk ping-pongs.
        let m = Node2Vec::new(
            Node2VecConfig {
                p: 1e-6,
                q: 1.0,
                walk_length: 8,
                ..Default::default()
            },
            1,
        );
        let mut rng = SmallRng::seed_from_u64(2);
        let walk = m.biased_walk(&g, nodes[10], &mut rng);
        // From position i, step to i±1, then bounce back to i, etc.
        for (k, w) in walk.windows(3).enumerate() {
            assert_eq!(w[0], w[2], "no backtrack at step {k}: {walk:?}");
        }
    }

    #[test]
    fn high_p_low_q_explores_outward() {
        let (g, nodes, _) = path_graph(30);
        // Never return, prefer distance-2: walk marches along the path.
        let m = Node2Vec::new(
            Node2VecConfig {
                p: 1e6,
                q: 1e-6,
                walk_length: 10,
                ..Default::default()
            },
            3,
        );
        let mut rng = SmallRng::seed_from_u64(5);
        // Start mid-path so the walk cannot hit an endpoint (where
        // backtracking is forced regardless of p).
        let walk = m.biased_walk(&g, nodes[15], &mut rng);
        // All nodes distinct → strictly exploring.
        let mut sorted = walk.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), walk.len(), "walk revisited nodes: {walk:?}");
    }

    #[test]
    fn fit_and_score() {
        let (g, nodes, r) = path_graph(12);
        let mut m = Node2Vec::new(
            Node2VecConfig {
                epochs: 4,
                ..Default::default()
            },
            7,
        );
        m.fit(&g, &[]);
        // Adjacent nodes score above far-apart nodes.
        let near = m.score(nodes[4], nodes[5], r);
        let far = m.score(nodes[0], nodes[11], r);
        assert!(near > far, "near {near} !> far {far}");
        assert_eq!(m.name(), "node2vec");
    }
}
