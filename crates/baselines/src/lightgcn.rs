//! LightGCN (He et al., SIGIR 2020) — exact algorithm.
//!
//! Embedding-only graph convolution: `E^{(l+1)} = Â E^{(l)}` with the
//! symmetrically normalised adjacency, final representations are the mean
//! of all layers, trained with the BPR pairwise loss. No feature
//! transformations, no nonlinearities — exactly as published.

use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use supa_eval::{Recommender, Scorer};
use supa_graph::{Dmhg, NodeId, RelationId, TemporalEdge};
use supa_tensor::{CsrMatrix, Matrix, ParamStore, Tape};

use crate::common::{bpr_triples, index_pairs};

/// LightGCN configuration.
#[derive(Debug, Clone)]
pub struct LightGcnConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Propagation layers.
    pub layers: usize,
    /// Training steps (mini-batches).
    pub steps: usize,
    /// BPR triples per step.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
}

impl Default for LightGcnConfig {
    fn default() -> Self {
        LightGcnConfig {
            dim: 32,
            layers: 2,
            steps: 120,
            batch: 256,
            lr: 0.01,
        }
    }
}

/// The LightGCN recommender.
pub struct LightGcn {
    cfg: LightGcnConfig,
    seed: u64,
    final_emb: Option<Matrix>,
}

impl LightGcn {
    /// Creates an untrained LightGCN model.
    pub fn new(cfg: LightGcnConfig, seed: u64) -> Self {
        LightGcn {
            cfg,
            seed,
            final_emb: None,
        }
    }

    /// Layer-combined forward pass.
    fn forward(
        tape: &mut Tape,
        e0: supa_tensor::Var,
        adj: &Rc<CsrMatrix>,
        layers: usize,
    ) -> supa_tensor::Var {
        let mut acc = e0;
        let mut cur = e0;
        for _ in 0..layers {
            cur = tape.spmm(Rc::clone(adj), cur);
            acc = tape.add(acc, cur);
        }
        tape.scale(acc, 1.0 / (layers as f32 + 1.0))
    }
}

impl Scorer for LightGcn {
    fn score(&self, u: NodeId, v: NodeId, _r: RelationId) -> f32 {
        match &self.final_emb {
            Some(m) if u.index() < m.rows() && v.index() < m.rows() => m
                .row(u.index())
                .iter()
                .zip(m.row(v.index()))
                .map(|(&a, &b)| a * b)
                .sum(),
            _ => 0.0,
        }
    }
}

impl Recommender for LightGcn {
    fn name(&self) -> &str {
        "LightGCN"
    }

    fn embedding(&self, v: NodeId, _r: RelationId) -> Option<Vec<f32>> {
        self.final_emb
            .as_ref()
            .filter(|m| v.index() < m.rows())
            .map(|m| m.row(v.index()).to_vec())
    }

    fn fit(&mut self, g: &Dmhg, train: &[TemporalEdge]) {
        if train.is_empty() {
            self.final_emb = None;
            return;
        }
        let n = g.num_nodes();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let adj = Rc::new(CsrMatrix::sym_normalized_adjacency(n, &index_pairs(train)));
        let mut params = ParamStore::new();
        let e = params.add("E", Matrix::uniform(n, self.cfg.dim, 0.1, &mut rng));

        for _ in 0..self.cfg.steps {
            let triples = bpr_triples(g, train, self.cfg.batch, &mut rng);
            let (us, ps, ns): (Vec<u32>, Vec<u32>, Vec<u32>) =
                triples
                    .iter()
                    .fold((vec![], vec![], vec![]), |mut acc, &(u, p, nn)| {
                        acc.0.push(u);
                        acc.1.push(p);
                        acc.2.push(nn);
                        acc
                    });
            let mut tape = Tape::new(&params);
            let e0 = tape.param(e);
            let final_e = Self::forward(&mut tape, e0, &adj, self.cfg.layers);
            let ru = tape.gather(final_e, us);
            let rp = tape.gather(final_e, ps);
            let rn = tape.gather(final_e, ns);
            let pos = tape.rowwise_dot(ru, rp);
            let neg = tape.rowwise_dot(ru, rn);
            let loss = tape.bpr_loss_mean(pos, neg);
            let grads = tape.backward(loss);
            params.adam_step(&grads, self.cfg.lr);
        }

        // Cache the final representations for scoring.
        let mut tape = Tape::new(&params);
        let e0 = tape.param(e);
        let final_e = Self::forward(&mut tape, e0, &adj, self.cfg.layers);
        self.final_emb = Some(tape.value(final_e).clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supa_graph::GraphSchema;

    fn bipartite() -> (
        Dmhg,
        Vec<NodeId>,
        Vec<NodeId>,
        RelationId,
        Vec<TemporalEdge>,
    ) {
        let mut s = GraphSchema::new();
        let u = s.add_node_type("U");
        let i = s.add_node_type("I");
        let r = s.add_relation("R", u, i);
        let mut g = Dmhg::new(s);
        let us = g.add_nodes(u, 6);
        let is_ = g.add_nodes(i, 12);
        let mut edges = Vec::new();
        let mut t = 0.0;
        // Users 0–2 like items 0–5; users 3–5 like items 6–11.
        for round in 0..6 {
            #[allow(clippy::needless_range_loop)] // index selects both user and item
            for uu in 0..6usize {
                t += 1.0;
                let item = if uu < 3 { round } else { 6 + round };
                g.add_edge(us[uu], is_[item], r, t).unwrap();
                edges.push(TemporalEdge::new(us[uu], is_[item], r, t));
            }
        }
        (g, us, is_, r, edges)
    }

    #[test]
    fn learns_the_block_structure() {
        let (g, us, is_, r, edges) = bipartite();
        let mut m = LightGcn::new(LightGcnConfig::default(), 7);
        m.fit(&g, &edges);
        // User 0's group items outrank the other group's items on average.
        let own: f32 = (0..6).map(|k| m.score(us[0], is_[k], r)).sum();
        let other: f32 = (6..12).map(|k| m.score(us[0], is_[k], r)).sum();
        assert!(own > other, "own {own} !> other {other}");
    }

    #[test]
    fn untrained_and_empty_fit_score_zero() {
        let (g, us, is_, r, _) = bipartite();
        let mut m = LightGcn::new(LightGcnConfig::default(), 1);
        assert_eq!(m.score(us[0], is_[0], r), 0.0);
        m.fit(&g, &[]);
        assert_eq!(m.score(us[0], is_[0], r), 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let (g, us, is_, r, edges) = bipartite();
        let cfg = LightGcnConfig {
            steps: 20,
            ..Default::default()
        };
        let mut a = LightGcn::new(cfg.clone(), 9);
        a.fit(&g, &edges);
        let mut b = LightGcn::new(cfg, 9);
        b.fit(&g, &edges);
        assert_eq!(a.score(us[0], is_[0], r), b.score(us[0], is_[0], r));
    }
}
