//! MeLU (Lee et al., KDD 2019) — architecture-faithful reduction.
//!
//! MeLU meta-learns the initialisation of a user-preference estimator so a
//! few support interactions adapt it to a new user (MAML).
//!
//! **Kept**: the two-loop structure — per-user inner adaptation of the MLP
//! scorer on a *support* set, outer update from the *query* loss at the
//! adapted point (first-order MAML), and a user-adaptation API for
//! cold-start scoring. **Simplified**: no content features exist in the
//! synthetic datasets, so the input is learned id embeddings; the decision
//! module is one hidden layer.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use supa_eval::{Recommender, Scorer};
use supa_graph::{Dmhg, NodeId, RelationId, TemporalEdge};
use supa_tensor::{Matrix, ParamId, ParamStore, Tape};

/// MeLU configuration.
#[derive(Debug, Clone)]
pub struct MeLuConfig {
    /// Embedding dimension (per node).
    pub dim: usize,
    /// Hidden width of the decision MLP.
    pub hidden: usize,
    /// Inner-loop SGD steps.
    pub inner_steps: usize,
    /// Inner-loop learning rate.
    pub inner_lr: f32,
    /// Outer-loop Adam learning rate.
    pub outer_lr: f32,
    /// Meta-training epochs over the user population.
    pub epochs: usize,
    /// Negatives per positive.
    pub n_neg: usize,
}

impl Default for MeLuConfig {
    fn default() -> Self {
        MeLuConfig {
            dim: 16,
            hidden: 32,
            inner_steps: 2,
            inner_lr: 0.05,
            outer_lr: 0.01,
            epochs: 2,
            n_neg: 2,
        }
    }
}

struct Net {
    params: ParamStore,
    e: ParamId,
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
}

/// The MeLU recommender.
pub struct MeLu {
    cfg: MeLuConfig,
    seed: u64,
    net: Option<Net>,
}

impl MeLu {
    /// Creates an untrained MeLU model.
    pub fn new(cfg: MeLuConfig, seed: u64) -> Self {
        MeLu {
            cfg,
            seed,
            net: None,
        }
    }

    fn init_net(&self, n: usize, rng: &mut SmallRng) -> Net {
        let mut params = ParamStore::new();
        let d = self.cfg.dim;
        let h = self.cfg.hidden;
        let e = params.add("E", Matrix::uniform(n, d, 0.1, rng));
        let w1 = params.add("W1", Matrix::glorot(2 * d, h, rng));
        let b1 = params.add("b1", Matrix::zeros(1, h));
        let w2 = params.add("W2", Matrix::glorot(h, 1, rng));
        let b2 = params.add("b2", Matrix::zeros(1, 1));
        Net {
            params,
            e,
            w1,
            b1,
            w2,
            b2,
        }
    }

    /// Builds the BCE loss of `(user, item, label)` triples on a tape.
    fn loss_on(
        net: &Net,
        tape: &mut Tape,
        us: Vec<u32>,
        vs: Vec<u32>,
        labels: Vec<f32>,
    ) -> supa_tensor::Var {
        let n = labels.len();
        let e = tape.param(net.e);
        let w1 = tape.param(net.w1);
        let b1 = tape.param(net.b1);
        let w2 = tape.param(net.w2);
        let b2 = tape.param(net.b2);
        let eu = tape.gather(e, us);
        let ev = tape.gather(e, vs);
        let x = tape.concat_cols(eu, ev);
        let h = tape.matmul(x, w1);
        let h = tape.add_row_vec(h, b1);
        let h = tape.relu(h);
        let o = tape.matmul(h, w2);
        let o = tape.add_row_vec(o, b2);
        tape.bce_with_logits_mean(o, Matrix::from_vec(n, 1, labels))
    }

    /// Assembles `(us, vs, labels)` for a set of positive edges plus sampled
    /// negatives of the same destination type.
    fn triples(
        g: &Dmhg,
        edges: &[&TemporalEdge],
        n_neg: usize,
        rng: &mut SmallRng,
    ) -> (Vec<u32>, Vec<u32>, Vec<f32>) {
        let mut us = Vec::new();
        let mut vs = Vec::new();
        let mut labels = Vec::new();
        for e in edges {
            us.push(e.src.0);
            vs.push(e.dst.0);
            labels.push(1.0);
            let universe = g.nodes_of_type(g.node_type(e.dst));
            for _ in 0..n_neg {
                us.push(e.src.0);
                vs.push(universe[rng.random_range(0..universe.len())].0);
                labels.push(0.0);
            }
        }
        (us, vs, labels)
    }

    /// Raw MLP forward for scoring (uses the meta-learned global weights).
    fn forward_score(&self, u: NodeId, v: NodeId) -> f32 {
        let Some(net) = &self.net else { return 0.0 };
        let e = net.params.get(net.e);
        if u.index() >= e.rows() || v.index() >= e.rows() {
            return 0.0;
        }
        let w1 = net.params.get(net.w1);
        let b1 = net.params.get(net.b1);
        let w2 = net.params.get(net.w2);
        let b2 = net.params.get(net.b2);
        let d = self.cfg.dim;
        let mut logit = b2.at(0, 0);
        for j in 0..self.cfg.hidden {
            let mut pre = b1.at(0, j);
            for k in 0..d {
                pre += e.at(u.index(), k) * w1.at(k, j);
                pre += e.at(v.index(), k) * w1.at(d + k, j);
            }
            if pre > 0.0 {
                logit += pre * w2.at(j, 0);
            }
        }
        logit
    }
}

impl Scorer for MeLu {
    fn score(&self, u: NodeId, v: NodeId, _r: RelationId) -> f32 {
        self.forward_score(u, v)
    }
}

impl Recommender for MeLu {
    fn name(&self) -> &str {
        "MeLU"
    }

    fn fit(&mut self, g: &Dmhg, train: &[TemporalEdge]) {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut net = self.init_net(g.num_nodes(), &mut rng);

        // Group training edges per user (source node).
        let mut per_user: std::collections::HashMap<u32, Vec<&TemporalEdge>> = Default::default();
        for e in train {
            per_user.entry(e.src.0).or_default().push(e);
        }
        let mut users: Vec<u32> = per_user.keys().copied().collect();
        users.sort_unstable();

        for _ in 0..self.cfg.epochs {
            for &uid in &users {
                let edges = &per_user[&uid];
                if edges.len() < 2 {
                    continue;
                }
                let mid = edges.len() / 2;
                let support = &edges[..mid];
                let query = &edges[mid..];

                // Inner loop: adapt a local copy on the support set.
                let snapshot = net.params.snapshot();
                for _ in 0..self.cfg.inner_steps {
                    let (us, vs, labels) = Self::triples(g, support, self.cfg.n_neg, &mut rng);
                    let mut tape = Tape::new(&net.params);
                    let loss = Self::loss_on(&net, &mut tape, us, vs, labels);
                    let grads = tape.backward(loss);
                    net.params.sgd_step(&grads, self.cfg.inner_lr);
                }
                // Outer loop (FOMAML): query gradient at the adapted point,
                // applied to the *initialisation*.
                let (us, vs, labels) = Self::triples(g, query, self.cfg.n_neg, &mut rng);
                let mut tape = Tape::new(&net.params);
                let loss = Self::loss_on(&net, &mut tape, us, vs, labels);
                let grads = tape.backward(loss);
                net.params.restore(&snapshot);
                net.params.adam_step(&grads, self.cfg.outer_lr);
            }
        }
        self.net = Some(net);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supa_datasets::taobao;
    use supa_graph::GraphSchema;

    #[test]
    fn meta_training_learns_preferences() {
        // Two user groups with disjoint item tastes.
        let mut s = GraphSchema::new();
        let uty = s.add_node_type("U");
        let ity = s.add_node_type("I");
        let r = s.add_relation("R", uty, ity);
        let mut g = Dmhg::new(s);
        let us = g.add_nodes(uty, 6);
        let is_ = g.add_nodes(ity, 10);
        let mut edges = Vec::new();
        let mut t = 0.0;
        for round in 0..8 {
            for (k, &uu) in us.iter().enumerate() {
                t += 1.0;
                let item = if k < 3 { round % 5 } else { 5 + round % 5 };
                g.add_edge(uu, is_[item], r, t).unwrap();
                edges.push(TemporalEdge::new(uu, is_[item], r, t));
            }
        }
        let mut m = MeLu::new(
            MeLuConfig {
                epochs: 6,
                ..Default::default()
            },
            23,
        );
        m.fit(&g, &edges);
        let own: f32 = (0..5).map(|k| m.score(us[0], is_[k], r)).sum();
        let other: f32 = (5..10).map(|k| m.score(us[0], is_[k], r)).sum();
        assert!(own > other, "own {own} !> other {other}");
    }

    #[test]
    fn runs_on_taobao() {
        let d = taobao(0.02, 29);
        let g = d.full_graph();
        let mut m = MeLu::new(
            MeLuConfig {
                epochs: 1,
                ..Default::default()
            },
            29,
        );
        m.fit(&g, &d.edges[..1500.min(d.edges.len())]);
        assert!(m.net.is_some());
        assert!(!m.is_dynamic());
    }

    #[test]
    fn untrained_scores_zero() {
        let m = MeLu::new(MeLuConfig::default(), 1);
        assert_eq!(m.score(NodeId(0), NodeId(1), RelationId(0)), 0.0);
    }
}
