//! GATNE-T (Cen et al., KDD 2019) — architecture-faithful reduction.
//!
//! GATNE gives every node a shared *base* embedding plus an *edge-type
//! specific* embedding per relation, combined per view; training is
//! skip-gram over metapath-free walks restricted to each edge type's
//! subgraph.
//!
//! **Kept**: base + per-edge-type embeddings, per-relation walk training,
//! relation-specific scoring. **Simplified**: the self-attention that mixes
//! edge-type embeddings across views is replaced by a learnable per-relation
//! scalar gate (the attention's role — weighting how much each view departs
//! from the base — survives; its pairwise mixing does not).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use supa_embed::sgns::train_pair_dual;
use supa_embed::EmbeddingTable;
use supa_eval::{Recommender, Scorer};
use supa_graph::{Dmhg, NodeId, RelationId, RelationSet, TemporalEdge};

use crate::common::global_sampler;

/// GATNE configuration.
#[derive(Debug, Clone)]
pub struct GatneConfig {
    /// Base embedding dimension.
    pub dim: usize,
    /// Walks per node per relation per epoch.
    pub walks_per_node: usize,
    /// Walk length.
    pub walk_length: usize,
    /// Skip-gram window.
    pub window: usize,
    /// Epochs.
    pub epochs: usize,
    /// Negatives per pair.
    pub n_neg: usize,
    /// Learning rate.
    pub lr: f32,
}

impl Default for GatneConfig {
    fn default() -> Self {
        GatneConfig {
            dim: 32,
            walks_per_node: 2,
            walk_length: 8,
            window: 2,
            epochs: 2,
            n_neg: 3,
            lr: 0.025,
        }
    }
}

/// The GATNE-T recommender.
pub struct Gatne {
    cfg: GatneConfig,
    seed: u64,
    base: Option<EmbeddingTable>,
    /// One edge-type specific table per relation.
    typed: Vec<EmbeddingTable>,
    contexts: Option<EmbeddingTable>,
    /// Per-relation gate on the typed component.
    gates: Vec<f32>,
}

impl Gatne {
    /// Creates an untrained GATNE model.
    pub fn new(cfg: GatneConfig, seed: u64) -> Self {
        Gatne {
            cfg,
            seed,
            base: None,
            typed: Vec::new(),
            contexts: None,
            gates: Vec::new(),
        }
    }

    /// Relation-specific embedding `v_{u,r} = b_u + gate_r · e_{u,r}`.
    fn view(&self, u: NodeId, r: usize, out: &mut Vec<f32>) -> bool {
        let Some(base) = &self.base else {
            return false;
        };
        out.clear();
        out.extend_from_slice(base.row(u.index()));
        if let Some(t) = self.typed.get(r) {
            let gate = self.gates.get(r).copied().unwrap_or(1.0);
            for (o, &x) in out.iter_mut().zip(t.row(u.index())) {
                *o += gate * x;
            }
        }
        true
    }

    /// A walk restricted to edges of one relation.
    fn relation_walk<R: Rng + ?Sized>(
        &self,
        g: &Dmhg,
        start: NodeId,
        rel: RelationId,
        rng: &mut R,
    ) -> Vec<usize> {
        let mut walk = vec![start.index()];
        let mut cur = start;
        let rels = RelationSet::single(rel);
        for _ in 0..self.cfg.walk_length {
            match g.sample_neighbor(cur, rels, None, None, None, rng) {
                Some(n) => {
                    cur = n.node;
                    walk.push(cur.index());
                }
                None => break,
            }
        }
        walk
    }
}

impl Scorer for Gatne {
    fn score(&self, u: NodeId, v: NodeId, r: RelationId) -> f32 {
        let mut a = Vec::new();
        let mut b = Vec::new();
        if !self.view(u, r.index(), &mut a) || !self.view(v, r.index(), &mut b) {
            return 0.0;
        }
        supa_embed::vecmath::dot(&a, &b)
    }
}

impl Recommender for Gatne {
    fn name(&self) -> &str {
        "GATNE"
    }

    fn embedding(&self, v: NodeId, r: RelationId) -> Option<Vec<f32>> {
        let mut out = Vec::new();
        if self.view(v, r.index(), &mut out) {
            Some(out)
        } else {
            None
        }
    }

    fn fit(&mut self, g: &Dmhg, _train: &[TemporalEdge]) {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n = g.num_nodes();
        let n_rel = g.schema().num_relations();
        let scale = 0.5 / self.cfg.dim as f32;
        let mut base = EmbeddingTable::new(n, self.cfg.dim, scale, &mut rng);
        let mut typed: Vec<EmbeddingTable> = (0..n_rel)
            .map(|_| EmbeddingTable::new(n, self.cfg.dim, scale * 0.5, &mut rng))
            .collect();
        let mut contexts = EmbeddingTable::new(n, self.cfg.dim, 0.0, &mut rng);
        self.gates = vec![0.5; n_rel];
        let Some(sampler) = global_sampler(g) else {
            return;
        };

        let mut negs: Vec<usize> = Vec::new();
        let mut scratch = EmbeddingTable::new(1, self.cfg.dim, 0.0, &mut rng);
        for _ in 0..self.cfg.epochs {
            #[allow(clippy::needless_range_loop)] // `rel` indexes gates and typed tables together
            for rel in 0..n_rel {
                for start in 0..n {
                    if g.degree(NodeId(start as u32)) == 0 {
                        continue;
                    }
                    for _ in 0..self.cfg.walks_per_node {
                        let walk = self.relation_walk(
                            g,
                            NodeId(start as u32),
                            RelationId(rel as u16),
                            &mut rng,
                        );
                        if walk.len() < 2 {
                            continue;
                        }
                        for i in 0..walk.len() {
                            let lo = i.saturating_sub(self.cfg.window);
                            let hi = (i + self.cfg.window + 1).min(walk.len());
                            for j in lo..hi {
                                if i == j || walk[i] == walk[j] {
                                    continue;
                                }
                                // Composite center = base + gate·typed, held in a
                                // scratch row; gradients are split back by hand.
                                let center = walk[i];
                                {
                                    let row = scratch.row_mut(0);
                                    row.copy_from_slice(base.row(center));
                                    let gate = self.gates[rel];
                                    for (o, &x) in row.iter_mut().zip(typed[rel].row(center)) {
                                        *o += gate * x;
                                    }
                                }
                                negs.clear();
                                for _ in 0..self.cfg.n_neg {
                                    negs.push(sampler.sample(&mut rng) as usize);
                                }
                                let before = scratch.row(0).to_vec();
                                train_pair_dual(
                                    &mut scratch,
                                    &mut contexts,
                                    0,
                                    walk[j],
                                    &negs,
                                    self.cfg.lr,
                                );
                                // Δ = −lr·∂L/∂center: apply to base fully and to
                                // the typed view through the gate; nudge the gate
                                // along its own gradient.
                                let gate = self.gates[rel];
                                let typed_row = typed[rel].row_mut(center);
                                let base_row = base.row_mut(center);
                                let mut gate_grad = 0.0f32;
                                for k in 0..self.cfg.dim {
                                    let delta = scratch.row(0)[k] - before[k];
                                    base_row[k] += delta;
                                    gate_grad += delta * typed_row[k];
                                    typed_row[k] += gate * delta;
                                }
                                self.gates[rel] = (gate + 0.1 * gate_grad).clamp(0.0, 2.0);
                            }
                        }
                    }
                }
            }
        }
        self.base = Some(base);
        self.typed = typed;
        self.contexts = Some(contexts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supa_graph::GraphSchema;

    /// Users interact with disjoint item sets under two relations.
    fn multiplex_graph() -> (Dmhg, Vec<NodeId>, Vec<NodeId>, RelationId, RelationId) {
        let mut s = GraphSchema::new();
        let u = s.add_node_type("U");
        let i = s.add_node_type("I");
        let click = s.add_relation("Click", u, i);
        let buy = s.add_relation("Buy", u, i);
        let mut g = Dmhg::new(s);
        let us = g.add_nodes(u, 4);
        let is_ = g.add_nodes(i, 8);
        let mut t = 0.0;
        for (k, &uu) in us.iter().enumerate() {
            // Clicks go to items 0–3, buys to items 4–7.
            t += 1.0;
            g.add_edge(uu, is_[k % 4], click, t).unwrap();
            t += 1.0;
            g.add_edge(uu, is_[4 + k % 4], buy, t).unwrap();
        }
        (g, us, is_, click, buy)
    }

    #[test]
    fn relation_walks_stay_in_one_relation() {
        let (g, us, _, click, _) = multiplex_graph();
        let m = Gatne::new(GatneConfig::default(), 1);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..20 {
            let walk = m.relation_walk(&g, us[0], click, &mut rng);
            for w in walk.windows(2) {
                let a = NodeId(w[0] as u32);
                let b = NodeId(w[1] as u32);
                assert!(g
                    .neighbors(a)
                    .iter()
                    .any(|n| n.node == b && n.relation == click));
            }
        }
    }

    #[test]
    fn scores_are_relation_specific() {
        let (g, us, is_, click, buy) = multiplex_graph();
        let mut m = Gatne::new(
            GatneConfig {
                epochs: 8,
                ..Default::default()
            },
            3,
        );
        m.fit(&g, &[]);
        // The clicked item should outrank the bought item under `click`.
        let s_click = m.score(us[0], is_[0], click);
        let s_click_other = m.score(us[0], is_[4], click);
        assert!(
            s_click > s_click_other,
            "click view: {s_click} !> {s_click_other}"
        );
        // And scores differ across relation views.
        assert_ne!(m.score(us[0], is_[0], click), m.score(us[0], is_[0], buy));
    }

    #[test]
    fn untrained_scores_zero() {
        let m = Gatne::new(GatneConfig::default(), 1);
        assert_eq!(m.score(NodeId(0), NodeId(1), RelationId(0)), 0.0);
    }
}
