//! NetWalk (Yu et al., KDD 2018) — architecture-faithful reduction.
//!
//! NetWalk maintains a *reservoir of walks* that is incrementally patched as
//! edges arrive, and re-encodes nodes from the updated reservoir.
//!
//! **Kept**: the walk reservoir, incremental reservoir maintenance on new
//! edges, and retraining from the reservoir (the mechanism that makes
//! NetWalk "dynamic"). **Simplified**: the deep autoencoder "clique
//! embedding" objective is replaced by skip-gram with negative sampling over
//! the reservoir walks (the autoencoder's role of embedding co-walking nodes
//! near each other is preserved).

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use supa_embed::sgns::train_walk_window;
use supa_embed::EmbeddingTable;
use supa_eval::{Recommender, Scorer};
use supa_graph::{Dmhg, NodeId, RelationId, TemporalEdge};

use crate::common::{global_sampler, uniform_walk};

/// NetWalk configuration.
#[derive(Debug, Clone)]
pub struct NetWalkConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Reservoir capacity (walks).
    pub reservoir: usize,
    /// Walk length.
    pub walk_length: usize,
    /// Skip-gram window.
    pub window: usize,
    /// Negatives per pair.
    pub n_neg: usize,
    /// Learning rate.
    pub lr: f32,
    /// SGNS passes over the reservoir at (re)fit.
    pub passes: usize,
    /// Walks regenerated per incoming edge endpoint.
    pub walks_per_update: usize,
}

impl Default for NetWalkConfig {
    fn default() -> Self {
        NetWalkConfig {
            dim: 32,
            reservoir: 2000,
            walk_length: 8,
            window: 2,
            n_neg: 3,
            lr: 0.025,
            passes: 2,
            walks_per_update: 2,
        }
    }
}

/// The NetWalk recommender.
pub struct NetWalk {
    cfg: NetWalkConfig,
    seed: u64,
    rng: SmallRng,
    walks: Vec<Vec<usize>>,
    centers: Option<EmbeddingTable>,
    contexts: Option<EmbeddingTable>,
}

impl NetWalk {
    /// Creates an untrained NetWalk model.
    pub fn new(cfg: NetWalkConfig, seed: u64) -> Self {
        NetWalk {
            cfg,
            seed,
            rng: SmallRng::seed_from_u64(seed),
            walks: Vec::new(),
            centers: None,
            contexts: None,
        }
    }

    /// Number of walks currently in the reservoir.
    pub fn reservoir_len(&self) -> usize {
        self.walks.len()
    }

    fn push_walk(&mut self, walk: Vec<usize>) {
        if walk.len() < 2 {
            return;
        }
        if self.walks.len() < self.cfg.reservoir {
            self.walks.push(walk);
        } else {
            // Replace a random incumbent: old structure gradually leaves.
            let i = self.rng.random_range(0..self.walks.len());
            self.walks[i] = walk;
        }
    }

    fn train_from_reservoir(&mut self, g: &Dmhg, walk_indices: &[usize]) {
        let Some(sampler) = global_sampler(g) else {
            return;
        };
        let (Some(centers), Some(contexts)) = (self.centers.as_mut(), self.contexts.as_mut())
        else {
            return;
        };
        let n_neg = self.cfg.n_neg;
        for &wi in walk_indices {
            let walk = &self.walks[wi];
            train_walk_window(
                centers,
                contexts,
                walk,
                self.cfg.window,
                self.cfg.lr,
                |negs| {
                    negs.clear();
                    for _ in 0..n_neg {
                        negs.push(sampler.sample(&mut self.rng) as usize);
                    }
                },
            );
        }
    }
}

impl Scorer for NetWalk {
    fn score(&self, u: NodeId, v: NodeId, _r: RelationId) -> f32 {
        match &self.centers {
            Some(t) => supa_embed::vecmath::dot(t.row(u.index()), t.row(v.index())),
            None => 0.0,
        }
    }
}

impl Recommender for NetWalk {
    fn name(&self) -> &str {
        "NetWalk"
    }

    fn is_dynamic(&self) -> bool {
        true
    }

    fn fit(&mut self, g: &Dmhg, _train: &[TemporalEdge]) {
        self.rng = SmallRng::seed_from_u64(self.seed);
        self.walks.clear();
        let n = g.num_nodes();
        self.centers = Some(EmbeddingTable::new(
            n,
            self.cfg.dim,
            0.5 / self.cfg.dim as f32,
            &mut self.rng,
        ));
        self.contexts = Some(EmbeddingTable::new(n, self.cfg.dim, 0.0, &mut self.rng));
        // Seed the reservoir with walks from every connected node.
        for start in 0..n {
            if g.degree(NodeId(start as u32)) == 0 {
                continue;
            }
            let w = uniform_walk(g, NodeId(start as u32), self.cfg.walk_length, &mut self.rng);
            self.push_walk(w);
        }
        let all: Vec<usize> = (0..self.walks.len()).collect();
        for _ in 0..self.cfg.passes {
            self.train_from_reservoir(g, &all);
        }
    }

    fn fit_incremental(&mut self, g: &Dmhg, new_edges: &[TemporalEdge]) {
        if self.centers.is_none() {
            self.fit(g, new_edges);
            return;
        }
        // Grow tables if the universe grew.
        if let (Some(c), Some(x)) = (self.centers.as_mut(), self.contexts.as_mut()) {
            c.ensure_len(g.num_nodes(), &mut self.rng);
            x.ensure_len(g.num_nodes(), &mut self.rng);
        }
        let mut fresh: Vec<usize> = Vec::new();
        for e in new_edges {
            for &endpoint in &[e.src, e.dst] {
                for _ in 0..self.cfg.walks_per_update {
                    let w = uniform_walk(g, endpoint, self.cfg.walk_length, &mut self.rng);
                    if w.len() >= 2 {
                        // Remember where it landed for immediate training.
                        self.push_walk(w);
                        fresh.push(
                            self.walks
                                .len()
                                .saturating_sub(1)
                                .min(self.cfg.reservoir - 1),
                        );
                    }
                }
            }
        }
        self.train_from_reservoir(g, &fresh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supa_graph::GraphSchema;

    fn graph() -> (Dmhg, Vec<NodeId>, RelationId) {
        let mut s = GraphSchema::new();
        let u = s.add_node_type("U");
        let r = s.add_relation("R", u, u);
        let mut g = Dmhg::new(s);
        let nodes = g.add_nodes(u, 12);
        let mut t = 0.0;
        for a in 0..6 {
            for b in (a + 1)..6 {
                t += 1.0;
                g.add_edge(nodes[a], nodes[b], r, t).unwrap();
            }
        }
        (g, nodes, r)
    }

    #[test]
    fn fit_populates_reservoir() {
        let (g, _, _) = graph();
        let mut m = NetWalk::new(NetWalkConfig::default(), 1);
        assert_eq!(m.reservoir_len(), 0);
        m.fit(&g, &[]);
        assert_eq!(m.reservoir_len(), 6, "one walk per connected node");
        assert!(m.is_dynamic());
    }

    #[test]
    fn incremental_updates_learn_new_edges() {
        let (mut g, nodes, r) = graph();
        let mut m = NetWalk::new(NetWalkConfig::default(), 2);
        m.fit(&g, &[]);
        let before = m.score(nodes[6], nodes[7], r);
        // New clique appears among nodes 6..12.
        let mut new_edges = Vec::new();
        let mut t = 100.0;
        for a in 6..12 {
            for b in (a + 1)..12 {
                t += 1.0;
                g.add_edge(nodes[a], nodes[b], r, t).unwrap();
                new_edges.push(TemporalEdge::new(nodes[a], nodes[b], r, t));
            }
        }
        for _ in 0..10 {
            m.fit_incremental(&g, &new_edges);
        }
        let after = m.score(nodes[6], nodes[7], r);
        assert!(after > before, "{after} !> {before}");
    }

    #[test]
    fn reservoir_is_bounded() {
        let (g, _, _) = graph();
        let mut m = NetWalk::new(
            NetWalkConfig {
                reservoir: 4,
                ..Default::default()
            },
            3,
        );
        m.fit(&g, &[]);
        assert!(m.reservoir_len() <= 4);
    }
}
