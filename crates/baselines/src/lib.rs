//! # supa-baselines — the sixteen baselines of the SUPA paper
//!
//! Re-implementations of every method compared against in Tables V/VI,
//! grouped as in the paper (§IV-B):
//!
//! **Static network embedding** — [`DeepWalk`], [`Line`], [`Node2Vec`],
//! [`Gatne`].
//!
//! **Recommendation** — [`Ngcf`], [`LightGcn`], [`Matn`], [`MbGmn`],
//! [`HybridGnn`], [`MeLu`].
//!
//! **Dynamic network embedding** — [`NetWalk`], [`DyGnn`], [`EvolveGcn`],
//! [`Tgat`], [`DyHne`], [`DyHatr`].
//!
//! Every method implements [`supa_eval::Recommender`], so the experiment
//! protocols drive them identically to SUPA. The walk/skip-gram family is
//! algorithmically exact; the deep attention/meta models are
//! *architecture-faithful but width-reduced* — each file's module docs state
//! precisely what was kept and what was simplified (the simplifications are
//! also inventoried in the repository's `DESIGN.md`).

pub mod common;
pub mod deepwalk;
pub mod dygnn;
pub mod dyhatr;
pub mod dyhne;
pub mod evolvegcn;
pub mod gatne;
pub mod hybridgnn;
pub mod lightgcn;
pub mod line;
pub mod matn;
pub mod mbgmn;
pub mod melu;
pub mod netwalk;
pub mod ngcf;
pub mod node2vec;
pub mod registry;
pub mod tgat;

pub use deepwalk::DeepWalk;
pub use dygnn::DyGnn;
pub use dyhatr::DyHatr;
pub use dyhne::DyHne;
pub use evolvegcn::EvolveGcn;
pub use gatne::Gatne;
pub use hybridgnn::HybridGnn;
pub use lightgcn::LightGcn;
pub use line::Line;
pub use matn::Matn;
pub use mbgmn::MbGmn;
pub use melu::MeLu;
pub use netwalk::NetWalk;
pub use ngcf::Ngcf;
pub use node2vec::Node2Vec;
pub use registry::{all_baselines, baseline_by_name, fig4_baselines};
pub use tgat::Tgat;
