//! DyGNN (Ma et al., SIGIR 2020) — architecture-faithful reduction.
//!
//! DyGNN processes a *stream* of edges; each edge fires an **interact unit**
//! that updates the two endpoints and a **propagate unit** that pushes the
//! interaction information to their neighbours, attenuated by how long ago
//! each neighbour edge formed.
//!
//! **Kept**: per-edge streaming updates, the interact/propagate split, and
//! time-interval attenuation of propagation. **Simplified**: the LSTM-style
//! gated cells are replaced by (a) an SGNS-style contrastive update for the
//! interact unit and (b) a fixed-rate decayed additive merge for the
//! propagate unit — the "who gets updated, scaled by how recent" structure
//! is what the neighbourhood-disturbance experiments exercise.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use supa_embed::sgns::train_pair_single;
use supa_embed::{EmbeddingTable, NegativeSampler};
use supa_eval::{Recommender, Scorer};
use supa_graph::{Dmhg, NodeId, RelationId, TemporalEdge};

use crate::common::global_sampler;

/// DyGNN configuration.
#[derive(Debug, Clone)]
pub struct DyGnnConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Negatives per interact update.
    pub n_neg: usize,
    /// Learning rate of the interact unit.
    pub lr: f32,
    /// Propagation strength λ.
    pub lambda: f32,
    /// Only the most recent `fanout` neighbours receive propagation.
    pub fanout: usize,
    /// Time-decay horizon: propagation weight is `exp(−Δt / horizon)`.
    pub horizon: f64,
}

impl Default for DyGnnConfig {
    fn default() -> Self {
        DyGnnConfig {
            dim: 32,
            n_neg: 3,
            lr: 0.05,
            lambda: 0.2,
            fanout: 10,
            horizon: 0.0, // 0 = auto: max_time / 10
        }
    }
}

/// The DyGNN recommender.
pub struct DyGnn {
    cfg: DyGnnConfig,
    seed: u64,
    rng: SmallRng,
    emb: Option<EmbeddingTable>,
    sampler: Option<NegativeSampler>,
    horizon: f64,
}

impl DyGnn {
    /// Creates an untrained DyGNN model.
    pub fn new(cfg: DyGnnConfig, seed: u64) -> Self {
        DyGnn {
            cfg,
            seed,
            rng: SmallRng::seed_from_u64(seed),
            emb: None,
            sampler: None,
            horizon: 1.0,
        }
    }

    /// One streaming edge event.
    fn process_edge(&mut self, g: &Dmhg, e: &TemporalEdge) {
        let Some(emb) = self.emb.as_mut() else {
            return;
        };
        let (u, v) = (e.src.index(), e.dst.index());
        if u == v {
            return;
        }
        // Interact unit: contrastive update of the two endpoints.
        let mut negs: Vec<usize> = Vec::with_capacity(self.cfg.n_neg);
        if let Some(s) = &self.sampler {
            for _ in 0..self.cfg.n_neg {
                negs.push(s.sample(&mut self.rng) as usize);
            }
        }
        train_pair_single(emb, u, v, &negs, self.cfg.lr);

        // Propagate unit: neighbours of u learn about v (and vice versa),
        // attenuated by the age of the connecting edge.
        for (center, other) in [(e.src, e.dst), (e.dst, e.src)] {
            let other_row: Vec<f32> = emb.row(other.index()).to_vec();
            let nbrs: Vec<(usize, f64)> = g
                .latest_neighbors(center, self.cfg.fanout)
                .iter()
                .filter(|n| n.node != other && n.time <= e.time)
                .map(|n| (n.node.index(), e.time - n.time))
                .collect();
            for (nbr, age) in nbrs {
                let w = self.cfg.lambda * (-age / self.horizon).exp() as f32;
                if w <= 1e-6 {
                    continue;
                }
                let row = emb.row_mut(nbr);
                for (x, &o) in row.iter_mut().zip(&other_row) {
                    *x = (1.0 - 0.5 * w) * *x + 0.5 * w * o;
                }
            }
        }
    }
}

impl Scorer for DyGnn {
    fn score(&self, u: NodeId, v: NodeId, _r: RelationId) -> f32 {
        match &self.emb {
            Some(t) => supa_embed::vecmath::dot(t.row(u.index()), t.row(v.index())),
            None => 0.0,
        }
    }
}

impl Recommender for DyGnn {
    fn name(&self) -> &str {
        "DyGNN"
    }

    fn is_dynamic(&self) -> bool {
        true
    }

    fn fit(&mut self, g: &Dmhg, train: &[TemporalEdge]) {
        self.rng = SmallRng::seed_from_u64(self.seed);
        self.emb = Some(EmbeddingTable::new(
            g.num_nodes(),
            self.cfg.dim,
            0.5 / self.cfg.dim as f32,
            &mut self.rng,
        ));
        self.sampler = global_sampler(g);
        self.horizon = if self.cfg.horizon > 0.0 {
            self.cfg.horizon
        } else {
            (g.max_time() / 10.0).max(1e-9)
        };
        for e in train {
            self.process_edge(g, e);
        }
    }

    fn fit_incremental(&mut self, g: &Dmhg, new_edges: &[TemporalEdge]) {
        if self.emb.is_none() {
            self.fit(g, new_edges);
            return;
        }
        if let Some(t) = self.emb.as_mut() {
            t.ensure_len(g.num_nodes(), &mut self.rng);
        }
        self.sampler = global_sampler(g);
        for e in new_edges {
            self.process_edge(g, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supa_graph::GraphSchema;

    fn graph() -> (
        Dmhg,
        Vec<NodeId>,
        Vec<NodeId>,
        RelationId,
        Vec<TemporalEdge>,
    ) {
        let mut s = GraphSchema::new();
        let u = s.add_node_type("U");
        let i = s.add_node_type("I");
        let r = s.add_relation("R", u, i);
        let mut g = Dmhg::new(s);
        let us = g.add_nodes(u, 5);
        let is_ = g.add_nodes(i, 10);
        let mut edges = Vec::new();
        let mut t = 0.0;
        for round in 0..8 {
            for (k, &uu) in us.iter().enumerate() {
                t += 1.0;
                let item = is_[(k + round) % 3]; // users share 3 popular items
                g.add_edge(uu, item, r, t).unwrap();
                edges.push(TemporalEdge::new(uu, item, r, t));
            }
        }
        (g, us, is_, r, edges)
    }

    #[test]
    fn streaming_raises_interacted_scores() {
        let (g, us, is_, r, edges) = graph();
        let mut m = DyGnn::new(DyGnnConfig::default(), 3);
        m.fit(&g, &edges);
        let seen = m.score(us[0], is_[0], r);
        let unseen = m.score(us[0], is_[9], r);
        assert!(seen > unseen, "seen {seen} !> unseen {unseen}");
    }

    #[test]
    fn incremental_continues_from_state() {
        let (g, us, is_, r, edges) = graph();
        let half = edges.len() / 2;
        let mut m = DyGnn::new(DyGnnConfig::default(), 4);
        m.fit(&g, &edges[..half]);
        let before = m.score(us[1], is_[1], r);
        m.fit_incremental(&g, &edges[half..]);
        let after = m.score(us[1], is_[1], r);
        assert_ne!(before, after);
        assert!(m.is_dynamic());
    }

    #[test]
    fn propagation_reaches_neighbours() {
        // u0—i0 exists; then u1 interacts with i0: u0 (a neighbour of i0)
        // should move toward u1's embedding region.
        let mut s = GraphSchema::new();
        let uty = s.add_node_type("U");
        let ity = s.add_node_type("I");
        let r = s.add_relation("R", uty, ity);
        let mut g = Dmhg::new(s);
        let u0 = g.add_node(uty);
        let u1 = g.add_node(uty);
        let i0 = g.add_node(ity);
        g.add_edge(u0, i0, r, 1.0).unwrap();
        let e1 = TemporalEdge::new(u0, i0, r, 1.0);
        let mut m = DyGnn::new(
            DyGnnConfig {
                lambda: 1.0,
                horizon: 10.0, // keep the decay mild over the 1-tick age gap
                ..Default::default()
            },
            5,
        );
        m.fit(&g, &[e1]);
        let before = supa_embed::vecmath::cosine(
            m.emb.as_ref().unwrap().row(u0.index()),
            m.emb.as_ref().unwrap().row(u1.index()),
        );
        g.add_edge(u1, i0, r, 2.0).unwrap();
        m.fit_incremental(&g, &[TemporalEdge::new(u1, i0, r, 2.0)]);
        let after = supa_embed::vecmath::cosine(
            m.emb.as_ref().unwrap().row(u0.index()),
            m.emb.as_ref().unwrap().row(u1.index()),
        );
        assert!(after > before, "{after} !> {before}");
    }
}
