//! TGAT (Xu et al., ICLR 2020) — architecture-faithful reduction.
//!
//! TGAT aggregates a node's time-ordered neighbourhood with attention whose
//! keys mix node features and a Bochner time encoding
//! `φ(Δ) = cos(ω·Δ + b)`.
//!
//! **Kept**: functional time encoding inside the attention coefficients,
//! temporal neighbourhood restriction (attend over the most recent
//! neighbours, weighted by recency and feature affinity), and learned
//! self/neighbour transforms. **Simplified**: attention coefficients are
//! recomputed from the current embeddings each step but treated as
//! stop-gradient (gradients flow through the attended values, not the
//! weights), one head, one layer.

use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use supa_embed::vecmath::dot;
use supa_eval::{Recommender, Scorer};
use supa_graph::{Dmhg, NodeId, RelationId, TemporalEdge};
use supa_tensor::{CsrMatrix, Matrix, ParamId, ParamStore, Tape, Var};

use crate::common::bpr_triples;

/// TGAT configuration.
#[derive(Debug, Clone)]
pub struct TgatConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Time-encoding dimension (number of cosine frequencies).
    pub time_dim: usize,
    /// Neighbours attended per node.
    pub fanout: usize,
    /// Training steps.
    pub steps: usize,
    /// BPR triples per step.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
}

impl Default for TgatConfig {
    fn default() -> Self {
        TgatConfig {
            dim: 32,
            time_dim: 8,
            fanout: 8,
            steps: 100,
            batch: 256,
            lr: 0.01,
        }
    }
}

/// The TGAT recommender.
pub struct Tgat {
    cfg: TgatConfig,
    seed: u64,
    /// Log-spaced Bochner frequencies (fixed, as in the paper's init).
    omegas: Vec<f64>,
    final_emb: Option<Matrix>,
}

impl Tgat {
    /// Creates an untrained TGAT model.
    pub fn new(cfg: TgatConfig, seed: u64) -> Self {
        let omegas = (0..cfg.time_dim)
            .map(|k| 1.0 / 10f64.powf(k as f64 * 4.0 / cfg.time_dim as f64))
            .collect();
        Tgat {
            cfg,
            seed,
            omegas,
            final_emb: None,
        }
    }

    /// `φ(Δ)ᵀ1 = Σ_k cos(ω_k Δ)` — the scalar recency term entering the
    /// attention logits.
    fn time_term(&self, delta: f64) -> f64 {
        self.omegas.iter().map(|&w| (w * delta).cos()).sum::<f64>() / self.cfg.time_dim as f64
    }

    /// Builds the stop-gradient attention operator at time `t_now`: a sparse
    /// row-stochastic matrix where row `u` holds softmax attention over u's
    /// most recent neighbours.
    fn attention_csr(&self, g: &Dmhg, emb: &Matrix, t_now: f64, time_scale: f64) -> CsrMatrix {
        let n = g.num_nodes();
        let mut triplets: Vec<(usize, usize, f32)> = Vec::new();
        let scale = 1.0 / (self.cfg.dim as f32).sqrt();
        for u in 0..n {
            let nbrs = g.latest_neighbors(NodeId(u as u32), self.cfg.fanout);
            if nbrs.is_empty() {
                continue;
            }
            // Attention logits: scaled feature affinity + time encoding.
            let logits: Vec<f64> = nbrs
                .iter()
                .map(|nb| {
                    let aff = dot(emb.row(u), emb.row(nb.node.index())) * scale;
                    let dt = ((t_now - nb.time) / time_scale).max(0.0);
                    aff as f64 + self.time_term(dt)
                })
                .collect();
            let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
            let total: f64 = exps.iter().sum();
            for (nb, ex) in nbrs.iter().zip(exps) {
                triplets.push((u, nb.node.index(), (ex / total) as f32));
            }
        }
        CsrMatrix::from_triplets(n, n, triplets)
    }

    fn forward(
        tape: &mut Tape,
        e: ParamId,
        w_self: ParamId,
        w_nbr: ParamId,
        attn: Rc<CsrMatrix>,
    ) -> Var {
        let ev = tape.param(e);
        let ws = tape.param(w_self);
        let wn = tape.param(w_nbr);
        let self_part = tape.matmul(ev, ws);
        let agg = tape.spmm(attn, ev);
        let nbr_part = tape.matmul(agg, wn);
        let sum = tape.add(self_part, nbr_part);
        tape.relu(sum)
    }
}

impl Scorer for Tgat {
    fn score(&self, u: NodeId, v: NodeId, _r: RelationId) -> f32 {
        match &self.final_emb {
            Some(m) if u.index() < m.rows() && v.index() < m.rows() => m
                .row(u.index())
                .iter()
                .zip(m.row(v.index()))
                .map(|(&a, &b)| a * b)
                .sum(),
            _ => 0.0,
        }
    }
}

impl Recommender for Tgat {
    fn name(&self) -> &str {
        "TGAT"
    }

    fn fit(&mut self, g: &Dmhg, train: &[TemporalEdge]) {
        self.final_emb = None;
        if train.is_empty() {
            return;
        }
        let n = g.num_nodes();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let time_scale = (g.max_time() / 100.0).max(1e-9);
        let t_now = g.max_time();
        let mut params = ParamStore::new();
        let e = params.add("E", Matrix::uniform(n, self.cfg.dim, 0.1, &mut rng));
        let w_self = params.add(
            "W_self",
            Matrix::glorot(self.cfg.dim, self.cfg.dim, &mut rng),
        );
        let w_nbr = params.add(
            "W_nbr",
            Matrix::glorot(self.cfg.dim, self.cfg.dim, &mut rng),
        );

        for step in 0..self.cfg.steps {
            // Refresh the stop-gradient attention every few steps.
            let attn = if step % 10 == 0 {
                Rc::new(self.attention_csr(g, params.get(e), t_now, time_scale))
            } else {
                continue_attn(&params, e, self, g, t_now, time_scale, step)
            };
            let triples = bpr_triples(g, train, self.cfg.batch, &mut rng);
            let (us, ps, ns): (Vec<u32>, Vec<u32>, Vec<u32>) =
                triples
                    .iter()
                    .fold((vec![], vec![], vec![]), |mut acc, &(u, p, nn)| {
                        acc.0.push(u);
                        acc.1.push(p);
                        acc.2.push(nn);
                        acc
                    });
            let mut tape = Tape::new(&params);
            let z = Self::forward(&mut tape, e, w_self, w_nbr, attn);
            let ru = tape.gather(z, us);
            let rp = tape.gather(z, ps);
            let rn = tape.gather(z, ns);
            let pos = tape.rowwise_dot(ru, rp);
            let neg = tape.rowwise_dot(ru, rn);
            let loss = tape.bpr_loss_mean(pos, neg);
            let grads = tape.backward(loss);
            params.adam_step(&grads, self.cfg.lr);
        }

        let attn = Rc::new(self.attention_csr(g, params.get(e), t_now, time_scale));
        let mut tape = Tape::new(&params);
        let z = Self::forward(&mut tape, e, w_self, w_nbr, attn);
        self.final_emb = Some(tape.value(z).clone());
    }
}

/// Helper: rebuild attention (kept out of the main loop body for borrow
/// clarity; always recomputes — cheap at this scale).
fn continue_attn(
    params: &ParamStore,
    e: ParamId,
    model: &Tgat,
    g: &Dmhg,
    t_now: f64,
    time_scale: f64,
    _step: usize,
) -> Rc<CsrMatrix> {
    Rc::new(model.attention_csr(g, params.get(e), t_now, time_scale))
}

#[cfg(test)]
mod tests {
    use super::*;
    use supa_graph::GraphSchema;

    fn graph() -> (
        Dmhg,
        Vec<NodeId>,
        Vec<NodeId>,
        RelationId,
        Vec<TemporalEdge>,
    ) {
        let mut s = GraphSchema::new();
        let u = s.add_node_type("U");
        let i = s.add_node_type("I");
        let r = s.add_relation("R", u, i);
        let mut g = Dmhg::new(s);
        let us = g.add_nodes(u, 6);
        let is_ = g.add_nodes(i, 12);
        let mut edges = Vec::new();
        let mut t = 0.0;
        for round in 0..6 {
            #[allow(clippy::needless_range_loop)] // index selects both user and item
            for uu in 0..6usize {
                t += 1.0;
                let item = if uu < 3 { round } else { 6 + round };
                g.add_edge(us[uu], is_[item], r, t).unwrap();
                edges.push(TemporalEdge::new(us[uu], is_[item], r, t));
            }
        }
        (g, us, is_, r, edges)
    }

    #[test]
    fn attention_rows_are_stochastic() {
        let (g, _, _, _, _) = graph();
        let m = Tgat::new(TgatConfig::default(), 1);
        let emb = Matrix::uniform(g.num_nodes(), 32, 0.1, &mut SmallRng::seed_from_u64(1));
        let a = m.attention_csr(&g, &emb, g.max_time(), 1.0);
        for u in 0..g.num_nodes() {
            let s: f32 = a.row(u).map(|(_, v)| v).sum();
            if g.degree(NodeId(u as u32)) > 0 {
                assert!((s - 1.0).abs() < 1e-4, "row {u} sums to {s}");
            } else {
                assert_eq!(s, 0.0);
            }
        }
    }

    #[test]
    fn recent_neighbours_get_more_attention() {
        // One user, two items: one old edge, one fresh edge with identical
        // embeddings → the time term must favour the fresh neighbour.
        let mut s = GraphSchema::new();
        let uty = s.add_node_type("U");
        let ity = s.add_node_type("I");
        let r = s.add_relation("R", uty, ity);
        let mut g = Dmhg::new(s);
        let u = g.add_node(uty);
        let old = g.add_node(ity);
        let fresh = g.add_node(ity);
        g.add_edge(u, old, r, 1.0).unwrap();
        g.add_edge(u, fresh, r, 1000.0).unwrap();
        let m = Tgat::new(TgatConfig::default(), 2);
        let emb = Matrix::zeros(3, 32); // identical features: time decides
        let a = m.attention_csr(&g, &emb, 1000.0, 10.0);
        let row: Vec<(usize, f32)> = a.row(u.index()).collect();
        let w_old = row.iter().find(|(j, _)| *j == old.index()).unwrap().1;
        let w_fresh = row.iter().find(|(j, _)| *j == fresh.index()).unwrap().1;
        assert!(
            w_fresh > w_old,
            "fresh {w_fresh} must out-attend old {w_old}"
        );
    }

    #[test]
    fn learns_block_structure() {
        let (g, us, is_, r, edges) = graph();
        let mut m = Tgat::new(
            TgatConfig {
                steps: 60,
                ..Default::default()
            },
            41,
        );
        m.fit(&g, &edges);
        let own: f32 = (0..6).map(|k| m.score(us[0], is_[k], r)).sum();
        let other: f32 = (6..12).map(|k| m.score(us[0], is_[k], r)).sum();
        assert!(own > other, "own {own} !> other {other}");
    }

    #[test]
    fn untrained_scores_zero() {
        let m = Tgat::new(TgatConfig::default(), 1);
        assert_eq!(m.score(NodeId(0), NodeId(1), RelationId(0)), 0.0);
    }
}
