//! DyHATR (Xue et al., ECML-PKDD 2020) — architecture-faithful reduction.
//!
//! DyHATR encodes each snapshot with *hierarchical* (node- then
//! relation-level) attention and feeds the snapshot embeddings through a
//! temporal RNN.
//!
//! **Kept**: per-snapshot per-relation aggregation combined by learned
//! relation weights (the relation level of the hierarchy), and a GRU over
//! node states across snapshots (the temporal model). **Simplified**: the
//! node-level attention inside each relation is mean aggregation; relation
//! attention is a learned sigmoid gate per relation; TBPTT-1 (the previous
//! hidden state enters as a constant).

use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use supa_eval::{Recommender, Scorer};
use supa_graph::{Dmhg, NodeId, RelationId, TemporalEdge};
use supa_tensor::{Matrix, ParamId, ParamStore, Tape, Var};

use crate::common::{bpr_triples, relation_adjacencies, snapshots};

/// DyHATR configuration.
#[derive(Debug, Clone)]
pub struct DyHatrConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Snapshots per fit.
    pub n_snapshots: usize,
    /// Training steps per snapshot.
    pub steps_per_snapshot: usize,
    /// BPR triples per step.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
}

impl Default for DyHatrConfig {
    fn default() -> Self {
        DyHatrConfig {
            dim: 32,
            n_snapshots: 4,
            steps_per_snapshot: 20,
            batch: 256,
            lr: 0.01,
        }
    }
}

struct ModelState {
    params: ParamStore,
    e: ParamId,
    gates: Vec<ParamId>,
    // GRU (input = snapshot encoding Z, hidden = node state H).
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wr: ParamId,
    ur: ParamId,
    br: ParamId,
    wh: ParamId,
    uh: ParamId,
    bh: ParamId,
    /// Node hidden states carried across snapshots.
    h_state: Matrix,
    rng: SmallRng,
}

/// The DyHATR recommender.
pub struct DyHatr {
    cfg: DyHatrConfig,
    seed: u64,
    state: Option<ModelState>,
}

impl DyHatr {
    /// Creates an untrained DyHATR model.
    pub fn new(cfg: DyHatrConfig, seed: u64) -> Self {
        DyHatr {
            cfg,
            seed,
            state: None,
        }
    }

    /// Snapshot encoding: `Z = E + Σ_r σ(g_r)·Â_r E`, then
    /// `H_new = GRU(H_prev, Z)`.
    fn forward(st: &ModelState, tape: &mut Tape, adjs: &[Rc<supa_tensor::CsrMatrix>]) -> Var {
        let e0 = tape.param(st.e);
        let mut z = e0;
        for (r, adj) in adjs.iter().enumerate() {
            let agg = tape.spmm(Rc::clone(adj), e0);
            let gv = tape.param(st.gates[r]);
            let gv = tape.sigmoid(gv);
            let gated = tape.scale_by(agg, gv);
            z = tape.add(z, gated);
        }
        let h_prev = tape.constant(st.h_state.clone());
        let wz = tape.param(st.wz);
        let uz = tape.param(st.uz);
        let bz = tape.param(st.bz);
        let wr = tape.param(st.wr);
        let ur = tape.param(st.ur);
        let br = tape.param(st.br);
        let wh = tape.param(st.wh);
        let uh = tape.param(st.uh);
        let bh = tape.param(st.bh);
        let zx = tape.matmul(z, wz);
        let zh = tape.matmul(h_prev, uz);
        let zg = tape.add(zx, zh);
        let zg = tape.add_row_vec(zg, bz);
        let zg = tape.sigmoid(zg);
        let rx = tape.matmul(z, wr);
        let rh = tape.matmul(h_prev, ur);
        let rg = tape.add(rx, rh);
        let rg = tape.add_row_vec(rg, br);
        let rg = tape.sigmoid(rg);
        let hx = tape.matmul(z, wh);
        let rgated = tape.mul(rg, h_prev);
        let hh = tape.matmul(rgated, uh);
        let ht = tape.add(hx, hh);
        let ht = tape.add_row_vec(ht, bh);
        let ht = tape.tanh(ht);
        // H = (1 − z)⊙H_prev + z⊙h̃
        let zneg = tape.scale(zg, -1.0);
        let keep_gate = tape.add_scalar(zneg, 1.0);
        let keep = tape.mul(keep_gate, h_prev);
        let update = tape.mul(zg, ht);
        tape.add(keep, update)
    }

    fn train_snapshot(&mut self, g: &Dmhg, snap: &[TemporalEdge]) {
        let n_rel = g.schema().num_relations();
        let n = g.num_nodes();
        let Some(st) = self.state.as_mut() else {
            return;
        };
        if snap.is_empty() {
            return;
        }
        let adjs = relation_adjacencies(n, n_rel, snap);
        for _ in 0..self.cfg.steps_per_snapshot {
            let triples = bpr_triples(g, snap, self.cfg.batch, &mut st.rng);
            let (us, ps, ns): (Vec<u32>, Vec<u32>, Vec<u32>) =
                triples
                    .iter()
                    .fold((vec![], vec![], vec![]), |mut acc, &(u, p, nn)| {
                        acc.0.push(u);
                        acc.1.push(p);
                        acc.2.push(nn);
                        acc
                    });
            let mut tape = Tape::new(&st.params);
            let h = Self::forward(st, &mut tape, &adjs);
            let ru = tape.gather(h, us);
            let rp = tape.gather(h, ps);
            let rn = tape.gather(h, ns);
            let pos = tape.rowwise_dot(ru, rp);
            let neg = tape.rowwise_dot(ru, rn);
            let loss = tape.bpr_loss_mean(pos, neg);
            let grads = tape.backward(loss);
            st.params.adam_step(&grads, self.cfg.lr);
        }
        // Commit the evolved hidden state.
        let mut tape = Tape::new(&st.params);
        let h = Self::forward(st, &mut tape, &adjs);
        st.h_state = tape.value(h).clone();
    }
}

impl Scorer for DyHatr {
    fn score(&self, u: NodeId, v: NodeId, _r: RelationId) -> f32 {
        match &self.state {
            Some(st) if u.index() < st.h_state.rows() && v.index() < st.h_state.rows() => st
                .h_state
                .row(u.index())
                .iter()
                .zip(st.h_state.row(v.index()))
                .map(|(&a, &b)| a * b)
                .sum(),
            _ => 0.0,
        }
    }
}

impl Recommender for DyHatr {
    fn name(&self) -> &str {
        "DyHATR"
    }

    fn is_dynamic(&self) -> bool {
        true
    }

    fn fit(&mut self, g: &Dmhg, train: &[TemporalEdge]) {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let d = self.cfg.dim;
        let n = g.num_nodes();
        let n_rel = g.schema().num_relations();
        let mut params = ParamStore::new();
        let e = params.add("E", Matrix::uniform(n, d, 0.1, &mut rng));
        let gates: Vec<ParamId> = (0..n_rel)
            .map(|r| params.add(format!("g_{r}"), Matrix::zeros(1, 1)))
            .collect();
        let wz = params.add("Wz", Matrix::glorot(d, d, &mut rng));
        let uz = params.add("Uz", Matrix::glorot(d, d, &mut rng));
        let bz = params.add("bz", Matrix::zeros(1, d));
        let wr = params.add("Wr", Matrix::glorot(d, d, &mut rng));
        let ur = params.add("Ur", Matrix::glorot(d, d, &mut rng));
        let br = params.add("br", Matrix::zeros(1, d));
        let wh = params.add("Wh", Matrix::glorot(d, d, &mut rng));
        let uh = params.add("Uh", Matrix::glorot(d, d, &mut rng));
        let bh = params.add("bh", Matrix::zeros(1, d));
        let h0 = params.get(e).clone();
        self.state = Some(ModelState {
            params,
            e,
            gates,
            wz,
            uz,
            bz,
            wr,
            ur,
            br,
            wh,
            uh,
            bh,
            h_state: h0,
            rng,
        });
        for snap in snapshots(train, self.cfg.n_snapshots) {
            self.train_snapshot(g, snap);
        }
    }

    fn fit_incremental(&mut self, g: &Dmhg, new_edges: &[TemporalEdge]) {
        if self.state.is_none() {
            self.fit(g, new_edges);
            return;
        }
        self.train_snapshot(g, new_edges);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supa_datasets::taobao;
    use supa_graph::GraphSchema;

    #[test]
    fn hidden_state_tracks_snapshots() {
        let mut s = GraphSchema::new();
        let uty = s.add_node_type("U");
        let ity = s.add_node_type("I");
        let r = s.add_relation("R", uty, ity);
        let mut g = Dmhg::new(s);
        let us = g.add_nodes(uty, 4);
        let is_ = g.add_nodes(ity, 8);
        let mut edges = Vec::new();
        let mut t = 0.0;
        for round in 0..10 {
            for (k, &uu) in us.iter().enumerate() {
                t += 1.0;
                g.add_edge(uu, is_[(k + round) % 8], r, t).unwrap();
                edges.push(TemporalEdge::new(uu, is_[(k + round) % 8], r, t));
            }
        }
        let mut m = DyHatr::new(
            DyHatrConfig {
                steps_per_snapshot: 5,
                ..Default::default()
            },
            43,
        );
        m.fit(&g, &edges);
        let h1 = m.state.as_ref().unwrap().h_state.clone();
        m.fit_incremental(&g, &edges[edges.len() - 10..]);
        let h2 = &m.state.as_ref().unwrap().h_state;
        assert_ne!(&h1, h2, "GRU hidden state must evolve");
        assert!(m.is_dynamic());
    }

    #[test]
    fn runs_on_multiplex_taobao() {
        let d = taobao(0.02, 47);
        let g = d.full_graph();
        let mut m = DyHatr::new(
            DyHatrConfig {
                n_snapshots: 3,
                steps_per_snapshot: 4,
                ..Default::default()
            },
            47,
        );
        m.fit(&g, &d.edges[..1200.min(d.edges.len())]);
        let e = &d.edges[0];
        assert!(m.score(e.src, e.dst, e.relation).is_finite());
    }

    #[test]
    fn untrained_scores_zero() {
        let m = DyHatr::new(DyHatrConfig::default(), 1);
        assert_eq!(m.score(NodeId(0), NodeId(1), RelationId(0)), 0.0);
    }
}
