//! HybridGNN (Gu et al., ICDE 2022) — architecture-faithful reduction.
//!
//! HybridGNN learns multiplex representations through *hybrid aggregation
//! flows* — per-relation message passing combined across relations and hops
//! by *hierarchical attention*.
//!
//! **Kept**: per-relation propagation flows, two hops (direct + flow-through
//! aggregation), learned per-flow weights combining the flows. **Simplified**:
//! the hierarchical softmax attention is replaced by independent learned
//! sigmoid gates per (relation, hop) flow; random-walk-based flow sampling
//! is replaced by full sparse propagation.

use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use supa_eval::{Recommender, Scorer};
use supa_graph::{Dmhg, NodeId, RelationId, TemporalEdge};
use supa_tensor::{Matrix, ParamId, ParamStore, Tape, Var};

use crate::common::{bpr_triples, relation_adjacencies};

/// HybridGNN configuration.
#[derive(Debug, Clone)]
pub struct HybridGnnConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Training steps.
    pub steps: usize,
    /// BPR triples per step.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
}

impl Default for HybridGnnConfig {
    fn default() -> Self {
        HybridGnnConfig {
            dim: 32,
            steps: 120,
            batch: 256,
            lr: 0.01,
        }
    }
}

/// The HybridGNN recommender.
pub struct HybridGnn {
    cfg: HybridGnnConfig,
    seed: u64,
    final_emb: Option<Matrix>,
}

impl HybridGnn {
    /// Creates an untrained HybridGNN model.
    pub fn new(cfg: HybridGnnConfig, seed: u64) -> Self {
        HybridGnn {
            cfg,
            seed,
            final_emb: None,
        }
    }

    /// `E + Σ_r σ(g1_r)·Â_r E + Σ_r σ(g2_r)·Â_r Â_r E`.
    fn forward(
        tape: &mut Tape,
        e: ParamId,
        gates1: &[ParamId],
        gates2: &[ParamId],
        adjs: &[Rc<supa_tensor::CsrMatrix>],
    ) -> Var {
        let e0 = tape.param(e);
        let mut acc = e0;
        for (r, adj) in adjs.iter().enumerate() {
            let hop1 = tape.spmm(Rc::clone(adj), e0);
            let g1 = tape.param(gates1[r]);
            let g1 = tape.sigmoid(g1);
            let gated1 = tape.scale_by(hop1, g1);
            acc = tape.add(acc, gated1);
            let hop2 = tape.spmm(Rc::clone(adj), hop1);
            let g2 = tape.param(gates2[r]);
            let g2 = tape.sigmoid(g2);
            let gated2 = tape.scale_by(hop2, g2);
            acc = tape.add(acc, gated2);
        }
        acc
    }
}

impl Scorer for HybridGnn {
    fn score(&self, u: NodeId, v: NodeId, _r: RelationId) -> f32 {
        match &self.final_emb {
            Some(m) if u.index() < m.rows() && v.index() < m.rows() => m
                .row(u.index())
                .iter()
                .zip(m.row(v.index()))
                .map(|(&a, &b)| a * b)
                .sum(),
            _ => 0.0,
        }
    }
}

impl Recommender for HybridGnn {
    fn name(&self) -> &str {
        "HybridGNN"
    }

    fn fit(&mut self, g: &Dmhg, train: &[TemporalEdge]) {
        self.final_emb = None;
        if train.is_empty() {
            return;
        }
        let n = g.num_nodes();
        let n_rel = g.schema().num_relations();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let adjs = relation_adjacencies(n, n_rel, train);

        let mut params = ParamStore::new();
        let e = params.add("E", Matrix::uniform(n, self.cfg.dim, 0.1, &mut rng));
        let gates1: Vec<ParamId> = (0..n_rel)
            .map(|r| params.add(format!("g1_{r}"), Matrix::zeros(1, 1)))
            .collect();
        let gates2: Vec<ParamId> = (0..n_rel)
            .map(|r| params.add(format!("g2_{r}"), Matrix::full(1, 1, -1.0)))
            .collect();

        for _ in 0..self.cfg.steps {
            let triples = bpr_triples(g, train, self.cfg.batch, &mut rng);
            let (us, ps, ns): (Vec<u32>, Vec<u32>, Vec<u32>) =
                triples
                    .iter()
                    .fold((vec![], vec![], vec![]), |mut acc, &(u, p, nn)| {
                        acc.0.push(u);
                        acc.1.push(p);
                        acc.2.push(nn);
                        acc
                    });
            let mut tape = Tape::new(&params);
            let final_e = Self::forward(&mut tape, e, &gates1, &gates2, &adjs);
            let ru = tape.gather(final_e, us);
            let rp = tape.gather(final_e, ps);
            let rn = tape.gather(final_e, ns);
            let pos = tape.rowwise_dot(ru, rp);
            let neg = tape.rowwise_dot(ru, rn);
            let loss = tape.bpr_loss_mean(pos, neg);
            let grads = tape.backward(loss);
            params.adam_step(&grads, self.cfg.lr);
        }

        let mut tape = Tape::new(&params);
        let final_e = Self::forward(&mut tape, e, &gates1, &gates2, &adjs);
        self.final_emb = Some(tape.value(final_e).clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supa_datasets::taobao;
    use supa_graph::GraphSchema;

    #[test]
    fn learns_multiplex_block_structure() {
        let mut s = GraphSchema::new();
        let u = s.add_node_type("U");
        let i = s.add_node_type("I");
        let r0 = s.add_relation("A", u, i);
        let r1 = s.add_relation("B", u, i);
        let mut g = Dmhg::new(s);
        let us = g.add_nodes(u, 6);
        let is_ = g.add_nodes(i, 12);
        let mut edges = Vec::new();
        let mut t = 0.0;
        for round in 0..6 {
            #[allow(clippy::needless_range_loop)] // index selects both user and item
            for uu in 0..6usize {
                t += 1.0;
                let (item, rel) = if uu < 3 { (round, r0) } else { (6 + round, r1) };
                g.add_edge(us[uu], is_[item], rel, t).unwrap();
                edges.push(TemporalEdge::new(us[uu], is_[item], rel, t));
            }
        }
        let mut m = HybridGnn::new(HybridGnnConfig::default(), 17);
        m.fit(&g, &edges);
        let own: f32 = (0..6).map(|k| m.score(us[0], is_[k], r0)).sum();
        let other: f32 = (6..12).map(|k| m.score(us[0], is_[k], r0)).sum();
        assert!(own > other, "own {own} !> other {other}");
    }

    #[test]
    fn runs_on_taobao_and_is_static() {
        let d = taobao(0.02, 19);
        let g = d.full_graph();
        let mut m = HybridGnn::new(
            HybridGnnConfig {
                steps: 15,
                ..Default::default()
            },
            19,
        );
        m.fit(&g, &d.edges);
        assert!(m.final_emb.is_some());
        assert!(!m.is_dynamic());
    }

    #[test]
    fn untrained_scores_zero() {
        let m = HybridGnn::new(HybridGnnConfig::default(), 1);
        assert_eq!(m.score(NodeId(0), NodeId(1), RelationId(0)), 0.0);
    }
}
