//! DyHNE (Wang et al., TKDE 2022) — architecture-faithful reduction.
//!
//! DyHNE preserves *metapath-based first- and second-order proximities* and
//! updates embeddings incrementally via matrix perturbation when the graph
//! changes.
//!
//! **Kept**: metapath-guided proximity training (walks follow the dataset's
//! multiplex metapath schemas) and locality of the incremental update (only
//! nodes touched by new edges are re-trained). **Simplified**: the
//! eigen-perturbation solver is replaced by local SGNS refreshes — both
//! realise "update only what the new edges perturb".

use rand::rngs::SmallRng;
use rand::SeedableRng;
use supa_embed::sgns::train_walk_window;
use supa_embed::EmbeddingTable;
use supa_eval::{Recommender, Scorer};
use supa_graph::{
    Dmhg, MetapathSchema, MetapathWalker, NodeId, RelationId, TemporalEdge, WalkConfig,
};

use crate::common::global_sampler;

/// DyHNE configuration.
#[derive(Debug, Clone)]
pub struct DyHneConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Metapath walks per node at full fit.
    pub walks_per_node: usize,
    /// Walk length (hops).
    pub walk_length: usize,
    /// Skip-gram window.
    pub window: usize,
    /// Negatives per pair.
    pub n_neg: usize,
    /// Learning rate.
    pub lr: f32,
    /// Walks per endpoint on incremental updates.
    pub walks_per_update: usize,
}

impl Default for DyHneConfig {
    fn default() -> Self {
        DyHneConfig {
            dim: 32,
            walks_per_node: 3,
            walk_length: 6,
            window: 2,
            n_neg: 3,
            lr: 0.025,
            walks_per_update: 2,
        }
    }
}

/// The DyHNE recommender.
pub struct DyHne {
    cfg: DyHneConfig,
    seed: u64,
    metapaths: Vec<MetapathSchema>,
    rng: SmallRng,
    centers: Option<EmbeddingTable>,
    contexts: Option<EmbeddingTable>,
}

impl DyHne {
    /// Creates an untrained DyHNE model over the dataset's metapath schemas.
    pub fn new(metapaths: Vec<MetapathSchema>, cfg: DyHneConfig, seed: u64) -> Self {
        DyHne {
            cfg,
            seed,
            metapaths,
            rng: SmallRng::seed_from_u64(seed),
            centers: None,
            contexts: None,
        }
    }

    fn train_walks_from(&mut self, g: &Dmhg, starts: &[NodeId], walks_each: usize) {
        let Ok(walker) = MetapathWalker::new(self.metapaths.clone(), g.schema()) else {
            return;
        };
        let Some(sampler) = global_sampler(g) else {
            return;
        };
        let (Some(centers), Some(contexts)) = (self.centers.as_mut(), self.contexts.as_mut())
        else {
            return;
        };
        let wc = WalkConfig {
            num_walks: walks_each,
            walk_length: self.cfg.walk_length,
            neighbor_cap: None,
            before: None,
        };
        let n_neg = self.cfg.n_neg;
        for &start in starts {
            for walk in walker.sample_walks(g, start, &wc, &mut self.rng) {
                let idx: Vec<usize> = walk.nodes().map(|n| n.index()).collect();
                train_walk_window(
                    centers,
                    contexts,
                    &idx,
                    self.cfg.window,
                    self.cfg.lr,
                    |negs| {
                        negs.clear();
                        for _ in 0..n_neg {
                            negs.push(sampler.sample(&mut self.rng) as usize);
                        }
                    },
                );
            }
        }
    }
}

impl Scorer for DyHne {
    fn score(&self, u: NodeId, v: NodeId, _r: RelationId) -> f32 {
        match &self.centers {
            Some(t) => supa_embed::vecmath::dot(t.row(u.index()), t.row(v.index())),
            None => 0.0,
        }
    }
}

impl Recommender for DyHne {
    fn name(&self) -> &str {
        "DyHNE"
    }

    fn is_dynamic(&self) -> bool {
        true
    }

    fn fit(&mut self, g: &Dmhg, _train: &[TemporalEdge]) {
        self.rng = SmallRng::seed_from_u64(self.seed);
        let n = g.num_nodes();
        self.centers = Some(EmbeddingTable::new(
            n,
            self.cfg.dim,
            0.5 / self.cfg.dim as f32,
            &mut self.rng,
        ));
        self.contexts = Some(EmbeddingTable::new(n, self.cfg.dim, 0.0, &mut self.rng));
        let starts: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        self.train_walks_from(g, &starts, self.cfg.walks_per_node);
    }

    fn fit_incremental(&mut self, g: &Dmhg, new_edges: &[TemporalEdge]) {
        if self.centers.is_none() {
            self.fit(g, new_edges);
            return;
        }
        if let (Some(c), Some(x)) = (self.centers.as_mut(), self.contexts.as_mut()) {
            c.ensure_len(g.num_nodes(), &mut self.rng);
            x.ensure_len(g.num_nodes(), &mut self.rng);
        }
        // Perturbation locality: only the endpoints of new edges refresh.
        let starts: Vec<NodeId> = new_edges.iter().flat_map(|e| [e.src, e.dst]).collect();
        self.train_walks_from(g, &starts, self.cfg.walks_per_update);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supa_datasets::lastfm;

    #[test]
    fn metapath_training_relates_coupled_nodes() {
        let d = lastfm(0.02, 5);
        let g = d.full_graph();
        let mut m = DyHne::new(d.metapaths.clone(), DyHneConfig::default(), 5);
        m.fit(&g, &d.edges);
        // A user should score a frequently-listened artist above a random
        // never-touched artist on average.
        let mut hits = 0;
        let mut total = 0;
        for e in d.edges.iter().take(100) {
            let far = NodeId((g.num_nodes() - 1) as u32);
            if g.neighbors(e.src).iter().any(|n| n.node == far) {
                continue;
            }
            total += 1;
            if m.score(e.src, e.dst, e.relation) > m.score(e.src, far, e.relation) {
                hits += 1;
            }
        }
        assert!(
            hits * 2 > total,
            "only {hits}/{total} listened artists outscored a stranger"
        );
    }

    #[test]
    fn incremental_refresh_is_local_and_effective() {
        let d = lastfm(0.02, 6);
        let g = d.full_graph();
        let half = d.edges.len() / 2;
        let mut m = DyHne::new(d.metapaths.clone(), DyHneConfig::default(), 6);
        m.fit(&g, &d.edges[..half]);
        let probe = &d.edges[half + 1];
        let before = m.score(probe.src, probe.dst, probe.relation);
        for _ in 0..5 {
            m.fit_incremental(&g, &d.edges[half..half + 50]);
        }
        // The model must have changed in response to the new edges.
        let after = m.score(probe.src, probe.dst, probe.relation);
        assert!(m.is_dynamic());
        assert_ne!(before, after);
    }

    #[test]
    fn untrained_scores_zero() {
        let m = DyHne::new(vec![], DyHneConfig::default(), 1);
        assert_eq!(m.score(NodeId(0), NodeId(1), RelationId(0)), 0.0);
    }
}
